//! Regeneration of every table and figure in the paper's evaluation.
//!
//! Each `fig*`/`table*` function runs the corresponding experiment on
//! the simulator and renders the series the paper plots. Absolute
//! numbers differ from the paper (our substrate is a calibrated
//! simulator, not the authors' phones); the *shapes* — who wins, by
//! roughly what factor, where crossovers fall — are asserted by the
//! integration tests in `tests/`.

use crate::fmt::{f0, f1, f2, Table};
use swing_core::routing::Policy;
use swing_device::mobility::SignalZone;
use swing_device::profile::Workload;
use swing_sim::experiments::{
    evaluation_run, fig2_condition, joining_run, leaving_run, mobility_run, single_device,
    Fig2Variable, WORKER_LETTERS,
};
use swing_sim::{FrameRecord, SwarmReport};

/// Seed shared by all reproduction runs.
pub const SEED: u64 = 1;
/// Simulated duration of the Fig. 4–8 policy-comparison runs, seconds.
/// (The paper runs 10 minutes; 120 simulated seconds reaches the same
/// steady state and keeps `cargo bench` fast.)
pub const EVAL_SECS: u64 = 120;

/// Figure 1: per-frame total delay over time on each single device at
/// 24 FPS offered load.
#[must_use]
pub fn fig1() -> String {
    let mut out = String::from(
        "Fig 1: Delay per frame when processed on different phones at 24 FPS load.\n\
         Rows: seconds since start; cells: mean end-to-end delay (ms) of frames\n\
         completed in that second. Delays build up on every device.\n\n",
    );
    let devices = ["B", "C", "D", "E", "F", "G", "H", "I"];
    let mut table = Table::new(
        std::iter::once("t(s)".to_owned()).chain(devices.iter().map(|d| (*d).to_owned())),
    );
    let reports: Vec<SwarmReport> = devices.iter().map(|d| single_device(d, 5, SEED)).collect();
    for sec in 0..5u64 {
        let mut cells = vec![format!("{}", sec + 1)];
        for r in &reports {
            let (mut sum, mut n) = (0.0, 0u64);
            for f in &r.frames {
                if let (Some(t), Some(e2e)) = (f.sink_us, f.e2e_us()) {
                    if t / 1_000_000 == sec {
                        sum += e2e as f64 / 1_000.0;
                        n += 1;
                    }
                }
            }
            cells.push(if n > 0 {
                f0(sum / n as f64)
            } else {
                "-".into()
            });
        }
        table.row(cells);
    }
    out.push_str(&table.render());
    out
}

/// Table I: per-device processing delay and throughput capacity.
#[must_use]
pub fn table1() -> String {
    let mut out = String::from(
        "Table I: Performance heterogeneity (measured on the simulated devices\n\
         at 24 FPS offered face-recognition load, 60 s).\n\n",
    );
    let mut table = Table::new([
        "Phone",
        "Model",
        "Processing delay (ms)",
        "Throughput (FPS)",
    ]);
    for letter in WORKER_LETTERS {
        let report = single_device(letter, 60, SEED);
        let proc = report.mean_component_ms(FrameRecord::processing_us);
        let profile = swing_sim::experiments::device(letter);
        table.row([
            letter.to_owned(),
            profile.model,
            f1(proc),
            f0(report.throughput_fps),
        ]);
    }
    out.push_str(&table.render());
    out
}

/// Figure 2: decomposition of delays in remote face-recognition
/// processing under varying signal strength, CPU usage and input rate.
#[must_use]
pub fn fig2() -> String {
    let mut out =
        String::from("Fig 2: Decomposition of delays in remote processing (A sends to B).\n\n");
    let dur = 60;

    let mut t = Table::new([
        "Signal",
        "Transmission (ms)",
        "Processing (ms)",
        "Queuing (ms)",
    ]);
    for (label, zone) in [
        ("Good", SignalZone::Good),
        ("Fair", SignalZone::Weak),
        ("Bad", SignalZone::Poor),
    ] {
        let r = fig2_condition(Fig2Variable::Signal(zone), dur, SEED);
        t.row([
            label.to_owned(),
            f0(r.transmission_ms),
            f0(r.processing_ms),
            f0(r.queuing_ms),
        ]);
    }
    out.push_str(&t.render());
    out.push('\n');

    let mut t = Table::new([
        "CPU usage",
        "Transmission (ms)",
        "Processing (ms)",
        "Queuing (ms)",
    ]);
    for load in [0.2, 0.6, 1.0] {
        let r = fig2_condition(Fig2Variable::CpuLoad(load), dur, SEED);
        t.row([
            r.label.clone(),
            f0(r.transmission_ms),
            f0(r.processing_ms),
            f0(r.queuing_ms),
        ]);
    }
    out.push_str(&t.render());
    out.push('\n');

    let mut t = Table::new([
        "Input rate",
        "Transmission (ms)",
        "Processing (ms)",
        "Queuing (ms)",
    ]);
    for fps in [5.0, 10.0, 20.0] {
        let r = fig2_condition(Fig2Variable::InputFps(fps), dur, SEED);
        t.row([
            r.label.clone(),
            f0(r.transmission_ms),
            f0(r.processing_ms),
            f0(r.queuing_ms),
        ]);
    }
    out.push_str(&t.render());
    out
}

fn workload_name(w: Workload) -> &'static str {
    match w {
        Workload::FaceRecognition => "Face Recognition",
        Workload::VoiceTranslation => "Voice Translation",
        _ => "Custom",
    }
}

/// Figure 4: throughput and per-frame latency statistics per policy.
#[must_use]
pub fn fig4() -> String {
    let mut out = String::from(
        "Fig 4: Average system throughput and min/max/mean/stddev of per-frame\n\
         latency under each routing policy (9 devices, B/C/D at poor signal,\n\
         24 FPS offered).\n\n",
    );
    for workload in [Workload::FaceRecognition, Workload::VoiceTranslation] {
        out.push_str(workload_name(workload));
        out.push('\n');
        let mut t = Table::new([
            "Policy",
            "Throughput (FPS)",
            "Lat min (ms)",
            "Lat max (ms)",
            "Lat mean (ms)",
            "Lat stddev (ms)",
        ]);
        for policy in Policy::ALL {
            let r = evaluation_run(policy, workload, EVAL_SECS, SEED);
            t.row([
                policy.to_string(),
                f1(r.throughput_fps),
                f0(r.latency_ms.min()),
                f0(r.latency_ms.max()),
                f0(r.latency_ms.mean()),
                f0(r.latency_ms.std_dev()),
            ]);
        }
        out.push_str(&t.render());
        out.push('\n');
    }
    out
}

/// Figure 5: per-device CPU utilization and input data rate per policy.
#[must_use]
pub fn fig5() -> String {
    let mut out = String::from(
        "Fig 5: Resource usage (CPU %) and input data rate (FPS) of each device\n\
         under each policy.\n\n",
    );
    for workload in [Workload::FaceRecognition, Workload::VoiceTranslation] {
        out.push_str(workload_name(workload));
        out.push('\n');
        let mut cpu = Table::new(
            std::iter::once("Policy".to_owned())
                .chain(WORKER_LETTERS.iter().map(|d| format!("{d} cpu%"))),
        );
        let mut rate = Table::new(
            std::iter::once("Policy".to_owned())
                .chain(WORKER_LETTERS.iter().map(|d| format!("{d} fps"))),
        );
        for policy in Policy::ALL {
            let r = evaluation_run(policy, workload, EVAL_SECS, SEED);
            cpu.row(
                std::iter::once(policy.to_string())
                    .chain(r.workers.iter().map(|w| f0(w.cpu_util * 100.0))),
            );
            rate.row(
                std::iter::once(policy.to_string())
                    .chain(r.workers.iter().map(|w| f1(w.input_fps))),
            );
        }
        out.push_str(&cpu.render());
        out.push('\n');
        out.push_str(&rate.render());
        out.push('\n');
    }
    out
}

/// Figure 6: per-device CPU and Wi-Fi power, with per-policy aggregates.
#[must_use]
pub fn fig6() -> String {
    let mut out = String::from(
        "Fig 6: Estimated power consumption per device (CPU + WiFi components)\n\
         and aggregate across all devices (the number the paper prints above\n\
         each group).\n\n",
    );
    for workload in [Workload::FaceRecognition, Workload::VoiceTranslation] {
        out.push_str(workload_name(workload));
        out.push('\n');
        let mut t = Table::new(
            std::iter::once("Policy".to_owned())
                .chain(WORKER_LETTERS.iter().map(|d| format!("{d} (W)")))
                .chain(["TOTAL (W)".to_owned()]),
        );
        for policy in Policy::ALL {
            let r = evaluation_run(policy, workload, EVAL_SECS, SEED);
            t.row(
                std::iter::once(policy.to_string())
                    .chain(r.workers.iter().map(|w| f2(w.power_w())))
                    .chain([f2(r.aggregate_power_w())]),
            );
        }
        out.push_str(&t.render());
        out.push('\n');
    }
    out
}

/// Figure 7: energy efficiency (FPS per Watt) per policy.
#[must_use]
pub fn fig7() -> String {
    let mut out = String::from("Fig 7: Efficiency of routing schemes (FPS per Watt).\n\n");
    let mut t = Table::new(["Policy", "Face (FPS/W)", "Voice (FPS/W)"]);
    for policy in Policy::ALL {
        let face = evaluation_run(policy, Workload::FaceRecognition, EVAL_SECS, SEED);
        let voice = evaluation_run(policy, Workload::VoiceTranslation, EVAL_SECS, SEED);
        t.row([
            policy.to_string(),
            f2(face.fps_per_watt()),
            f2(voice.fps_per_watt()),
        ]);
    }
    out.push_str(&t.render());
    out
}

/// Fraction of sink arrivals that are out of order, plus reorder stats.
fn ordering_stats(r: &SwarmReport) -> (f64, u64, f64) {
    let mut arrivals: Vec<(u64, u64)> = r
        .frames
        .iter()
        .filter_map(|f| f.sink_us.map(|t| (t, f.seq)))
        .collect();
    arrivals.sort_unstable();
    let mut inversions = 0u64;
    let mut max_seq = 0u64;
    for &(_, seq) in &arrivals {
        if seq < max_seq {
            inversions += 1;
        } else {
            max_seq = seq;
        }
    }
    let inv_frac = inversions as f64 / arrivals.len().max(1) as f64;
    // Mean extra delay the reorder buffer added before playback.
    let (mut wait, mut n) = (0.0f64, 0u64);
    for f in &r.frames {
        if let (Some(sink), Some(played)) = (f.sink_us, f.played_us) {
            wait += played.saturating_sub(sink) as f64 / 1_000.0;
            n += 1;
        }
    }
    let mean_wait = if n > 0 { wait / n as f64 } else { 0.0 };
    (inv_frac, r.reorder_skipped, mean_wait)
}

/// Figure 8: frame-ordering quality per policy (the paper plots arrival
/// scatter + reordered playback; we report the summary statistics of the
/// same traces).
#[must_use]
pub fn fig8() -> String {
    let mut out = String::from(
        "Fig 8: Ordering of frames at the sink (face recognition, 1 s reorder\n\
         buffer). Out-of-order = fraction of sink arrivals below the running\n\
         max sequence; skipped = frames playback gave up on; buffer wait =\n\
         mean extra delay added by reordering.\n\n",
    );
    let mut t = Table::new([
        "Policy",
        "Out-of-order (%)",
        "Skipped frames",
        "Buffer wait (ms)",
    ]);
    for policy in Policy::ALL {
        let r = evaluation_run(policy, Workload::FaceRecognition, EVAL_SECS, SEED);
        let (inv, skipped, wait) = ordering_stats(&r);
        t.row([
            policy.to_string(),
            f1(inv * 100.0),
            skipped.to_string(),
            f0(wait),
        ]);
    }
    out.push_str(&t.render());
    out
}

/// Figure 9: throughput timeline while a device joins / leaves.
#[must_use]
pub fn fig9() -> String {
    let mut out = String::from(
        "Fig 9: Throughput changes when a device joins (B,D running; G joins at\n\
         t=10s) and leaves (B,G,H running; G killed at t=10s).\n\n",
    );
    let join = joining_run(10, 30, SEED);
    let leave = leaving_run(10, 30, SEED);
    let mut t = Table::new(["t(s)", "join FPS", "leave FPS"]);
    for i in 0..30 {
        t.row([
            format!("{}", i + 1),
            f1(join.timeline[i].total_fps),
            f1(leave.timeline[i].total_fps),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(&format!(
        "\nframes lost during the leave transition: {}\n",
        leave.lost
    ));
    out
}

/// Figure 10: throughput and per-device load while G walks from good to
/// weak to poor signal.
#[must_use]
pub fn fig10() -> String {
    let dwell = 20;
    let r = mobility_run(dwell, SEED);
    let mut out = String::from(
        "Fig 10: Throughput and load changes when device G moves (B,G,H running\n\
         LRS; G dwells in Good, then Weak (-70..-60dBm), then Poor (-80..-70dBm)).\n\n",
    );
    let mut t = Table::new([
        "t(s)",
        "total FPS",
        "B FPS",
        "G FPS",
        "H FPS",
        "G RSSI (dBm)",
    ]);
    for p in &r.timeline {
        t.row([
            f0(p.t_s),
            f1(p.total_fps),
            f1(p.per_worker_fps[0]),
            f1(p.per_worker_fps[1]),
            f1(p.per_worker_fps[2]),
            f0(p.per_worker_rssi[1]),
        ]);
    }
    out.push_str(&t.render());
    out
}

/// Extension: cloudlet mode (§II). Compares the phone-only evaluation
/// swarm against the same swarm with one wall-powered cloudlet VM.
#[must_use]
pub fn cloudlet() -> String {
    use swing_sim::experiments::cloudlet_run;
    let mut out = String::from(
        "Extension: cloudlet mode (paper §II — \"Swing does support cloudlet\n\
         mode ... if a cloudlet infrastructure is available\").\n\
         Face recognition, 24 FPS offered, LRS.\n\n",
    );
    let mut t = Table::new([
        "Swarm",
        "FPS",
        "Lat mean (ms)",
        "Lat p95 (ms)",
        "Phone power (W)",
        "Cloudlet share",
    ]);
    let phones = evaluation_run(Policy::Lrs, Workload::FaceRecognition, EVAL_SECS, SEED);
    t.row([
        "phones only".to_owned(),
        f1(phones.throughput_fps),
        f0(phones.latency_ms.mean()),
        f0(phones.latency_percentile_ms(0.95)),
        f2(phones.aggregate_power_w()),
        "-".to_owned(),
    ]);
    let with_cl = cloudlet_run(Policy::Lrs, Workload::FaceRecognition, EVAL_SECS, SEED);
    let total: u64 = with_cl.workers.iter().map(|w| w.received).sum();
    let cl = with_cl.workers.iter().find(|w| w.name == "CL").unwrap();
    let phone_power: f64 = with_cl
        .workers
        .iter()
        .filter(|w| w.name != "CL")
        .map(|w| w.power_w())
        .sum();
    t.row([
        "phones + cloudlet".to_owned(),
        f1(with_cl.throughput_fps),
        f0(with_cl.latency_ms.mean()),
        f0(with_cl.latency_percentile_ms(0.95)),
        f2(phone_power),
        format!("{:.0}%", cl.received as f64 * 100.0 / total.max(1) as f64),
    ]);
    out.push_str(&t.render());
    out.push_str(
        "\nThe cloudlet absorbs most of the stream, cutting latency and\n\
         sparing the phones' batteries — the offload preference emerges\n\
         from LRS's latency measurements alone, with no special casing.\n",
    );
    out
}

/// Extension: multi-stage pipeline placement study (the paper's full
/// programming model with LRS at every upstream instance).
#[must_use]
pub fn pipeline_study() -> String {
    use swing_core::graph::{AppGraph, Deployment};
    use swing_core::routing::RouterConfig;
    use swing_core::DeviceId;
    use swing_sim::experiments::device;
    use swing_sim::pipeline::{run_pipeline, PipelineConfig, PipelineNode, StageCosts};

    let mut g = AppGraph::new("face-pipeline");
    let cam = g.add_source("camera");
    let det = g.add_operator("detect");
    let rec = g.add_operator("recognize");
    let dsp = g.add_sink("display");
    g.connect(cam, det).expect("edge");
    g.connect(det, rec).expect("edge");
    g.connect(rec, dsp).expect("edge");
    let costs = StageCosts::new().with(det, 60.0).with(rec, 50.0);
    let config = PipelineConfig {
        router: RouterConfig::new(Policy::Lrs),
        duration_us: 60 * 1_000_000,
        seed: SEED,
        ..PipelineConfig::default()
    };
    let nodes = vec![
        PipelineNode::new(device("A")),
        PipelineNode::new(device("G")),
        PipelineNode::new(device("H")),
        PipelineNode::new(device("I")),
        PipelineNode::new(device("B")),
    ];

    let mut out = String::from(
        "Extension: multi-stage deployment of the four-unit face pipeline\n\
         (camera -> detect -> recognize -> display) with a distributed LRS\n\
         router at every upstream instance. 24 FPS offered, 60 s.\n\n",
    );
    let mut t = Table::new([
        "Placement",
        "FPS",
        "Lat mean (ms)",
        "detect ms",
        "recognize ms",
    ]);

    // (a) Stage-per-device chain.
    let mut chain = Deployment::new();
    chain.place(cam, DeviceId(0));
    chain.place(det, DeviceId(2));
    chain.place(rec, DeviceId(3));
    chain.place(dsp, DeviceId(0));
    let r = run_pipeline(&g, &chain, &nodes, &costs, &config);
    t.row([
        "chain (1 device/stage)".to_owned(),
        f1(r.throughput),
        f0(r.latency_ms.mean()),
        f0(r.per_stage_ms[&det]),
        f0(r.per_stage_ms[&rec]),
    ]);

    // (b) Replicated stages across four workers.
    let mut replicated = Deployment::new();
    replicated.place(cam, DeviceId(0));
    replicated.place(det, DeviceId(1));
    replicated.place(det, DeviceId(2));
    replicated.place(rec, DeviceId(3));
    replicated.place(rec, DeviceId(4));
    replicated.place(dsp, DeviceId(0));
    let r = run_pipeline(&g, &replicated, &nodes, &costs, &config);
    t.row([
        "replicated (2x2 workers)".to_owned(),
        f1(r.throughput),
        f0(r.latency_ms.mean()),
        f0(r.per_stage_ms[&det]),
        f0(r.per_stage_ms[&rec]),
    ]);

    // (c) Fused stages, replicated on every worker.
    let mut fused = Deployment::new();
    fused.place(cam, DeviceId(0));
    for dev in 1..=4u32 {
        fused.place(det, DeviceId(dev));
        fused.place(rec, DeviceId(dev));
    }
    fused.place(dsp, DeviceId(0));
    let r = run_pipeline(&g, &fused, &nodes, &costs, &config);
    t.row([
        "fused on each worker".to_owned(),
        f1(r.throughput),
        f0(r.latency_ms.mean()),
        f0(r.per_stage_ms[&det]),
        f0(r.per_stage_ms[&rec]),
    ]);
    out.push_str(&t.render());
    out.push_str(
        "\nSplitting a compute-heavy operation across devices is what lets the\n\
         swarm exceed one device's capacity; replication is what removes the\n\
         single-replica ceiling. Fusing stages saves the mid-pipeline radio\n\
         hop at the cost of per-device load.\n",
    );
    out
}

/// Ablation studies of the design choices DESIGN.md calls out: reorder
/// buffer sizing, worker-selection headroom, per-destination window
/// depth, the pending-age latency floor, and round-robin probing.
#[must_use]
pub fn ablations() -> String {
    use swing_sim::experiments::{
        probing_ablation_run, stale_floor_ablation_run, tuned_evaluation_run,
    };
    let mut out = String::from("Ablations of Swing's design choices.\n\n");

    // 1. Reorder-buffer sizing (the paper: "a large buffer ensures
    //    better ordering but delays the display of the results").
    out.push_str("1. Reorder-buffer span (RR, face; ordering vs added delay)\n");
    let mut t = Table::new(["Span (s)", "Skipped frames", "Buffer wait (ms)"]);
    for span_s in [0.25, 0.5, 1.0, 2.0, 4.0] {
        let r = tuned_evaluation_run(
            Policy::Rr,
            (span_s * 1_000_000.0) as u64,
            1.0,
            26_000,
            60,
            SEED,
        );
        let (_, skipped, wait) = ordering_stats(&r);
        t.row([format!("{span_s}"), skipped.to_string(), f0(wait)]);
    }
    out.push_str(&t.render());
    out.push('\n');

    // 2. Worker-selection headroom.
    out.push_str("2. Worker-selection headroom (LRS, face)\n");
    let mut t = Table::new([
        "Headroom",
        "FPS",
        "Lat mean (ms)",
        "Devices used",
        "Power (W)",
    ]);
    for headroom in [1.0, 1.3, 1.6] {
        let r = tuned_evaluation_run(Policy::Lrs, 1_000_000, headroom, 26_000, 60, SEED);
        t.row([
            format!("{headroom}"),
            f1(r.throughput_fps),
            f0(r.latency_ms.mean()),
            r.active_workers(30).to_string(),
            f2(r.aggregate_power_w()),
        ]);
    }
    out.push_str(&t.render());
    out.push('\n');

    // 3. Per-destination window depth (the RR-collapse mechanism).
    out.push_str("3. Per-destination in-flight window (face)\n");
    let mut t = Table::new(["Window (frames)", "RR FPS", "LRS FPS"]);
    for frames in [1usize, 2, 4, 8, 16] {
        let bytes = frames * 6_500;
        let rr = tuned_evaluation_run(Policy::Rr, 1_000_000, 1.0, bytes, 60, SEED);
        let lrs = tuned_evaluation_run(Policy::Lrs, 1_000_000, 1.0, bytes, 60, SEED);
        t.row([
            frames.to_string(),
            f1(rr.throughput_fps),
            f1(lrs.throughput_fps),
        ]);
    }
    out.push_str(&t.render());
    out.push('\n');

    // 4. Pending-age latency floor: depth of the Fig-10 dip.
    out.push_str(
        "4. Pending-age latency floor (Fig 10 walk; worst 3 s after G hits poor signal)\n",
    );
    let mut t = Table::new(["Floor", "Worst 3 s window (FPS)", "Mean FPS in poor phase"]);
    for floor in [true, false] {
        let r = stale_floor_ablation_run(15, floor, SEED);
        let dip = r.timeline[30..40]
            .windows(3)
            .map(|w| w.iter().map(|p| p.total_fps).sum::<f64>() / 3.0)
            .fold(f64::INFINITY, f64::min);
        let mean = r.timeline[30..].iter().map(|p| p.total_fps).sum::<f64>()
            / (r.timeline.len() - 30) as f64;
        t.row([
            if floor { "on" } else { "off" }.to_owned(),
            f1(dip),
            f1(mean),
        ]);
    }
    out.push_str(&t.render());
    out.push('\n');

    // 5. Probing vs sample-aging rediscovery.
    out.push_str(
        "5. Rediscovery of a recovered worker (G walks Good->Poor->Good,\n\
         back in the good zone from t=40 s; first second G serves >=3 FPS)\n",
    );
    let mut t = Table::new(["Probing", "Rediscovered at (s)"]);
    for probing in [true, false] {
        let r = probing_ablation_run(20, probing, SEED);
        let at = r
            .timeline
            .iter()
            .enumerate()
            .skip(40)
            .find(|(_, p)| p.per_worker_fps[1] >= 3.0)
            .map(|(i, _)| i.to_string())
            .unwrap_or_else(|| "never".into());
        t.row([if probing { "on" } else { "off" }.to_owned(), at]);
    }
    out.push_str(&t.render());
    out.push_str(
        "\nFinding: with time-aged latency samples (10 s max age), explicit probing\n\
         and the optimistic fallback after samples age out are nearly redundant\n\
         rediscovery mechanisms.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // Keep these cheap: render the fast figures and sanity-check the
    // output structure. The expensive policy sweeps are covered by the
    // bench targets and integration tests.

    #[test]
    fn fig1_renders_rows_for_five_seconds() {
        let s = fig1();
        assert!(s.contains("Fig 1"));
        // Header + separator + 5 data rows.
        assert!(s.lines().count() >= 10);
        assert!(s.contains(" B "));
    }

    #[test]
    fn fig9_reports_lost_frames() {
        let s = fig9();
        assert!(s.contains("frames lost"));
        assert!(s.contains("join FPS"));
        assert!(s.matches('\n').count() > 30);
    }

    #[test]
    fn fig10_tracks_rssi_walk() {
        let s = fig10();
        assert!(s.contains("-75"));
        assert!(s.contains("-28"));
    }
}
