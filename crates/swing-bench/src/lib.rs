//! # swing-bench
//!
//! The reproduction harness: one bench target per table and figure of
//! the paper's evaluation, each regenerating the corresponding rows or
//! series from the simulator (`swing-sim`), plus Criterion micro-benches
//! of the core primitives.
//!
//! Run everything with `cargo bench -p swing-bench`; run one figure with
//! e.g. `cargo bench -p swing-bench --bench fig4_policies`. The text
//! output of each target is recorded in `EXPERIMENTS.md` next to the
//! paper's numbers.

#![warn(missing_docs)]

pub mod fmt;
pub mod repro;

pub use fmt::Table;
