//! Minimal aligned-table formatter for experiment output.

/// A simple column-aligned text table.
#[derive(Debug, Default, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given column headers.
    #[must_use]
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (padded or truncated to the header width).
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.header.len(), String::new());
        self.rows.push(row);
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with aligned columns.
    #[must_use]
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect::<Vec<_>>()
                .join("  ")
                .trim_end()
                .to_owned()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Format a float with one decimal.
#[must_use]
pub fn f1(v: f64) -> String {
    format!("{v:.1}")
}

/// Format a float with two decimals.
#[must_use]
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Format a float with no decimals.
#[must_use]
pub fn f0(v: f64) -> String {
    format!("{v:.0}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["policy", "fps"]);
        t.row(["RR", "8.9"]);
        t.row(["LRS", "23.9"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], "policy  fps");
        assert!(lines[1].starts_with("---"));
        assert_eq!(lines[2], "RR      8.9");
        assert_eq!(lines[3], "LRS     23.9");
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = Table::new(["a", "b", "c"]);
        t.row(["1"]);
        assert!(t.render().contains('1'));
    }

    #[test]
    fn number_formatting() {
        assert_eq!(f1(23.94), "23.9");
        assert_eq!(f2(0.456), "0.46");
        assert_eq!(f0(1234.6), "1235");
    }

    #[test]
    fn empty_table_renders_header_only() {
        let t = Table::new(["x"]);
        assert!(t.is_empty());
        assert_eq!(t.render().lines().count(), 2);
    }
}
