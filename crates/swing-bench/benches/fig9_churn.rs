//! Regenerates the paper's fig9 output. Run with
//! `cargo bench -p swing-bench --bench fig9_churn`.

fn main() {
    println!("{}", swing_bench::repro::fig9());
}
