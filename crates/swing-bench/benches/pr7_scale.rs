//! PR 7 scaling curve: federated sharded engine, devices × threads.
//!
//! Two sweeps over `swing_sim::federation`:
//!
//! - **scale**: device count grows (swarms × workers) at one thread —
//!   wall-clock and sensed-tuples/sec as the federation grows from a
//!   hundred devices to ten thousand.
//! - **threads**: a fixed 1 000-device / 100-swarm federation run at
//!   1, 2, 4, 8 threads — the conservative-synchronization speedup
//!   curve. On a single-core host the extra threads merely interleave,
//!   so the speedup column is only meaningful when `host_cores` >= the
//!   thread count; `scripts/check_bench_guard.py` enforces the 4×
//!   floor only on hosts with enough cores.
//!
//! Every point asserts per-swarm tuple conservation and, for the
//! threads sweep, byte-identical federated rollups against the
//! single-thread run — the perf claim is only worth making if the
//! schedule stayed exact.
//!
//! Run `--quick` for the CI-sized grid. Writes `BENCH_pr7_scale.json`
//! to the workspace root (override with `BENCH_OUT`).

use std::fmt::Write as _;
use std::time::Instant;
use swing_core::SECOND_US;
use swing_sim::federation::{Federation, FederationConfig};

struct Point {
    swarms: usize,
    workers: usize,
    threads: usize,
    devices: usize,
    windows: u64,
    wall_ms: u128,
    sensed: u64,
    tuples_per_sec: f64,
    conserved: bool,
    rollup: String,
}

/// One seeded federation run; virtual span fixed at 10 s so points are
/// comparable within a sweep.
fn run_point(swarms: usize, workers: usize, threads: usize) -> Point {
    const VIRTUAL_S: u64 = 10;
    let config = FederationConfig {
        swarms,
        workers_per_swarm: workers,
        frames_per_source: VIRTUAL_S * 30,
        seed: 1,
        threads,
        horizon_us: (VIRTUAL_S + 5) * SECOND_US,
        ..FederationConfig::default()
    };
    let fed = Federation::build(config).expect("federation builds");
    let wall = Instant::now();
    let report = fed.run();
    let wall_ms = wall.elapsed().as_millis();
    let sensed = report.federated_counter("swing_source_sensed_total");
    let tuples_per_sec = if wall_ms == 0 {
        0.0
    } else {
        sensed as f64 * 1000.0 / wall_ms as f64
    };
    Point {
        swarms,
        workers,
        threads,
        devices: report.devices,
        windows: report.windows,
        wall_ms,
        sensed,
        tuples_per_sec,
        conserved: report.all_conserved(),
        rollup: report.federated_json,
    }
}

fn row_json(p: &Point, extra: &str) -> String {
    format!(
        "{{\"swarms\": {}, \"workers\": {}, \"devices\": {}, \"threads\": {}, \
         \"windows\": {}, \"wall_ms\": {}, \"sensed\": {}, \
         \"tuples_per_sec\": {:.0}, \"conserved\": {}{extra}}}",
        p.swarms,
        p.workers,
        p.devices,
        p.threads,
        p.windows,
        p.wall_ms,
        p.sensed,
        p.tuples_per_sec,
        p.conserved
    )
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);

    // Devices sweep at one thread: the engine-cost curve itself.
    let scale_grid: &[(usize, usize)] = if quick {
        &[(10, 10), (50, 10)]
    } else {
        &[(10, 10), (100, 10), (100, 32), (100, 100)]
    };
    // Thread sweep at a fixed shape with good shard/thread balance.
    let (t_swarms, t_workers) = (100, 10);
    let thread_grid: &[usize] = if quick { &[1, 2] } else { &[1, 2, 4, 8] };

    println!("pr7 scale: cores={cores} quick={quick}");
    println!("--- devices sweep (1 thread) ---");
    let mut scale_rows = Vec::new();
    for &(s, w) in scale_grid {
        let p = run_point(s, w, 1);
        assert!(p.conserved, "{}x{w} violated conservation", p.swarms);
        println!(
            "{:>3} swarms x {:>3} workers = {:>5} devices  wall {:>7} ms  {:>7.0} tuples/s",
            p.swarms, p.workers, p.devices, p.wall_ms, p.tuples_per_sec
        );
        scale_rows.push(row_json(&p, ""));
    }

    println!("--- thread sweep ({t_swarms} swarms x {t_workers} workers) ---");
    let mut thread_rows = Vec::new();
    let mut base_wall = 0u128;
    let mut base_rollup = String::new();
    for &t in thread_grid {
        let p = run_point(t_swarms, t_workers, t);
        assert!(p.conserved, "{t} threads violated conservation");
        if t == 1 {
            base_wall = p.wall_ms.max(1);
            base_rollup = p.rollup.clone();
        } else {
            assert_eq!(
                p.rollup, base_rollup,
                "federated rollup diverged at {t} threads — schedule not exact"
            );
        }
        let speedup = base_wall as f64 / p.wall_ms.max(1) as f64;
        println!(
            "threads {t}  wall {:>7} ms  {:>7.0} tuples/s  speedup {speedup:.2}x",
            p.wall_ms, p.tuples_per_sec
        );
        thread_rows.push(row_json(&p, &format!(", \"speedup_vs_1t\": {speedup:.2}")));
    }

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"pr\": 7,");
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(json, "  \"host_cores\": {cores},");
    let _ = writeln!(
        json,
        "  \"harness\": \"seeded Federation runs (10 virtual seconds, seed 1); \
         host-specific — compare columns within one report, regenerate rather than \
         compare across machines; speedup_vs_1t is meaningful only when host_cores >= threads\","
    );
    let _ = writeln!(json, "  \"scale\": [");
    let _ = writeln!(json, "    {}", scale_rows.join(",\n    "));
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"threads\": [");
    let _ = writeln!(json, "    {}", thread_rows.join(",\n    "));
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");

    let out = std::env::var("BENCH_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_pr7_scale.json", env!("CARGO_MANIFEST_DIR")));
    std::fs::write(&out, &json).expect("write BENCH_pr7_scale.json");
    println!("\nwrote {out}");
}
