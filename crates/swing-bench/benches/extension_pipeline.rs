//! Extension experiment: multi-stage pipeline placement. Run with
//! `cargo bench -p swing-bench --bench extension_pipeline`.

fn main() {
    println!("{}", swing_bench::repro::pipeline_study());
}
