//! Regenerates the paper's fig4 output. Run with
//! `cargo bench -p swing-bench --bench fig4_policies`.

fn main() {
    println!("{}", swing_bench::repro::fig4());
}
