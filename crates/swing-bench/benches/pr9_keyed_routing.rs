//! PR9 keyed-routing overhead microbench: measures what the
//! partition-aware dispatch path costs per tuple, against the PR2
//! `dispatch_clone_and_record` baseline, and writes the result to
//! `BENCH_pr9_keyed.json` at the workspace root.
//!
//! Run with `cargo bench -p swing-bench --bench pr9_keyed_routing`
//! (append `-- --quick` for the CI smoke run, `-- --assert` to fail the
//! process when the Broadcast-edge overhead exceeds the 5% budget).
//!
//! Two rows:
//!
//! * `dispatch_broadcast_overhead` — the **gated** row. Broadcast is
//!   every pre-PR9 edge, so the partition generalization must be free
//!   there: the instrumented column adds exactly what the refactored
//!   dispatcher now runs per Broadcast tuple (one partition-mode
//!   discriminant match yielding no key hash) on top of the PR2 dispatch
//!   work. Budget: 5% over the baseline.
//! * `dispatch_keyed_overhead` — informational. The full `KeyBy` path:
//!   hash the key field to canonical bytes, rendezvous-hash it over four
//!   live downstream instances, record the owner in the key-ownership
//!   map and bump the per-downstream routed count (the publish-time
//!   telemetry feed).

use std::collections::HashMap;
use std::hint::black_box;
use std::time::Instant;
use swing_core::routing::partition::{rendezvous_owner, tuple_key_hash};
use swing_core::{SeqNo, Tuple, UnitId};

/// Local mirror of the dispatcher's partition mode, so the bench charges
/// the same discriminant match the hot path runs.
enum Mode {
    Broadcast,
    KeyBy {
        field: String,
        owners: HashMap<u64, UnitId>,
    },
}

/// Nanoseconds per iteration for one timed run.
fn time_ns<F: FnMut()>(f: &mut F, iters: u64) -> f64 {
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

/// Interleaved best-of-`runs` for a baseline/instrumented pair, same
/// discipline as the PR2/PR3/PR5 harnesses.
fn bench_pair<A: FnMut(), B: FnMut()>(
    mut baseline: A,
    mut instrumented: B,
    iters: u64,
    runs: usize,
) -> (f64, f64) {
    time_ns(&mut baseline, iters / 10 + 1);
    time_ns(&mut instrumented, iters / 10 + 1);
    let mut base_best = f64::INFINITY;
    let mut inst_best = f64::INFINITY;
    for _ in 0..runs {
        base_best = base_best.min(time_ns(&mut baseline, iters));
        inst_best = inst_best.min(time_ns(&mut instrumented, iters));
    }
    (base_best, inst_best)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let assert_budget = std::env::args().any(|a| a == "--assert");
    let (iters, runs) = if quick { (50_000, 5) } else { (200_000, 7) };

    // The PR2 dispatch workload: a 6 kB camera frame plus a scalar key
    // field, rotated across 4096 distinct tuples so payload refcounts
    // touch memory beyond L2 the way production dispatch does.
    const ROT: usize = 4096;
    let tuples: Vec<Tuple> = (0..ROT)
        .map(|i| {
            Tuple::with_seq(SeqNo(i as u64))
                .with("frame", vec![(i % 251) as u8; 6_000])
                .with("cam", (i % 36) as i64)
        })
        .collect();

    let members = [UnitId(11), UnitId(12), UnitId(13), UnitId(14)];

    // Pin the CPU at its working frequency before the first row.
    {
        let spin_until = Instant::now() + std::time::Duration::from_millis(200);
        let mut i = 0usize;
        while Instant::now() < spin_until {
            black_box((tuples[i].clone(), tuples[i].clone()));
            i = (i + 1) & (ROT - 1);
        }
    }

    // --- gated row: Broadcast dispatch, pre- vs post-refactor ---
    let mode = Mode::Broadcast;
    let (mut bi, mut ai) = (0usize, 0usize);
    let (baseline, instrumented) = bench_pair(
        || {
            let t = black_box(&tuples[bi]);
            let wire_copy = t.clone();
            let inflight_copy = t.clone();
            black_box((wire_copy, inflight_copy));
            bi = (bi + 1) & (ROT - 1);
        },
        || {
            let t = black_box(&tuples[ai]);
            // The partition-aware path's only Broadcast addition: the
            // mode match deciding no key hash is needed.
            let key_hash = match black_box(&mode) {
                Mode::KeyBy { field, .. } => Some(tuple_key_hash(t, field)),
                Mode::Broadcast => None,
            };
            black_box(key_hash);
            let wire_copy = t.clone();
            let inflight_copy = t.clone();
            black_box((wire_copy, inflight_copy));
            ai = (ai + 1) & (ROT - 1);
        },
        iters,
        runs,
    );
    let overhead_pct = (instrumented / baseline - 1.0).max(0.0) * 100.0;
    println!(
        "broadcast edge  baseline {baseline:>8.1} ns  instrumented {instrumented:>8.1} ns  overhead {overhead_pct:>5.2}%"
    );

    // --- informational row: the full KeyBy dispatch path ---
    let mut mode = Mode::KeyBy {
        field: "cam".to_owned(),
        owners: HashMap::new(),
    };
    let mut routed: Vec<(UnitId, u64)> = Vec::new();
    let (mut bi, mut ai) = (0usize, 0usize);
    let (keyed_base, keyed_inst) = bench_pair(
        || {
            let t = black_box(&tuples[bi]);
            black_box((t.clone(), t.clone()));
            bi = (bi + 1) & (ROT - 1);
        },
        || {
            let t = black_box(&tuples[ai]);
            let key_hash = match &mode {
                Mode::KeyBy { field, .. } => Some(tuple_key_hash(t, field)),
                Mode::Broadcast => None,
            };
            let h = key_hash.expect("keyed mode");
            let dest = rendezvous_owner(h, members.iter().copied()).expect("live members");
            if let Mode::KeyBy { owners, .. } = &mut mode {
                owners.insert(h, dest);
            }
            match routed.iter_mut().find(|(u, _)| *u == dest) {
                Some((_, n)) => *n += 1,
                None => routed.push((dest, 1)),
            }
            let wire_copy = t.clone();
            let inflight_copy = t.clone();
            black_box((wire_copy, inflight_copy));
            ai = (ai + 1) & (ROT - 1);
        },
        iters,
        runs,
    );
    let keyed_pct = (keyed_inst / keyed_base - 1.0).max(0.0) * 100.0;
    println!(
        "keyed edge      baseline {keyed_base:>8.1} ns  instrumented {keyed_inst:>8.1} ns  overhead {keyed_pct:>5.2}%"
    );
    // Keep the side tables observable so the work can't be optimized
    // out, and sanity-check the rendezvous spread all four ways.
    if let Mode::KeyBy { owners, .. } = &mode {
        assert!(owners.len() >= 32, "36 key values must populate the map");
    }
    assert_eq!(
        routed.len(),
        members.len(),
        "keys must spread to all members"
    );

    let json = format!(
        "{{\n  \"pr\": 9,\n  \"quick\": {quick},\n  \"budget_pct\": 5.0,\n  \"harness\": \"self-contained Instant loop (min-of-runs); host-specific — compare columns within one report, regenerate rather than compare across machines\",\n  \"benches\": [\n    {{\"name\": \"dispatch_broadcast_overhead\", \"unit\": \"ns/op\", \"baseline\": {baseline:.1}, \"instrumented\": {instrumented:.1}, \"overhead_pct\": {overhead_pct:.2}}},\n    {{\"name\": \"dispatch_keyed_overhead\", \"unit\": \"ns/op\", \"baseline\": {keyed_base:.1}, \"instrumented\": {keyed_inst:.1}, \"overhead_pct\": {keyed_pct:.2}}}\n  ]\n}}\n"
    );
    let out = std::env::var("BENCH_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_pr9_keyed.json", env!("CARGO_MANIFEST_DIR")));
    std::fs::write(&out, &json).expect("write BENCH_pr9_keyed.json");
    println!("\nwrote {out}");

    if assert_budget {
        assert!(
            overhead_pct <= 5.0,
            "Broadcast-edge dispatch overhead {overhead_pct:.2}% exceeds the 5% budget"
        );
        println!("Broadcast-edge overhead within the 5% budget");
    }
}
