//! Ablation studies of Swing's design choices. Run with
//! `cargo bench -p swing-bench --bench ablations`.

fn main() {
    println!("{}", swing_bench::repro::ablations());
}
