//! Regenerates the paper's fig1 output. Run with
//! `cargo bench -p swing-bench --bench fig1_single_device`.

fn main() {
    println!("{}", swing_bench::repro::fig1());
}
