//! Regenerates the paper's fig7 output. Run with
//! `cargo bench -p swing-bench --bench fig7_efficiency`.

fn main() {
    println!("{}", swing_bench::repro::fig7());
}
