//! Regenerates the paper's fig5 output. Run with
//! `cargo bench -p swing-bench --bench fig5_usage`.

fn main() {
    println!("{}", swing_bench::repro::fig5());
}
