//! PR10 vitals-snapshot overhead microbench: measures what the live
//! energy layer costs per dispatched tuple, against the PR2
//! `dispatch_clone_and_record` baseline, and writes the result to
//! `BENCH_pr10_tournament.json` at the workspace root.
//!
//! Run with `cargo bench -p swing-bench --bench pr10_vitals`
//! (append `-- --quick` for the CI smoke run, `-- --assert` to fail the
//! process when the vitals-snapshot overhead exceeds the 5% budget).
//!
//! Two rows:
//!
//! * `dispatch_vitals_overhead` — the **gated** row. The instrumented
//!   column adds exactly what the energy layer now runs per dispatched
//!   tuple on top of the PR2 dispatch work: one [`Battery::drain`]
//!   charge (the per-cycle CPU + Wi-Fi joule accounting) plus, every
//!   256 tuples, a full [`WorkerVitals`] snapshot published into the
//!   live router via [`Router::note_vitals`] — the same amortization the
//!   runtime uses (vitals ride the control period, not the data path).
//!   Budget: 5% over the baseline.
//! * `policy_reselect_cost` — informational. One energy-aware
//!   re-selection: an RSS `rebalance` over eight vitals-bearing
//!   downstreams, the periodic control-plane work a tournament run
//!   triggers once per second — nowhere near the per-tuple path.

use std::hint::black_box;
use std::time::Instant;
use swing_core::config::RouterConfig;
use swing_core::routing::{Policy, Router};
use swing_core::{SeqNo, Tuple, UnitId};
use swing_device::battery::Battery;
use swing_device::power::PowerModel;

/// Nanoseconds per iteration for one timed run.
fn time_ns<F: FnMut()>(f: &mut F, iters: u64) -> f64 {
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

/// Interleaved best-of-`runs` for a baseline/instrumented pair, same
/// discipline as the PR2/PR3/PR5/PR9 harnesses.
fn bench_pair<A: FnMut(), B: FnMut()>(
    mut baseline: A,
    mut instrumented: B,
    iters: u64,
    runs: usize,
) -> (f64, f64) {
    time_ns(&mut baseline, iters / 10 + 1);
    time_ns(&mut instrumented, iters / 10 + 1);
    let mut base_best = f64::INFINITY;
    let mut inst_best = f64::INFINITY;
    for _ in 0..runs {
        base_best = base_best.min(time_ns(&mut baseline, iters));
        inst_best = inst_best.min(time_ns(&mut instrumented, iters));
    }
    (base_best, inst_best)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let assert_budget = std::env::args().any(|a| a == "--assert");
    let (iters, runs) = if quick { (50_000, 5) } else { (200_000, 7) };

    // The PR2 dispatch workload: a 6 kB camera frame plus a scalar key
    // field, rotated across 4096 distinct tuples so payload refcounts
    // touch memory beyond L2 the way production dispatch does.
    const ROT: usize = 4096;
    let tuples: Vec<Tuple> = (0..ROT)
        .map(|i| {
            Tuple::with_seq(SeqNo(i as u64))
                .with("frame", vec![(i % 251) as u8; 6_000])
                .with("cam", (i % 36) as i64)
        })
        .collect();

    // Pin the CPU at its working frequency before the first row.
    {
        let spin_until = Instant::now() + std::time::Duration::from_millis(200);
        let mut i = 0usize;
        while Instant::now() < spin_until {
            black_box((tuples[i].clone(), tuples[i].clone()));
            i = (i + 1) & (ROT - 1);
        }
    }

    // --- gated row: dispatch with the energy layer's per-tuple work ---
    let model = PowerModel::new(&swing_device::testbed()[1]);
    let mut battery = Battery::new(23_310.0);
    let mut router = Router::new(RouterConfig::new(Policy::EnergyLrs), 10);
    for u in 11..15 {
        router.add_downstream(UnitId(u), 0);
    }
    let (mut bi, mut ai) = (0usize, 0usize);
    let (baseline, instrumented) = bench_pair(
        || {
            let t = black_box(&tuples[bi]);
            let wire_copy = t.clone();
            let inflight_copy = t.clone();
            black_box((wire_copy, inflight_copy));
            bi = (bi + 1) & (ROT - 1);
        },
        || {
            let t = black_box(&tuples[ai]);
            // One dispatch cycle's joule charge: CPU over the service
            // span plus Wi-Fi airtime for the 6 kB frame.
            let w = model.total_power_w(black_box(0.8), black_box(1_200_000.0));
            black_box(battery.drain(w, 1e-4));
            // Amortized vitals publication: the control plane snapshots
            // charge fraction + drain into the router every 256 tuples.
            if ai & 255 == 0 {
                router.note_vitals(UnitId(11 + (ai as u32 & 3)), battery.level(), w, -40.0);
            }
            let wire_copy = t.clone();
            let inflight_copy = t.clone();
            black_box((wire_copy, inflight_copy));
            ai = (ai + 1) & (ROT - 1);
        },
        iters,
        runs,
    );
    let overhead_pct = (instrumented / baseline - 1.0).max(0.0) * 100.0;
    println!(
        "vitals dispatch baseline {baseline:>8.1} ns  instrumented {instrumented:>8.1} ns  overhead {overhead_pct:>5.2}%"
    );
    assert!(
        !battery.is_empty(),
        "the bench battery must outlive the measurement"
    );

    // --- informational row: one energy-aware re-selection ---
    let mut rss = Router::new(RouterConfig::new(Policy::Rss), 10);
    for u in 1..9u32 {
        rss.add_downstream(UnitId(u), 0);
        rss.note_vitals(UnitId(u), 1.0 - f64::from(u) * 0.1, 1.2, -40.0);
        // Seed a latency estimate so selection has rates to rank.
        rss.on_send(SeqNo(u64::from(u)), UnitId(u), 0);
        rss.on_ack(SeqNo(u64::from(u)), 90_000, 80_000);
    }
    let mut now = 1_000_000u64;
    let resel_iters = iters / 100 + 1;
    let mut tick = || {
        now += 1_000_000;
        rss.rebalance(black_box(now));
        black_box(rss.snapshot(now).routes.len());
    };
    time_ns(&mut tick, resel_iters / 10 + 1);
    let mut resel_best = f64::INFINITY;
    for _ in 0..runs {
        resel_best = resel_best.min(time_ns(&mut tick, resel_iters));
    }
    println!("RSS re-selection (8 workers)      {resel_best:>8.1} ns/reselect");

    let json = format!(
        "{{\n  \"pr\": 10,\n  \"quick\": {quick},\n  \"budget_pct\": 5.0,\n  \"harness\": \"self-contained Instant loop (min-of-runs); host-specific — compare columns within one report, regenerate rather than compare across machines\",\n  \"benches\": [\n    {{\"name\": \"dispatch_vitals_overhead\", \"unit\": \"ns/op\", \"baseline\": {baseline:.1}, \"instrumented\": {instrumented:.1}, \"overhead_pct\": {overhead_pct:.2}}},\n    {{\"name\": \"policy_reselect_cost\", \"unit\": \"ns/reselect\", \"baseline\": 0.0, \"instrumented\": {resel_best:.1}, \"overhead_pct\": 0.0}}\n  ]\n}}\n"
    );
    let out = std::env::var("BENCH_OUT").unwrap_or_else(|_| {
        format!(
            "{}/../../BENCH_pr10_tournament.json",
            env!("CARGO_MANIFEST_DIR")
        )
    });
    std::fs::write(&out, &json).expect("write BENCH_pr10_tournament.json");
    println!("\nwrote {out}");

    if assert_budget {
        assert!(
            overhead_pct <= 5.0,
            "vitals-snapshot dispatch overhead {overhead_pct:.2}% exceeds the 5% budget"
        );
        println!("vitals-snapshot overhead within the 5% budget");
    }
}
