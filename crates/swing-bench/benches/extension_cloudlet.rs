//! Extension experiment: cloudlet mode. Run with
//! `cargo bench -p swing-bench --bench extension_cloudlet`.

fn main() {
    println!("{}", swing_bench::repro::cloudlet());
}
