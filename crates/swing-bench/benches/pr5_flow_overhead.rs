//! PR5 flow-control overhead microbench: measures what the overload
//! subsystem adds to the per-tuple dispatch path when it is enabled but
//! not shedding — the common case — against the PR2
//! `dispatch_clone_and_record` baseline, and writes the result to
//! `BENCH_pr5_flow.json` at the workspace root.
//!
//! Run with `cargo bench -p swing-bench --bench pr5_flow_overhead`
//! (append `-- --quick` for the CI smoke run, `-- --assert` to fail the
//! process when dispatch overhead exceeds the 5% budget).
//!
//! The baseline replays PR2's dispatch work: clone the tuple once for
//! the wire message and once for the retransmission table. The gated
//! row adds exactly the bookkeeping the *sending* dispatcher now
//! performs per tuple with `FlowConfig` enabled: the admission-gate
//! check (selected-downstream credit headroom), one credit consume
//! (an entry update in the flat per-downstream credit ledger), and —
//! at the executor's publish cadence, every 64 dispatches — the
//! occupancy sync into the credit gauges. A second, ungated row also
//! charges the receiving executor's bounded-`Mailbox` push/pop and the
//! ACK-side credit release to the same dispatch for a whole-cycle
//! view, mirroring the PR3 harness's dispatch/dispatch+ack split (in
//! production those run on different executors, usually different
//! devices).

use std::hint::black_box;
use std::time::Instant;
use swing_core::flow::{FlowConfig, Mailbox, PushOutcome};
use swing_core::{SeqNo, Tuple, UnitId};
use swing_telemetry::{names, Telemetry};

/// Nanoseconds per iteration for one timed run.
fn time_ns<F: FnMut()>(f: &mut F, iters: u64) -> f64 {
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

/// Interleaved best-of-`runs` for a baseline/instrumented pair, same
/// discipline as the PR2/PR3 harnesses: alternate the columns so
/// frequency drift hits both alike.
fn bench_pair<A: FnMut(), B: FnMut()>(
    mut baseline: A,
    mut instrumented: B,
    iters: u64,
    runs: usize,
) -> (f64, f64) {
    time_ns(&mut baseline, iters / 10 + 1);
    time_ns(&mut instrumented, iters / 10 + 1);
    let mut base_best = f64::INFINITY;
    let mut inst_best = f64::INFINITY;
    for _ in 0..runs {
        base_best = base_best.min(time_ns(&mut baseline, iters));
        inst_best = inst_best.min(time_ns(&mut instrumented, iters));
    }
    (base_best, inst_best)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let assert_budget = std::env::args().any(|a| a == "--assert");
    let (iters, runs) = if quick { (50_000, 5) } else { (200_000, 7) };

    // The PR2 dispatch workload: a 6 kB camera frame plus a scalar,
    // rotated across 4096 distinct tuples so payload refcounts touch
    // memory beyond L2 the way production dispatch does.
    const ROT: usize = 4096;
    let tuples: Vec<Tuple> = (0..ROT)
        .map(|i| {
            Tuple::with_seq(SeqNo(i as u64))
                .with("frame", vec![(i % 251) as u8; 6_000])
                .with("cam", 3i64)
        })
        .collect();

    // The dispatcher-side state flow control adds: the credit window
    // toward three downstream replicas and a bounded receiving mailbox.
    // Capacity is high enough that the steady state never sheds — this
    // measures the bookkeeping, not the shedding.
    let flow = FlowConfig::bounded(64);
    let downstreams = [UnitId(11), UnitId(12), UnitId(13)];
    // The dispatcher's credit ledger: a flat vector scanned linearly,
    // pre-seeded with every downstream as connect() would.
    let mut outstanding: Vec<(UnitId, u32)> = downstreams.iter().map(|&u| (u, 0)).collect();
    let mut mailbox: Mailbox<Tuple> = Mailbox::from_config(&flow);
    let telemetry = Telemetry::new();
    let credit_gauges: Vec<_> = downstreams
        .iter()
        .map(|u| {
            let d = u.0.to_string();
            telemetry.gauge(
                names::EXEC_CREDITS,
                &[
                    (names::LABEL_WORKER, "bench"),
                    (names::LABEL_DOWNSTREAM, &d),
                ],
            )
        })
        .collect();

    // Pin the CPU at its working frequency before the first row.
    {
        let spin_until = Instant::now() + std::time::Duration::from_millis(200);
        let mut i = 0usize;
        while Instant::now() < spin_until {
            black_box((tuples[i].clone(), tuples[i].clone()));
            i = (i + 1) & (ROT - 1);
        }
    }

    // --- dispatch path: clone x2 vs clone x2 + sender-side flow work ---
    let (mut bi, mut ai, mut di) = (0usize, 0usize, 0usize);
    let credits = flow.credits_per_downstream;
    let (baseline, instrumented) = bench_pair(
        || {
            let t = black_box(&tuples[bi]);
            let wire_copy = t.clone();
            let inflight_copy = t.clone();
            black_box((wire_copy, inflight_copy));
            bi = (bi + 1) & (ROT - 1);
        },
        || {
            let t = black_box(&tuples[ai]);
            // Admission gate: any selected downstream with headroom.
            let admit = outstanding.iter().any(|&(_, n)| n < credits);
            assert!(admit, "steady state must never close the gate");
            // Rotate destinations without a hot-loop division.
            let dest = downstreams[di];
            di = if di + 1 == downstreams.len() {
                0
            } else {
                di + 1
            };
            // The PR2 dispatch work itself: the same two clones.
            let wire_copy = t.clone();
            let inflight_copy = t.clone();
            black_box((wire_copy, inflight_copy));
            // Credit consume on send; released again so the steady
            // state neither drifts nor closes the gate.
            if let Some((_, n)) = outstanding.iter_mut().find(|(u, _)| *u == dest) {
                *n = (*n + 1).saturating_sub(1);
            }
            if ai & 0x3f == 0 {
                // Publish cadence: refresh the credit gauges.
                for (k, &(_, out)) in outstanding.iter().enumerate() {
                    credit_gauges[k].set_u64(u64::from(credits.saturating_sub(out)));
                }
            }
            ai = (ai + 1) & (ROT - 1);
        },
        iters,
        runs,
    );
    let overhead_pct = (instrumented / baseline - 1.0).max(0.0) * 100.0;
    println!(
        "dispatch+flow   baseline {baseline:>8.1} ns  instrumented {instrumented:>8.1} ns  overhead {overhead_pct:>5.2}%"
    );

    // --- whole cycle (informational): also charge the receiving
    //     executor's bounded mailbox and the ACK-side credit release ---
    let (mut bi, mut ai, mut di) = (0usize, 0usize, 0usize);
    let (cycle_base, cycle_inst) = bench_pair(
        || {
            let t = black_box(&tuples[bi]);
            black_box((t.clone(), t.clone()));
            bi = (bi + 1) & (ROT - 1);
        },
        || {
            let t = black_box(&tuples[ai]);
            let admit = outstanding.iter().any(|&(_, n)| n < credits);
            assert!(admit, "steady state must never close the gate");
            let dest = downstreams[di];
            di = if di + 1 == downstreams.len() {
                0
            } else {
                di + 1
            };
            // The wire copy travels through the bounded mailbox (a
            // move, as on the receiving executor), so the clone count
            // matches the baseline exactly.
            let wire_copy = t.clone();
            let inflight_copy = t.clone();
            if let Some((_, n)) = outstanding.iter_mut().find(|(u, _)| *u == dest) {
                *n += 1;
            }
            match mailbox.push(wire_copy) {
                PushOutcome::Queued => {}
                _ => unreachable!("capacity 64 never sheds at depth <= 1"),
            }
            black_box((mailbox.pop(), inflight_copy));
            // ACK: release the credit.
            if let Some((_, n)) = outstanding.iter_mut().find(|(u, _)| *u == dest) {
                *n = n.saturating_sub(1);
            }
            if ai & 0x3f == 0 {
                for (k, &(_, out)) in outstanding.iter().enumerate() {
                    credit_gauges[k].set_u64(u64::from(credits.saturating_sub(out)));
                }
            }
            ai = (ai + 1) & (ROT - 1);
        },
        iters,
        runs,
    );
    let cycle_overhead_pct = (cycle_inst / cycle_base - 1.0).max(0.0) * 100.0;
    println!(
        "full flow cycle baseline {cycle_base:>8.1} ns  instrumented {cycle_inst:>8.1} ns  overhead {cycle_overhead_pct:>5.2}%"
    );

    // Keep the gauges observable so the work can't be optimized out.
    let snap = telemetry.snapshot();
    assert!(snap.gauges_named(names::EXEC_CREDITS).count() == downstreams.len());

    let json = format!(
        "{{\n  \"pr\": 5,\n  \"quick\": {quick},\n  \"budget_pct\": 5.0,\n  \"harness\": \"self-contained Instant loop (min-of-runs); host-specific — compare columns within one report, regenerate rather than compare across machines\",\n  \"benches\": [\n    {{\"name\": \"dispatch_flow_overhead\", \"unit\": \"ns/op\", \"baseline\": {baseline:.1}, \"instrumented\": {instrumented:.1}, \"overhead_pct\": {overhead_pct:.2}}},\n    {{\"name\": \"flow_whole_cycle_overhead\", \"unit\": \"ns/op\", \"baseline\": {cycle_base:.1}, \"instrumented\": {cycle_inst:.1}, \"overhead_pct\": {cycle_overhead_pct:.2}}}\n  ]\n}}\n"
    );
    let out = std::env::var("BENCH_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_pr5_flow.json", env!("CARGO_MANIFEST_DIR")));
    std::fs::write(&out, &json).expect("write BENCH_pr5_flow.json");
    println!("\nwrote {out}");

    if assert_budget {
        assert!(
            overhead_pct <= 5.0,
            "flow-control dispatch overhead {overhead_pct:.2}% exceeds the 5% budget"
        );
        println!("flow-control overhead within the 5% budget");
    }
}
