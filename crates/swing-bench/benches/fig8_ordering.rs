//! Regenerates the paper's fig8 output. Run with
//! `cargo bench -p swing-bench --bench fig8_ordering`.

fn main() {
    println!("{}", swing_bench::repro::fig8());
}
