//! Regenerates the paper's fig2 output. Run with
//! `cargo bench -p swing-bench --bench fig2_dynamism`.

fn main() {
    println!("{}", swing_bench::repro::fig2());
}
