//! Criterion micro-benchmarks of the primitives on Swing's hot paths:
//! the per-tuple routing decision (the paper stresses LRS "yields fast
//! low complexity routing decisions per tuple"), worker selection, the
//! wire format, the reorder buffer, the application kernels, and a full
//! simulated evaluation run.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;
use swing_apps::face;
use swing_apps::voice;
use swing_core::config::ReorderConfig;
use swing_core::reorder::ReorderBuffer;
use swing_core::routing::selection::select_workers;
use swing_core::routing::{Policy, Router, RouterConfig};
use swing_core::{SeqNo, Tuple, UnitId};
use swing_device::profile::Workload;
use swing_net::Message;
use swing_sim::experiments::evaluation_run;

fn bench_routing(c: &mut Criterion) {
    let mut group = c.benchmark_group("routing");
    for policy in [Policy::Rr, Policy::Lrs] {
        group.bench_function(format!("route_decision/{policy}"), |b| {
            let mut router = Router::new(RouterConfig::new(policy), 1);
            for i in 0..8 {
                router.add_downstream(UnitId(i), 0);
            }
            // Warm the estimator so LRS runs its real weighted path.
            for i in 0..64u64 {
                let d = router.route(i * 1_000).unwrap();
                router.on_send(SeqNo(i), d, i * 1_000);
                router.on_ack(SeqNo(i), i * 1_000 + 80_000, 60_000);
            }
            let mut now = 1_000_000u64;
            let mut seq = 1_000u64;
            b.iter(|| {
                now += 41_666;
                let dest = router.route(now).unwrap();
                router.on_send(SeqNo(seq), dest, now);
                router.on_ack(SeqNo(seq), now + 80_000, 60_000);
                seq += 1;
                black_box(dest)
            });
        });
    }
    group.bench_function("worker_selection/8", |b| {
        let rates: Vec<(UnitId, f64)> = (0..8).map(|i| (UnitId(i), 2.0 + i as f64 * 1.7)).collect();
        b.iter(|| black_box(select_workers(black_box(&rates), 24.0)));
    });
    group.bench_function("worker_selection/64", |b| {
        let rates: Vec<(UnitId, f64)> = (0..64)
            .map(|i| (UnitId(i), 1.0 + (i as f64 * 13.7) % 19.0))
            .collect();
        b.iter(|| black_box(select_workers(black_box(&rates), 100.0)));
    });
    group.finish();
}

fn bench_wire(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire");
    let msg = Message::Data {
        dest: UnitId(3),
        from: UnitId(0),
        tuple: Tuple::with_seq(SeqNo(9)).with("frame", vec![7u8; 6_000]),
    };
    group.bench_function("encode_6kB_frame", |b| {
        b.iter(|| black_box(msg.encode()));
    });
    group.bench_function("encode_into_reused_buffer", |b| {
        let mut scratch = bytes::BytesMut::new();
        b.iter(|| {
            scratch.clear();
            msg.encode_into(&mut scratch);
            black_box(scratch.len())
        });
    });
    let bytes = msg.encode();
    group.bench_function("decode_6kB_frame", |b| {
        b.iter(|| black_box(Message::decode(black_box(&bytes)).unwrap()));
    });
    group.bench_function("decode_shared_6kB_frame", |b| {
        let frame = swing_core::SharedBytes::copy_from_slice(&bytes);
        b.iter(|| black_box(Message::decode_shared(black_box(&frame)).unwrap()));
    });
    group.finish();
}

fn bench_reorder(c: &mut Criterion) {
    c.bench_function("reorder/push_shuffled_window", |b| {
        // Arrivals shuffled within a 8-frame window, like real traces.
        let order: Vec<u64> = (0..256u64).map(|i| (i / 8) * 8 + (i * 5 + 3) % 8).collect();
        b.iter_batched(
            || ReorderBuffer::new(ReorderConfig::one_second()),
            |mut buf| {
                for (i, &s) in order.iter().enumerate() {
                    black_box(buf.push(SeqNo(s), s, i as u64 * 1_000));
                }
                buf
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels");
    group.sample_size(30);

    let mut frame_gen = face::FrameGenerator::new(face::Gallery::standard(), 3);
    frame_gen.set_face_prob(1.0);
    let scene = frame_gen.next_scene();
    let det_cfg = face::DetectorConfig::default();
    group.bench_function("face_detect_frame", |b| {
        b.iter(|| black_box(face::detect_faces(black_box(&scene.pixels), &det_cfg)));
    });
    let detections = face::detect_faces(&scene.pixels, &det_cfg);
    let recognizer = face::Recognizer::new(face::Gallery::standard());
    group.bench_function("face_recognize_frame", |b| {
        b.iter(|| {
            black_box(face::recognize(
                &recognizer,
                black_box(&scene.pixels),
                face::FRAME_W,
                &detections,
            ))
        });
    });

    let mut audio_gen = voice::AudioGenerator::new(voice::Vocabulary::standard(), 3);
    let utterance = audio_gen.next_utterance();
    let voice_rec = voice::Recognizer::new(voice::Vocabulary::standard());
    group.bench_function("voice_decode_72kB_frame", |b| {
        b.iter(|| black_box(voice_rec.decode(black_box(&utterance.pcm))));
    });
    let words = voice_rec.decode(&utterance.pcm);
    let translator = voice::Translator::new();
    group.bench_function("voice_translate_sentence", |b| {
        b.iter(|| black_box(translator.translate_words(black_box(&words))));
    });
    group.finish();
}

fn bench_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulation");
    group.sample_size(10);
    group.bench_function("evaluation_lrs_face_60s", |b| {
        b.iter(|| {
            black_box(evaluation_run(
                Policy::Lrs,
                Workload::FaceRecognition,
                60,
                7,
            ))
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_routing,
    bench_wire,
    bench_reorder,
    bench_kernels,
    bench_simulation
);
criterion_main!(benches);
