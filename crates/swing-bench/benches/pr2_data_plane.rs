//! PR2 data-plane benchmark: measures the zero-copy tuple payloads,
//! exact-size/reusable wire buffers and the flattened eigenfaces kernel
//! against faithful replicas of the seed implementations, and writes the
//! before/after table to `BENCH_pr2.json` at the workspace root.
//!
//! Run with `cargo bench -p swing-bench --bench pr2_data_plane`
//! (append `-- --quick` for the CI smoke run).
//!
//! The "before" column re-implements the seed's hot paths verbatim in
//! [`seed`]: growth-from-64-bytes encode, copy-on-decode byte fields,
//! nested `Vec<Vec<f64>>` eigen projection, and deep-copied frame
//! payloads on dispatch. Face detection is unchanged since the seed and
//! is measured as a control (same code in both columns).

use bytes::{BufMut, BytesMut};
use std::hint::black_box;
use std::time::Instant;
use swing_apps::face;
use swing_core::{SeqNo, SharedBytes, Tuple, UnitId, Value};
use swing_net::{Message, WireSegment};

/// Faithful replicas of the seed (pre-PR2) implementations.
mod seed {
    use super::*;

    /// Seed `Message::encode` for `Data`: starts from a 64-byte buffer
    /// and grows it, re-copying the partial message at every doubling.
    pub fn encode_data(dest: UnitId, from: UnitId, tuple: &Tuple) -> bytes::Bytes {
        let mut b = BytesMut::with_capacity(64);
        b.put_u8(0x57);
        b.put_u8(1);
        b.put_u8(1);
        b.put_u32(dest.0);
        b.put_u32(from.0);
        b.put_u64(tuple.seq().0);
        b.put_u64(tuple.sent_at_us());
        let fields: Vec<(&str, &Value)> = tuple.iter().collect();
        b.put_u16(fields.len() as u16);
        for (key, value) in fields {
            b.put_u16(key.len() as u16);
            b.put_slice(key.as_bytes());
            match value {
                Value::Bytes(v) => {
                    b.put_u8(1);
                    b.put_u32(v.len() as u32);
                    b.put_slice(v);
                }
                Value::I64(v) => {
                    b.put_u8(3);
                    b.put_i64(*v);
                }
                other => unreachable!("bench tuples carry only Bytes/I64, got {other:?}"),
            }
        }
        b.freeze()
    }

    /// Seed in-memory tuple: heap `String` keys and owned byte payloads.
    pub struct SeedTuple {
        pub seq: u64,
        pub sent_at_us: u64,
        pub fields: Vec<(String, SeedValue)>,
    }

    /// The two value kinds the bench tuples carry, in the seed's owned
    /// form (payloads deep-copied out of the wire buffer).
    pub enum SeedValue {
        Bytes(Vec<u8>),
        I64(i64),
    }

    /// Seed `Message::decode` for `Data`: one freshly allocated `String`
    /// per field key (`String::from_utf8(raw.to_vec())`) and a full
    /// `to_vec` copy of every byte payload, with the linear dedup scan
    /// on insert — exactly the pre-PR2 receive path, including its
    /// `bytes::Buf`-trait reads and per-read `NetResult` plumbing.
    pub fn decode_data(buf: &[u8]) -> (UnitId, UnitId, SeedTuple) {
        use bytes::Buf;
        use swing_core::{Error as NetError, Result};
        type NetResult<T> = Result<T>;

        fn get_u8(buf: &mut &[u8]) -> NetResult<u8> {
            if buf.remaining() < 1 {
                return Err(NetError::Malformed("unexpected end of message".into()));
            }
            Ok(buf.get_u8())
        }
        fn get_u16(buf: &mut &[u8]) -> NetResult<u16> {
            if buf.remaining() < 2 {
                return Err(NetError::Malformed("unexpected end of message".into()));
            }
            Ok(buf.get_u16())
        }
        fn get_u32(buf: &mut &[u8]) -> NetResult<u32> {
            if buf.remaining() < 4 {
                return Err(NetError::Malformed("unexpected end of message".into()));
            }
            Ok(buf.get_u32())
        }
        fn get_u64(buf: &mut &[u8]) -> NetResult<u64> {
            if buf.remaining() < 8 {
                return Err(NetError::Malformed("unexpected end of message".into()));
            }
            Ok(buf.get_u64())
        }
        fn get_bytes<'a>(buf: &mut &'a [u8], len: usize) -> NetResult<&'a [u8]> {
            if buf.remaining() < len {
                return Err(NetError::Malformed("unexpected end of message".into()));
            }
            let (head, tail) = buf.split_at(len);
            *buf = tail;
            Ok(head)
        }
        fn get_str(buf: &mut &[u8]) -> NetResult<String> {
            let len = get_u16(buf)? as usize;
            let raw = get_bytes(buf, len)?;
            String::from_utf8(raw.to_vec())
                .map_err(|_| NetError::Malformed("string is not valid UTF-8".into()))
        }
        fn inner(buf: &mut &[u8]) -> NetResult<(UnitId, UnitId, SeedTuple)> {
            let magic = get_u8(buf)?;
            assert_eq!(magic, 0x57, "bad magic");
            let version = get_u8(buf)?;
            assert_eq!(version, 1, "bad version");
            let tag = get_u8(buf)?;
            assert_eq!(tag, 1, "not a Data message");
            let dest = UnitId(get_u32(buf)?);
            let from = UnitId(get_u32(buf)?);
            let seq = get_u64(buf)?;
            let sent_at_us = get_u64(buf)?;
            let n = get_u16(buf)? as usize;
            let mut fields: Vec<(String, SeedValue)> = Vec::new();
            for _ in 0..n {
                let key = get_str(buf)?;
                let value = match get_u8(buf)? {
                    1 => {
                        let len = get_u32(buf)? as usize;
                        SeedValue::Bytes(get_bytes(buf, len)?.to_vec())
                    }
                    3 => SeedValue::I64(get_u64(buf)? as i64),
                    other => unreachable!("bench tuples carry only Bytes/I64, got kind {other}"),
                };
                match fields.iter_mut().find(|(k, _)| *k == key) {
                    Some(slot) => slot.1 = value,
                    None => fields.push((key, value)),
                }
            }
            Ok((
                dest,
                from,
                SeedTuple {
                    seq,
                    sent_at_us,
                    fields,
                },
            ))
        }
        let mut cursor = buf;
        inner(&mut cursor).expect("seed decode of a valid message")
    }

    /// Seed eigen subspace: one heap vector per component.
    pub struct NestedSpace {
        pub mean: Vec<f64>,
        pub components: Vec<Vec<f64>>,
    }

    impl NestedSpace {
        /// Snapshot a trained flat space into the seed's nested layout.
        pub fn from_flat(s: &face::EigenSpace) -> Self {
            NestedSpace {
                mean: s.mean().to_vec(),
                components: (0..s.n_components())
                    .map(|c| s.component(c).to_vec())
                    .collect(),
            }
        }

        /// Seed `project_u8`: allocates a centered copy of the patch,
        /// then walks one heap-allocated component row per coordinate.
        pub fn project_u8(&self, patch: &[u8]) -> Vec<f64> {
            let centered: Vec<f64> = patch
                .iter()
                .zip(&self.mean)
                .map(|(&p, &m)| p as f64 - m)
                .collect();
            self.components
                .iter()
                .map(|c| c.iter().zip(&centered).map(|(a, b)| a * b).sum())
                .collect()
        }
    }
}

/// Nanoseconds per iteration for one timed run.
fn time_ns<F: FnMut()>(f: &mut F, iters: u64) -> f64 {
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

/// Interleaved best-of-`runs` for a before/after pair. The two closures
/// are timed in alternation so CPU frequency drift and scheduler noise
/// hit both columns alike instead of skewing whichever ran second.
fn bench_pair<A: FnMut(), B: FnMut()>(
    mut before: A,
    mut after: B,
    iters: u64,
    runs: usize,
) -> (f64, f64) {
    time_ns(&mut before, iters / 10 + 1);
    time_ns(&mut after, iters / 10 + 1);
    let mut b_best = f64::INFINITY;
    let mut a_best = f64::INFINITY;
    for _ in 0..runs {
        b_best = b_best.min(time_ns(&mut before, iters));
        a_best = a_best.min(time_ns(&mut after, iters));
    }
    (b_best, a_best)
}

struct Row {
    name: &'static str,
    unit: &'static str,
    before: f64,
    after: f64,
    /// For ns/op rows higher before/after is better; for fps rows the
    /// ratio flips.
    higher_is_better: bool,
}

impl Row {
    fn speedup(&self) -> f64 {
        if self.higher_is_better {
            self.after / self.before
        } else {
            self.before / self.after
        }
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (iters, runs) = if quick { (2_000, 3) } else { (20_000, 7) };
    let mut rows: Vec<Row> = Vec::new();

    // A representative data-plane message: one 6 kB camera frame plus a
    // small scalar, exactly what the face pipeline puts on the wire.
    //
    // The codec rows iterate over a stream of `ROT` distinct frames
    // instead of re-processing one buffer: production frames arrive as
    // new data every time, so the seed's payload copies must pay real
    // cache-miss costs rather than re-reading an L1-resident block,
    // and the zero-copy paths show what they actually skip. 4096
    // frames x 6 kB per array puts the working set far beyond L2.
    const ROT: usize = 4096;
    let frame_vecs: Vec<Vec<u8>> = (0..ROT).map(|i| vec![(i % 251) as u8; 6_000]).collect();
    let tuples: Vec<Tuple> = frame_vecs
        .iter()
        .enumerate()
        .map(|(i, fv)| {
            Tuple::with_seq(SeqNo(i as u64))
                .with("frame", fv.clone())
                .with("cam", 3i64)
        })
        .collect();
    let msgs: Vec<Message> = tuples
        .iter()
        .map(|t| Message::Data {
            dest: UnitId(3),
            from: UnitId(0),
            tuple: t.clone(),
        })
        .collect();
    let frame_vec = &frame_vecs[0];

    // --- wire encode: growth-from-64B alloc + full payload copy vs
    //     reused scratch + zero-copy payload segments ---
    let mut scratch = BytesMut::new();
    let mut segs: Vec<WireSegment> = Vec::new();
    let (mut bi, mut ai) = (0usize, 0usize);
    let (before, after) = bench_pair(
        || {
            black_box(seed::encode_data(
                UnitId(3),
                UnitId(0),
                black_box(&tuples[bi]),
            ));
            bi = (bi + 1) & (ROT - 1);
        },
        || {
            scratch.clear();
            segs.clear();
            black_box(&msgs[ai]).encode_segments(&mut scratch, &mut segs);
            black_box(segs.len());
            ai = (ai + 1) & (ROT - 1);
        },
        iters,
        runs,
    );
    rows.push(Row {
        name: "wire_encode_6kB_frame",
        unit: "ns/op",
        before,
        after,
        higher_is_better: false,
    });
    println!("wire encode     before {before:>9.1} ns  after {after:>9.1} ns");

    // --- wire decode: seed copy-out decode (String keys + to_vec
    //     payloads) vs zero-copy shared sub-views ---
    let encoded: Vec<bytes::Bytes> = msgs.iter().map(Message::encode).collect();
    let shared_frames: Vec<SharedBytes> = encoded
        .iter()
        .map(|b| SharedBytes::copy_from_slice(b))
        .collect();
    {
        // The seed replica must agree with the real decoder.
        let (dest, from, st) = seed::decode_data(&encoded[0]);
        assert_eq!(
            (dest, from, st.seq, st.sent_at_us),
            (UnitId(3), UnitId(0), 0, 0)
        );
        assert!(matches!(
            st.fields.iter().find(|(k, _)| k == "frame"),
            Some((_, seed::SeedValue::Bytes(v))) if v == frame_vec
        ));
        assert!(matches!(
            st.fields.iter().find(|(k, _)| k == "cam"),
            Some((_, seed::SeedValue::I64(3)))
        ));
    }
    let (mut bi, mut ai) = (0usize, 0usize);
    let (before, after) = bench_pair(
        || {
            black_box(seed::decode_data(black_box(&encoded[bi])));
            bi = (bi + 1) & (ROT - 1);
        },
        || {
            black_box(Message::decode_shared(black_box(&shared_frames[ai])).unwrap());
            ai = (ai + 1) & (ROT - 1);
        },
        iters,
        runs,
    );
    rows.push(Row {
        name: "wire_decode_6kB_frame",
        unit: "ns/op",
        before,
        after,
        higher_is_better: false,
    });
    println!("wire decode     before {before:>9.1} ns  after {after:>9.1} ns");

    // --- dispatch: deep-copied frame vs refcounted payload sharing ---
    // The executor clones the tuple once for the wire message and
    // retains it once in the retransmission table. Before PR2 each copy
    // duplicated the 6 kB pixel buffer; now both bump a refcount.
    let (mut bi, mut ai) = (0usize, 0usize);
    let (before, after) = bench_pair(
        || {
            let fv = black_box(&frame_vecs[bi]);
            let wire_copy = Tuple::with_seq(SeqNo(9))
                .with("frame", fv.clone())
                .with("cam", 3i64);
            let inflight_copy = Tuple::with_seq(SeqNo(9))
                .with("frame", fv.clone())
                .with("cam", 3i64);
            black_box((wire_copy, inflight_copy));
            bi = (bi + 1) & (ROT - 1);
        },
        || {
            let t = black_box(&tuples[ai]);
            let wire_copy = t.clone();
            let inflight_copy = t.clone();
            black_box((wire_copy, inflight_copy));
            ai = (ai + 1) & (ROT - 1);
        },
        iters,
        runs,
    );
    rows.push(Row {
        name: "dispatch_clone_and_record",
        unit: "ns/op",
        before,
        after,
        higher_is_better: false,
    });
    println!("dispatch clone  before {before:>9.1} ns  after {after:>9.1} ns");

    // --- eigen projection: nested Vec<Vec<f64>> vs flat transposed ---
    let gallery = face::Gallery::standard();
    let space = face::EigenSpace::train_shared(&gallery, 12, 3);
    let nested = seed::NestedSpace::from_flat(&space);
    let patch: Vec<u8> = gallery.face(2).to_vec();
    assert_eq!(
        nested.project_u8(&patch),
        space.project_u8(&patch),
        "seed replica must agree with the flat kernel"
    );
    let (before, after) = bench_pair(
        || {
            black_box(nested.project_u8(black_box(&patch)));
        },
        || {
            black_box(space.project_u8(black_box(&patch)));
        },
        iters,
        runs,
    );
    rows.push(Row {
        name: "eigen_projection",
        unit: "ns/op",
        before,
        after,
        higher_is_better: false,
    });
    println!("eigen project   before {before:>9.1} ns  after {after:>9.1} ns");

    // --- face detection: unchanged since the seed (control) ---
    let mut frame_gen = face::FrameGenerator::new(face::Gallery::standard(), 3);
    frame_gen.set_face_prob(1.0);
    let scene = frame_gen.next_scene();
    let det_cfg = face::DetectorConfig::default();
    let det_iters = if quick { 50 } else { 400 };
    let (before, after) = bench_pair(
        || {
            black_box(face::detect_faces(black_box(&scene.pixels), &det_cfg));
        },
        || {
            black_box(face::detect_faces(black_box(&scene.pixels), &det_cfg));
        },
        det_iters,
        runs,
    );
    rows.push(Row {
        name: "face_detection",
        unit: "ns/op",
        before,
        after,
        higher_is_better: false,
    });
    println!("face detect     before {before:>9.1} ns  after {after:>9.1} ns");

    // --- end-to-end pipeline: sense -> encode -> decode -> detect ->
    //     project+classify, frames per second of wall clock ---
    let n_scenes = if quick { 8 } else { 40 };
    let scenes: Vec<face::Scene> = (0..n_scenes).map(|_| frame_gen.next_scene()).collect();
    let recognize = |pixels: &[u8], patch: &mut [u8], use_seed_path: bool| -> usize {
        let mut recognized = 0usize;
        for d in face::detect_faces(pixels, &det_cfg) {
            for (row, out) in patch.chunks_exact_mut(face::FACE_SIZE).enumerate() {
                let start = (d.y + row) * face::FRAME_W + d.x;
                out.copy_from_slice(&pixels[start..start + face::FACE_SIZE]);
            }
            let coords = if use_seed_path {
                nested.project_u8(patch)
            } else {
                space.project_u8(patch)
            };
            if space.classify_coords(&coords).is_some() {
                recognized += 1;
            }
        }
        recognized
    };
    let one_rep = |use_seed_path: bool| -> f64 {
        let start = Instant::now();
        let mut recognized = 0usize;
        let mut scratch = BytesMut::new();
        let mut segs: Vec<WireSegment> = Vec::new();
        let mut patch = vec![0u8; face::FACE_SIZE * face::FACE_SIZE];
        for (i, scene) in scenes.iter().enumerate() {
            let t = Tuple::with_seq(SeqNo(i as u64)).with("frame", scene.pixels.clone());
            let msg = Message::Data {
                dest: UnitId(1),
                from: UnitId(0),
                tuple: t,
            };
            // Both columns pay the socket-read copy (the receiver
            // assembles one frame allocation from the stream); the seed
            // path additionally copies on encode and on decode.
            if use_seed_path {
                let bytes = seed::encode_data(
                    UnitId(1),
                    UnitId(0),
                    match &msg {
                        Message::Data { tuple, .. } => tuple,
                        _ => unreachable!(),
                    },
                );
                let framed: Vec<u8> = bytes.to_vec();
                let (_, _, st) = seed::decode_data(&framed);
                let pixels: &[u8] = match st.fields.iter().find(|(k, _)| k == "frame") {
                    Some((_, seed::SeedValue::Bytes(v))) => v,
                    _ => unreachable!(),
                };
                recognized += recognize(pixels, &mut patch, true);
            } else {
                scratch.clear();
                segs.clear();
                msg.encode_segments(&mut scratch, &mut segs);
                let mut frame = Vec::with_capacity(segs.iter().map(WireSegment::len).sum());
                for s in &segs {
                    frame.extend_from_slice(s.bytes(&scratch));
                }
                let framed = SharedBytes::from_vec(frame);
                let received = Message::decode_shared(&framed).unwrap();
                let Message::Data { tuple, .. } = received else {
                    unreachable!()
                };
                recognized += recognize(tuple.bytes("frame").unwrap(), &mut patch, false);
            }
        }
        black_box(recognized);
        scenes.len() as f64 / start.elapsed().as_secs_f64()
    };
    let reps = if quick { 2 } else { 5 };
    let mut before = 0.0f64;
    let mut after = 0.0f64;
    for _ in 0..reps {
        before = before.max(one_rep(true));
        after = after.max(one_rep(false));
    }
    rows.push(Row {
        name: "pipeline_fps",
        unit: "fps",
        before,
        after,
        higher_is_better: true,
    });
    println!("pipeline        before {before:>9.1} fps after {after:>9.1} fps");

    // --- report ---
    let mut json = String::from("{\n");
    json.push_str("  \"pr\": 2,\n");
    json.push_str(&format!("  \"quick\": {quick},\n"));
    json.push_str(
        "  \"harness\": \"self-contained Instant loop (min-of-runs); host-specific — \
         compare columns within one report, regenerate rather than compare across machines\",\n",
    );
    json.push_str("  \"benches\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"unit\": \"{}\", \"before\": {:.1}, \"after\": {:.1}, \"speedup\": {:.2}}}{}\n",
            r.name,
            r.unit,
            r.before,
            r.after,
            r.speedup(),
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");

    let out = std::env::var("BENCH_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_pr2.json", env!("CARGO_MANIFEST_DIR")));
    std::fs::write(&out, &json).expect("write BENCH_pr2.json");
    println!("\nwrote {out}");
    for r in &rows {
        println!("  {:<26} {:>7.2}x", r.name, r.speedup());
    }
}
