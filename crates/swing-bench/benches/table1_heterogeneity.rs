//! Regenerates the paper's table1 output. Run with
//! `cargo bench -p swing-bench --bench table1_heterogeneity`.

fn main() {
    println!("{}", swing_bench::repro::table1());
}
