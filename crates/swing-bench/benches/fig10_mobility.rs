//! Regenerates the paper's fig10 output. Run with
//! `cargo bench -p swing-bench --bench fig10_mobility`.

fn main() {
    println!("{}", swing_bench::repro::fig10());
}
