//! Regenerates the paper's fig6 output. Run with
//! `cargo bench -p swing-bench --bench fig6_power`.

fn main() {
    println!("{}", swing_bench::repro::fig6());
}
