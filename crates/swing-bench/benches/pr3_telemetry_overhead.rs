//! PR3 telemetry-overhead microbench: measures what the observability
//! subsystem adds to the executor's per-tuple dispatch path against the
//! PR2 `dispatch_clone_and_record` baseline, and writes the result to
//! `BENCH_pr3_telemetry.json` at the workspace root.
//!
//! Run with `cargo bench -p swing-bench --bench pr3_telemetry_overhead`
//! (append `-- --quick` for the CI smoke run, `-- --assert` to fail the
//! process when dispatch overhead exceeds the 5% budget).
//!
//! The baseline replays PR2's dispatch work: clone the tuple once for
//! the wire message and once for the retransmission table (both
//! refcount bumps). The instrumented column adds exactly the telemetry
//! the executor now performs per dispatched tuple: a local sent-count
//! add (the executor batches delivery counts and flushes them to the
//! registry atomics at its publish cadence, every 64 dispatches), a
//! lifecycle `record_stage` call with tracing at its default (off),
//! and — at the same 64-dispatch cadence — the registry flush plus the
//! queue-depth gauge store. A second, ungated row also charges the
//! ACK side (acked count, RTT histogram record, second `record_stage`)
//! to one dispatch for a whole-cycle view.

use std::hint::black_box;
use std::time::Instant;
use swing_core::clock::RealClock;
use swing_core::{SeqNo, Tuple};
use swing_telemetry::{names, Stage, Telemetry};

/// Nanoseconds per iteration for one timed run.
fn time_ns<F: FnMut()>(f: &mut F, iters: u64) -> f64 {
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

/// Interleaved best-of-`runs` for a baseline/instrumented pair, same
/// discipline as the PR2 harness: alternate the columns so frequency
/// drift hits both alike.
fn bench_pair<A: FnMut(), B: FnMut()>(
    mut baseline: A,
    mut instrumented: B,
    iters: u64,
    runs: usize,
) -> (f64, f64) {
    time_ns(&mut baseline, iters / 10 + 1);
    time_ns(&mut instrumented, iters / 10 + 1);
    let mut base_best = f64::INFINITY;
    let mut inst_best = f64::INFINITY;
    for _ in 0..runs {
        base_best = base_best.min(time_ns(&mut baseline, iters));
        inst_best = inst_best.min(time_ns(&mut instrumented, iters));
    }
    (base_best, inst_best)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let assert_budget = std::env::args().any(|a| a == "--assert");
    // Overhead is a few ns on a ~126 ns baseline, so even the quick
    // mode needs enough runs for the best-of minima to converge.
    let (iters, runs) = if quick { (50_000, 5) } else { (200_000, 7) };

    // The PR2 dispatch workload: a 6 kB camera frame plus a scalar,
    // rotated across 4096 distinct tuples so payload refcounts touch
    // memory beyond L2 the way production dispatch does.
    const ROT: usize = 4096;
    let tuples: Vec<Tuple> = (0..ROT)
        .map(|i| {
            Tuple::with_seq(SeqNo(i as u64))
                .with("frame", vec![(i % 251) as u8; 6_000])
                .with("cam", 3i64)
        })
        .collect();

    let telemetry = Telemetry::new();
    // The live configuration under test: event timestamps routed
    // through the injected Clock seam (a RealClock here), exactly as
    // LocalSwarm installs it — the overhead budget must hold with the
    // indirection in place.
    let clock = RealClock::handle();
    assert!(telemetry.set_time_source(move || clock.now_us()));
    let labels = [(names::LABEL_WORKER, "bench"), (names::LABEL_UNIT, "1")];
    let sent = telemetry.counter(names::EXEC_SENT, &labels);
    let acked = telemetry.counter(names::EXEC_ACKED, &labels);
    let queue_depth = telemetry.gauge(names::EXEC_QUEUE_DEPTH, &labels);
    let ack_rtt = telemetry.histogram(names::EXEC_ACK_RTT_US, &labels);
    assert!(
        !telemetry.tracing_enabled(),
        "hot path measures tracing off"
    );

    // Pin the CPU at its working frequency before the first row so the
    // two rows see the same clock; best-of-run minima do the rest.
    {
        let spin_until = Instant::now() + std::time::Duration::from_millis(200);
        let mut i = 0usize;
        while Instant::now() < spin_until {
            black_box((tuples[i].clone(), tuples[i].clone()));
            i = (i + 1) & (ROT - 1);
        }
    }

    // --- dispatch path: clone x2 vs clone x2 + dispatch-side telemetry ---
    let (mut bi, mut ai) = (0usize, 0usize);
    let mut local_sent = 0u64;
    let (baseline, instrumented) = bench_pair(
        || {
            let t = black_box(&tuples[bi]);
            let wire_copy = t.clone();
            let inflight_copy = t.clone();
            black_box((wire_copy, inflight_copy));
            bi = (bi + 1) & (ROT - 1);
        },
        || {
            let t = black_box(&tuples[ai]);
            let wire_copy = t.clone();
            let inflight_copy = t.clone();
            black_box((wire_copy, inflight_copy));
            local_sent += 1;
            telemetry.record_stage(ai as u64, 1, Stage::Dispatched);
            if ai & 0x3f == 0 {
                // The executor's publish cadence: flush the batched
                // counts to the registry and refresh the queue gauge.
                sent.add(std::mem::take(black_box(&mut local_sent)));
                queue_depth.set_u64(ai as u64 & 0x3f);
            }
            ai = (ai + 1) & (ROT - 1);
        },
        iters,
        runs,
    );
    let dispatch_overhead_pct = (instrumented / baseline - 1.0).max(0.0) * 100.0;
    println!(
        "dispatch        baseline {baseline:>8.1} ns  instrumented {instrumented:>8.1} ns  overhead {dispatch_overhead_pct:>5.2}%"
    );

    // --- whole cycle (informational): also charge the ACK-side work
    //     (batched acked count plus the per-ACK RTT histogram record) ---
    let (mut bi, mut ai) = (0usize, 0usize);
    let (mut local_sent, mut local_acked) = (0u64, 0u64);
    let (cycle_base, cycle_inst) = bench_pair(
        || {
            let t = black_box(&tuples[bi]);
            black_box((t.clone(), t.clone()));
            bi = (bi + 1) & (ROT - 1);
        },
        || {
            let t = black_box(&tuples[ai]);
            black_box((t.clone(), t.clone()));
            local_sent += 1;
            telemetry.record_stage(ai as u64, 1, Stage::Dispatched);
            local_acked += 1;
            ack_rtt.record(1_500 + (ai as u64 & 0xff));
            telemetry.record_stage(ai as u64, 1, Stage::Acked);
            if ai & 0x3f == 0 {
                sent.add(std::mem::take(black_box(&mut local_sent)));
                acked.add(std::mem::take(black_box(&mut local_acked)));
                queue_depth.set_u64(ai as u64 & 0x3f);
            }
            ai = (ai + 1) & (ROT - 1);
        },
        iters,
        runs,
    );
    let cycle_overhead_pct = (cycle_inst / cycle_base - 1.0).max(0.0) * 100.0;
    println!(
        "dispatch+ack    baseline {cycle_base:>8.1} ns  instrumented {cycle_inst:>8.1} ns  overhead {cycle_overhead_pct:>5.2}%"
    );

    // Keep the counters observable so the work can't be optimized out.
    let snap = telemetry.snapshot();
    assert!(snap.counter(names::EXEC_SENT, &labels) > 0);

    let json = format!(
        "{{\n  \"pr\": 3,\n  \"quick\": {quick},\n  \"budget_pct\": 5.0,\n  \"harness\": \"self-contained Instant loop (min-of-runs); host-specific — compare columns within one report, regenerate rather than compare across machines\",\n  \"benches\": [\n    {{\"name\": \"dispatch_telemetry_overhead\", \"unit\": \"ns/op\", \"baseline\": {baseline:.1}, \"instrumented\": {instrumented:.1}, \"overhead_pct\": {dispatch_overhead_pct:.2}}},\n    {{\"name\": \"dispatch_ack_cycle_telemetry_overhead\", \"unit\": \"ns/op\", \"baseline\": {cycle_base:.1}, \"instrumented\": {cycle_inst:.1}, \"overhead_pct\": {cycle_overhead_pct:.2}}}\n  ]\n}}\n"
    );
    let out = std::env::var("BENCH_OUT").unwrap_or_else(|_| {
        format!(
            "{}/../../BENCH_pr3_telemetry.json",
            env!("CARGO_MANIFEST_DIR")
        )
    });
    std::fs::write(&out, &json).expect("write BENCH_pr3_telemetry.json");
    println!("\nwrote {out}");

    if assert_budget {
        assert!(
            dispatch_overhead_pct <= 5.0,
            "dispatch telemetry overhead {dispatch_overhead_pct:.2}% exceeds the 5% budget"
        );
        println!("dispatch overhead within the 5% budget");
    }
}
