//! Property-based tests of swing-core's structural invariants.

use proptest::prelude::*;
use swing_core::dedup::DedupWindow;
use swing_core::graph::AppGraph;
use swing_core::routing::partition::rendezvous_owner;
use swing_core::routing::{Policy, Router, RouterConfig, WorkerVitals};
use swing_core::{SeqNo, UnitId};

proptest! {
    /// Whatever sequence of `connect` calls arrives, an `AppGraph` never
    /// contains a cycle: a topological order always exists.
    #[test]
    fn graphs_stay_acyclic_under_random_edges(
        ops in proptest::collection::vec((0u32..12, 0u32..12), 0..60),
    ) {
        let mut g = AppGraph::new("prop");
        g.add_source("src");
        for i in 0..10 {
            g.add_operator(format!("op{i}"));
        }
        g.add_sink("snk");
        let stages: Vec<swing_core::graph::StageId> = g.stages().collect();
        for (a, b) in ops {
            let from = stages[a as usize % stages.len()];
            let to = stages[b as usize % stages.len()];
            let _ = g.connect(from, to); // errors are fine
        }
        prop_assert!(g.topo_order().is_ok());
        // Every accepted edge respects the topological order.
        let order = g.topo_order().unwrap();
        let pos = |s| order.iter().position(|&x| x == s).unwrap();
        for e in g.edges() {
            prop_assert!(pos(e.from) < pos(e.to));
        }
    }

    /// The rendezvous partitioner is deterministic (replaying the same
    /// key against the same membership yields the same owner, whatever
    /// the iteration order) and total (every key is owned by exactly
    /// one live member).
    #[test]
    fn partitioner_is_deterministic_and_total(
        members in proptest::collection::btree_set(0u32..64, 1..12),
        keys in proptest::collection::vec(any::<u64>(), 1..64),
    ) {
        let fwd: Vec<UnitId> = members.iter().map(|&m| UnitId(m)).collect();
        let mut rev = fwd.clone();
        rev.reverse();
        for &k in &keys {
            let a = rendezvous_owner(k, fwd.iter().copied()).expect("non-empty membership");
            let b = rendezvous_owner(k, rev.iter().copied()).expect("non-empty membership");
            prop_assert_eq!(a, b, "owner depends on member order");
            prop_assert!(fwd.contains(&a), "owner {} is not a live member", a);
            // Replay: same inputs, same owner.
            prop_assert_eq!(rendezvous_owner(k, fwd.iter().copied()), Some(a));
        }
    }

    /// One-member membership changes are minimally disruptive: removing
    /// a member re-homes only the keys it owned, and adding a member
    /// steals keys without moving any key between survivors.
    #[test]
    fn partitioner_is_minimally_disruptive(
        members in proptest::collection::btree_set(0u32..64, 2..12),
        newcomer in 64u32..80,
        keys in proptest::collection::vec(any::<u64>(), 1..128),
        victim_sel in any::<u32>(),
    ) {
        let full: Vec<UnitId> = members.iter().map(|&m| UnitId(m)).collect();
        let victim = full[victim_sel as usize % full.len()];
        let survivors: Vec<UnitId> = full.iter().copied().filter(|&u| u != victim).collect();
        let grown: Vec<UnitId> = full.iter().copied().chain([UnitId(newcomer)]).collect();
        for &k in &keys {
            let before = rendezvous_owner(k, full.iter().copied()).unwrap();
            // Removal: survivor-owned keys stay put.
            let after = rendezvous_owner(k, survivors.iter().copied()).unwrap();
            if before == victim {
                prop_assert!(survivors.contains(&after));
            } else {
                prop_assert_eq!(before, after, "key of a survivor moved on removal");
            }
            // Addition: a key either keeps its owner or moves to the
            // newcomer — never to another existing member.
            let joined = rendezvous_owner(k, grown.iter().copied()).unwrap();
            prop_assert!(
                joined == before || joined == UnitId(newcomer),
                "join moved a key between existing members: {} -> {}", before, joined
            );
        }
    }

    /// The router only ever routes to registered, non-removed
    /// downstreams, under any interleaving of adds, removes and acks.
    #[test]
    fn router_routes_only_to_live_downstreams(
        script in proptest::collection::vec((0u8..4, 0u32..8, 0u64..200_000), 1..300),
        policy_idx in 0usize..5,
        seed in any::<u64>(),
    ) {
        let policy = Policy::ALL[policy_idx];
        let mut router = Router::new(RouterConfig::new(policy), seed);
        let mut live: std::collections::BTreeSet<u32> = Default::default();
        let mut now = 0u64;
        let mut seq = 0u64;
        for (op, unit, dt) in script {
            now += dt;
            match op {
                0 => {
                    router.add_downstream(UnitId(unit), now);
                    live.insert(unit);
                }
                1 => {
                    router.remove_downstream(UnitId(unit));
                    live.remove(&unit);
                }
                2 => {
                    if let Ok(dest) = router.route(now) {
                        prop_assert!(
                            live.contains(&dest.0),
                            "routed to dead unit {dest} (live: {live:?})"
                        );
                        router.on_send(SeqNo(seq), dest, now);
                        seq += 1;
                    } else {
                        prop_assert!(live.is_empty());
                    }
                }
                _ => {
                    // Ack an arbitrary (possibly unknown) sequence.
                    router.on_ack(SeqNo(seq.saturating_sub(1)), now, dt);
                }
            }
        }
    }

    /// Rebalancing at any time never panics and keeps the snapshot
    /// internally consistent (weights of unselected rows are zero).
    #[test]
    fn rebalance_keeps_snapshot_consistent(
        units in proptest::collection::btree_set(0u32..16, 1..10),
        acks in proptest::collection::vec((0u32..16, 1_000u64..5_000_000), 0..100),
        policy_idx in 0usize..5,
    ) {
        let mut router = Router::new(RouterConfig::new(Policy::ALL[policy_idx]), 3);
        for &u in &units {
            router.add_downstream(UnitId(u), 0);
        }
        let mut now = 0;
        let mut seq = 0u64;
        for (u, lat) in acks {
            if !units.contains(&u) {
                continue;
            }
            now += 10_000;
            router.on_send(SeqNo(seq), UnitId(u), now);
            router.on_ack(SeqNo(seq), now + lat, lat / 2);
            seq += 1;
        }
        router.rebalance(now + 1);
        let snap = router.snapshot(now + 1);
        let total: f64 = snap.routes.iter().map(|r| r.weight).sum();
        prop_assert!((total - 1.0).abs() < 1e-6, "weights sum to {total}");
        for r in &snap.routes {
            if !r.selected {
                prop_assert_eq!(r.weight, 0.0);
            }
        }
        prop_assert_eq!(snap.routes.len(), units.len());
    }

    /// A `DedupWindow` agrees with a brute-force reference model under
    /// any interleaving of fresh and duplicate sequence numbers: a seq
    /// is flagged as a duplicate exactly when it is among the last
    /// `capacity` distinct inserts, and memory stays bounded.
    #[test]
    fn dedup_window_matches_reference_model(
        capacity in 1usize..32,
        seqs in proptest::collection::vec(0u64..64, 0..400),
    ) {
        let mut w = DedupWindow::new(capacity);
        // Reference: distinct remembered seqs, oldest first.
        let mut model: Vec<u64> = Vec::new();
        for s in seqs {
            let fresh = w.observe(SeqNo(s));
            prop_assert_eq!(
                fresh,
                !model.contains(&s),
                "seq {} (model: {:?})", s, model
            );
            if fresh {
                if model.len() == capacity {
                    model.remove(0);
                }
                model.push(s);
            }
            prop_assert_eq!(w.len(), model.len());
            prop_assert!(w.len() <= capacity);
            for &m in &model {
                prop_assert!(w.contains(SeqNo(m)));
            }
        }
    }

    /// Tie-break determinism of the event queue: events sharing a
    /// timestamp pop in the exact sequence they were pushed, under any
    /// interleaving of pushes and pops. Cross-shard merge in the
    /// federated simulator depends on this invariant — inbound gateway
    /// tuples are injected in deterministic link order and must replay
    /// in that order when their delivery instants collide.
    #[test]
    fn event_queue_breaks_ties_fifo(
        script in proptest::collection::vec((0u64..16, 0u8..4), 1..300),
    ) {
        let mut q = swing_core::event::EventQueue::new();
        // Reference model: sorted-stable list of (time, push ordinal).
        let mut model: Vec<(u64, u64)> = Vec::new();
        let mut ordinal = 0u64;
        for (t, op) in script {
            if op == 0 && !model.is_empty() {
                let (popped_t, popped_ord) = q.pop().expect("model says non-empty");
                // The model's earliest (time, ordinal) — stable sort by
                // time only, so equal timestamps keep push order.
                let min_idx = model
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, &(mt, mo))| (mt, mo))
                    .map(|(i, _)| i)
                    .expect("non-empty");
                let (mt, mo) = model.remove(min_idx);
                prop_assert_eq!((popped_t, popped_ord), (mt, mo));
            } else {
                // Past timestamps clamp to `now`, same as the queue.
                let t = t.max(q.now_us());
                q.schedule(t, ordinal);
                model.push((t, ordinal));
                ordinal += 1;
            }
        }
        // Drain: the remainder pops in (time, push-order) sequence.
        model.sort_by_key(|&(t, o)| (t, o));
        for (mt, mo) in model {
            prop_assert_eq!(q.pop(), Some((mt, mo)));
        }
        prop_assert!(q.is_empty());
    }

    /// Selection is a pure function of the vitals: for every built-in
    /// policy, two freshly resolved instances fed the same snapshot and
    /// demand return identical decisions, and re-asking the same
    /// instance does not drift.
    #[test]
    fn selection_is_deterministic_for_fixed_vitals(
        vitals in vitals_strategy(),
        lambda in 0.1f64..60.0,
    ) {
        for policy in Policy::EXTENDED {
            let mut a = policy.resolve();
            let mut b = policy.resolve();
            let d1 = format!("{:?}", a.select(&vitals, lambda));
            let d2 = format!("{:?}", b.select(&vitals, lambda));
            let d3 = format!("{:?}", a.select(&vitals, lambda));
            prop_assert_eq!(&d1, &d2, "{} differs across instances", policy.name());
            prop_assert_eq!(&d1, &d3, "{} drifts across calls", policy.name());
        }
    }

    /// With effectively infinite batteries (full charge, any draw) the
    /// energy-weighted policy degenerates to plain LRS: the lifetime
    /// factor saturates at 1 for every worker, so weights, membership
    /// and satisfaction all coincide.
    #[test]
    fn energy_weighted_degenerates_to_lrs_on_full_batteries(
        latencies in proptest::collection::vec(1_000.0f64..500_000.0, 1..10),
        drains in proptest::collection::vec(0.0f64..5.0, 10),
        lambda in 0.1f64..60.0,
    ) {
        let vitals: Vec<WorkerVitals> = latencies
            .iter()
            .zip(&drains)
            .enumerate()
            .map(|(i, (&l, &d))| WorkerVitals {
                unit: UnitId(i as u32 + 1),
                latency_us: l,
                battery_frac: 1.0, // full pack => lifetime_s() is infinite
                drain_w: d,
                rssi_dbm: -40.0,
            })
            .collect();
        let lrs = format!("{:?}", Policy::Lrs.resolve().select(&vitals, lambda));
        let elrs = format!("{:?}", Policy::EnergyLrs.resolve().select(&vitals, lambda));
        prop_assert_eq!(lrs, elrs);
    }
}

/// Random worker-vitals snapshots: distinct units, latencies spanning
/// three orders of magnitude, charge fractions over the full range
/// (including dead and full packs), plausible draws and RSSI.
fn vitals_strategy() -> impl Strategy<Value = Vec<WorkerVitals>> {
    proptest::collection::vec(
        (
            1_000.0f64..1_000_000.0,
            0.0f64..=1.0,
            0.0f64..5.0,
            -90.0f64..-25.0,
        ),
        1..10,
    )
    .prop_map(|rows| {
        rows.into_iter()
            .enumerate()
            .map(
                |(i, (latency_us, battery_frac, drain_w, rssi_dbm))| WorkerVitals {
                    unit: UnitId(i as u32 + 1),
                    latency_us,
                    battery_frac,
                    drain_w,
                    rssi_dbm,
                },
            )
            .collect()
    })
}
