//! Canonical timing constants shared by the runtime and the simulators.
//!
//! Before this module existed the same magic numbers were defined
//! independently in `swing-sim/pipeline.rs`, `swing-sim/swarm.rs`, and
//! the runtime configuration defaults — an invitation for the simulated
//! and live systems to drift apart. Each constant below documents its
//! provenance: either a figure from the paper (Fan, Salonidis, Lee —
//! *Swing: Swarm Computing for Mobile Sensing*, ICDCS 2018) or a
//! prototype-measured value this reproduction standardizes on.

use crate::{MILLISECOND_US, SECOND_US};

// ---------------------------------------------------------------------
// Control plane (paper §V-A).
// ---------------------------------------------------------------------

/// Period between routing rebalance rounds. The paper exchanges control
/// information "every 1 s in our implementation" (§V-A).
pub const CONTROL_PERIOD_US: u64 = SECOND_US;

/// Upstreams "switch periodically every few rounds to round robin mode
/// for a short time" (§V-B) to refresh latency estimates of unselected
/// downstreams; this reproduction probes every 5th rebalance round.
pub const PROBE_EVERY_ROUNDS: u32 = 5;

/// Tuples sent to *each* downstream during a probe window.
pub const PROBE_TUPLES_PER_UNIT: u32 = 1;

/// Optimistic latency assumed for downstreams with no samples yet
/// (100 ms). Keeps freshly joined devices attractive until the first
/// measurement arrives — mirroring the paper's fast integration of
/// joining devices (§VI-C).
pub const INITIAL_LATENCY_ESTIMATE_US: f64 = 100.0 * MILLISECOND_US as f64;

/// Tuples unacknowledged for this long count as lost to the estimator.
pub const LOSS_TIMEOUT_US: u64 = 5 * SECOND_US;

/// Latency/processing samples older than this stop influencing the
/// moving averages; links change on the timescale of user movement.
pub const SAMPLE_MAX_AGE_US: u64 = 10 * SECOND_US;

// ---------------------------------------------------------------------
// Delivery / retransmission layer (extends the paper's prototype, which
// loses in-flight tuples on departure — "13 frames are lost", §VI-C).
// ---------------------------------------------------------------------

/// Lower bound on the ACK deadline. Set well above a LAN round trip so
/// optimistically small latency estimates cannot trigger spurious
/// retransmission storms.
pub const ACK_DEADLINE_FLOOR_US: u64 = 150 * MILLISECOND_US;

/// Upper bound on the ACK deadline including backoff growth; bounds
/// how stale a retransmission decision can be.
pub const ACK_DEADLINE_CEILING_US: u64 = 2 * SECOND_US;

// ---------------------------------------------------------------------
// Link model (WiFi Direct / AP-mode measurements behind Fig. 7-9;
// shared by both simulators and the SimFabric transport).
// ---------------------------------------------------------------------

/// One-way latency of an uncongested local (same-device or same-hop)
/// handoff between pipeline stages. Prototype-measured scheduling gap.
pub const LOCAL_HOP_US: u64 = 200;

/// Transmission + scheduling delay of a small ACK frame over the local
/// wireless hop. ACKs are ~220 bytes on the wire (see [`ACK_BYTES`]);
/// at prototype WiFi rates that is ~3 ms including MAC contention.
pub const ACK_DELAY_US: u64 = 3 * MILLISECOND_US;

/// Per-tuple wire overhead (headers + field keys) in bytes, matching
/// the runtime codec's framing cost for a one-payload tuple.
pub const TUPLE_OVERHEAD_BYTES: u64 = 40;

/// Wire size of an ACK control frame in bytes.
pub const ACK_BYTES: u64 = 220;

// ---------------------------------------------------------------------
// Federation tier (swarm-of-swarms; reproduction-specific, motivated
// by the SwarMS multi-swarm scenario).
// ---------------------------------------------------------------------

/// Minimum one-way latency of an inter-swarm gateway link. Gateways
/// bridge co-located swarms over an uplink hop (AP-to-AP or cellular
/// backhaul), an order of magnitude slower than the intra-swarm hop.
/// This floor doubles as the conservative-synchronization *lookahead*
/// of the sharded simulator: a shard may safely advance past the global
/// lower-bound timestamp by exactly this much, because no cross-shard
/// tuple can arrive sooner.
pub const GATEWAY_MIN_LATENCY_US: u64 = 20 * MILLISECOND_US;

// ---------------------------------------------------------------------
// Executor cadence (reproduction-specific; PR3 telemetry design).
// ---------------------------------------------------------------------

/// Executors flush batched telemetry at least this often even when the
/// dispatch counter cadence has not been reached.
pub const TELEMETRY_PUBLISH_INTERVAL_US: u64 = 250 * MILLISECOND_US;

/// Executors flush batched telemetry every N dispatches, keeping the
/// per-tuple instrumentation cost to a plain integer add.
pub const TELEMETRY_PUBLISH_EVERY_DISPATCHES: u64 = 64;

/// How long a dispatcher with queued-but-unsendable tuples waits before
/// re-attempting a flush (e.g. a downstream dialed but not yet ready).
pub const PENDING_RETRY_TICK_US: u64 = 10 * MILLISECOND_US;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_stay_in_sane_ranges() {
        assert_eq!(CONTROL_PERIOD_US, SECOND_US); // §V-A: every 1 s
        const {
            assert!(ACK_DEADLINE_FLOOR_US < ACK_DEADLINE_CEILING_US);
            assert!(LOCAL_HOP_US < ACK_DELAY_US);
            // The federation lookahead must dominate the intra-swarm
            // hop, or cross-shard windows would degenerate to lockstep.
            assert!(GATEWAY_MIN_LATENCY_US > ACK_DELAY_US);
            assert!(TELEMETRY_PUBLISH_INTERVAL_US < CONTROL_PERIOD_US);
            assert!(PENDING_RETRY_TICK_US < ACK_DEADLINE_FLOOR_US);
        }
    }
}
