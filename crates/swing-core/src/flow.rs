//! Overload control: bounded mailboxes, shed policies and credit flow.
//!
//! The paper's LRS selection picks the minimum worker prefix with
//! `Σ μ_i ≥ Λ`, but when the swarm is unsatisfiable it "selects all"
//! and queues grow without bound — queueing delay is *inside* `L_i`,
//! so the router feeds on exactly the stale, inflating estimates that
//! overload produces. This module supplies the three mechanisms that
//! let the data plane degrade gracefully instead (the shape used by
//! Storm's `max.spout.pending` and SEEP's flow control, both cited as
//! baselines in the paper):
//!
//! 1. **Bounded mailboxes** ([`Mailbox`]) — each operator executor
//!    buffers incoming data tuples in a bounded queue with a per-edge
//!    [`OverloadPolicy`]. For sensing streams the default is
//!    [`OverloadPolicy::ShedOldest`]: a stale camera frame is worthless,
//!    so the oldest queued frame is dropped to admit the fresh one.
//! 2. **Credit-based admission** — the dispatcher grants each
//!    downstream [`FlowConfig::credits_per_downstream`] credits,
//!    decrements one per in-flight tuple and replenishes on ACK (or on
//!    loss/reclaim). A source whose selected set has no credits left
//!    sheds *at capture time* — the cheapest possible point.
//! 3. **Occupancy feedback** — per-downstream queue occupancy
//!    (outstanding / credits) is fed back into the router, which
//!    de-weights saturated workers before their inflated latency
//!    estimates catch up (see `RouterConfig::occupancy_penalty`).
//!
//! Shedding is *accounted*, never silent. Every sensed tuple ends in
//! exactly one of four buckets, and the identity
//!
//! ```text
//! sensed = delivered + shed_at_source + shed_in_queue + lost
//! ```
//!
//! holds exactly (tested in the runtime's overload suite). Shed tuples
//! are ACKed immediately by the receiver so upstream credits replenish
//! and the retransmission layer does not amplify the overload.
//!
//! Sinks intentionally have no mailbox: their service time is O(1)
//! (record + hand to the reorder buffer, which is itself the sink's
//! bounded queue) and they ACK on receipt, so credits already flow.
//! Mailboxes protect operators; admission protects sources.

use crate::error::{Error, Result};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// What a full mailbox does with the next incoming tuple.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OverloadPolicy {
    /// Never shed on the receiver side; rely on credit back-pressure to
    /// pause the source. With credits sized to the mailbox capacity a
    /// well-behaved upstream never overflows a `Block` mailbox; if one
    /// does overflow anyway (e.g. credits disabled), the freshest tuple
    /// is rejected like [`ShedNewest`](OverloadPolicy::ShedNewest).
    Block,
    /// Evict the oldest queued tuple to admit the incoming one
    /// (freshness-first — the right default for live sensing streams).
    ShedOldest,
    /// Reject the incoming tuple and keep the queue as is
    /// (completeness-first — for streams where order of arrival wins).
    ShedNewest,
}

impl OverloadPolicy {
    /// Short lowercase label used in telemetry and reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            OverloadPolicy::Block => "block",
            OverloadPolicy::ShedOldest => "shed_oldest",
            OverloadPolicy::ShedNewest => "shed_newest",
        }
    }
}

/// Configuration of the overload-control layer.
///
/// The default is **disabled** — unbounded mailboxes, no admission
/// gate, exactly the seed build's behavior — so existing deployments
/// and the A/B baseline arm are unaffected. [`FlowConfig::bounded`]
/// turns everything on with one capacity knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlowConfig {
    /// Master switch. Disabled reproduces unbounded seed behavior.
    pub enabled: bool,
    /// Maximum data tuples an operator mailbox holds before its
    /// [`OverloadPolicy`] kicks in.
    pub mailbox_capacity: usize,
    /// What a full mailbox does (see [`OverloadPolicy`]).
    pub policy: OverloadPolicy,
    /// Credits granted to each downstream: the number of tuples the
    /// dispatcher may have in flight toward it before the source-side
    /// admission gate closes. Usually equal to `mailbox_capacity`.
    pub credits_per_downstream: u32,
}

impl FlowConfig {
    /// Overload control off: unbounded mailboxes, no admission gate.
    #[must_use]
    pub fn disabled() -> Self {
        FlowConfig {
            enabled: false,
            mailbox_capacity: usize::MAX,
            policy: OverloadPolicy::ShedOldest,
            credits_per_downstream: u32::MAX,
        }
    }

    /// Freshness-first overload control sized to `capacity` tuples per
    /// edge: `ShedOldest` mailboxes plus a credit window of the same
    /// size per downstream.
    #[must_use]
    pub fn bounded(capacity: usize) -> Self {
        FlowConfig {
            enabled: true,
            mailbox_capacity: capacity,
            policy: OverloadPolicy::ShedOldest,
            credits_per_downstream: capacity.min(u32::MAX as usize) as u32,
        }
    }

    /// The capacity the executor should give its mailbox: the
    /// configured bound when enabled, unbounded otherwise.
    #[must_use]
    pub fn effective_capacity(&self) -> usize {
        if self.enabled {
            self.mailbox_capacity
        } else {
            usize::MAX
        }
    }

    /// Validate ranges; call before handing the config to the runtime.
    pub fn validate(&self) -> Result<()> {
        if self.enabled && self.mailbox_capacity == 0 {
            return Err(Error::InvalidConfig(
                "flow mailbox_capacity must be positive".into(),
            ));
        }
        if self.enabled && self.credits_per_downstream == 0 {
            return Err(Error::InvalidConfig(
                "flow credits_per_downstream must be positive".into(),
            ));
        }
        Ok(())
    }
}

impl Default for FlowConfig {
    fn default() -> Self {
        FlowConfig::disabled()
    }
}

/// Outcome of a [`Mailbox::push`].
#[derive(Debug, PartialEq, Eq)]
pub enum PushOutcome<T> {
    /// The item was queued; nothing was shed.
    Queued,
    /// The item was queued and the returned (oldest) item was evicted
    /// to make room (`ShedOldest`).
    ShedOldest(T),
    /// The incoming item was rejected and is returned to the caller
    /// (`ShedNewest`, or `Block` on a credit-bypassing overflow).
    Rejected(T),
}

/// A bounded FIFO queue of data tuples with an [`OverloadPolicy`].
///
/// This is the executor's *data* queue; control messages (ACKs,
/// connect/disconnect, start/stop) never pass through it — they are
/// handled immediately so overload can't delay failure recovery.
#[derive(Debug)]
pub struct Mailbox<T> {
    items: VecDeque<T>,
    capacity: usize,
    policy: OverloadPolicy,
    shed: u64,
    high_watermark: usize,
}

impl<T> Mailbox<T> {
    /// A mailbox holding at most `capacity` items (`usize::MAX` for an
    /// effectively unbounded queue).
    #[must_use]
    pub fn new(capacity: usize, policy: OverloadPolicy) -> Self {
        Mailbox {
            items: VecDeque::new(),
            capacity,
            policy,
            shed: 0,
            high_watermark: 0,
        }
    }

    /// A mailbox sized and governed by `config`.
    #[must_use]
    pub fn from_config(config: &FlowConfig) -> Self {
        Mailbox::new(config.effective_capacity(), config.policy)
    }

    /// Queue `item`, applying the overload policy if the mailbox is
    /// full. The caller must account (and usually ACK) any shed item
    /// carried by the returned [`PushOutcome`].
    pub fn push(&mut self, item: T) -> PushOutcome<T> {
        let outcome = if self.items.len() < self.capacity {
            self.items.push_back(item);
            PushOutcome::Queued
        } else {
            match self.policy {
                OverloadPolicy::ShedOldest => {
                    let victim = self.items.pop_front().expect("capacity > 0 implies items");
                    self.items.push_back(item);
                    self.shed += 1;
                    PushOutcome::ShedOldest(victim)
                }
                OverloadPolicy::ShedNewest | OverloadPolicy::Block => {
                    self.shed += 1;
                    PushOutcome::Rejected(item)
                }
            }
        };
        self.high_watermark = self.high_watermark.max(self.items.len());
        outcome
    }

    /// Dequeue the oldest item, if any.
    pub fn pop(&mut self) -> Option<T> {
        self.items.pop_front()
    }

    /// Items currently queued.
    #[must_use]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the mailbox is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The configured capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Items shed (evicted or rejected) so far.
    #[must_use]
    pub fn shed_count(&self) -> u64 {
        self.shed
    }

    /// The deepest the queue has ever been.
    #[must_use]
    pub fn high_watermark(&self) -> usize {
        self.high_watermark
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_disabled_and_seed_shaped() {
        let c = FlowConfig::default();
        assert!(!c.enabled);
        assert_eq!(c.effective_capacity(), usize::MAX);
        c.validate().unwrap();
    }

    #[test]
    fn bounded_sizes_credits_to_capacity() {
        let c = FlowConfig::bounded(8);
        assert!(c.enabled);
        assert_eq!(c.mailbox_capacity, 8);
        assert_eq!(c.credits_per_downstream, 8);
        assert_eq!(c.policy, OverloadPolicy::ShedOldest);
        c.validate().unwrap();
    }

    #[test]
    fn validation_rejects_zero_capacity_when_enabled() {
        let mut c = FlowConfig::bounded(4);
        c.mailbox_capacity = 0;
        assert!(c.validate().is_err());
        let mut c = FlowConfig::bounded(4);
        c.credits_per_downstream = 0;
        assert!(c.validate().is_err());
        // Zero capacity is fine while disabled — it is never used.
        let mut c = FlowConfig::disabled();
        c.mailbox_capacity = 0;
        c.validate().unwrap();
    }

    #[test]
    fn shed_oldest_evicts_front() {
        let mut m = Mailbox::new(2, OverloadPolicy::ShedOldest);
        assert_eq!(m.push(1), PushOutcome::Queued);
        assert_eq!(m.push(2), PushOutcome::Queued);
        assert_eq!(m.push(3), PushOutcome::ShedOldest(1));
        assert_eq!(m.len(), 2);
        assert_eq!(m.pop(), Some(2));
        assert_eq!(m.pop(), Some(3));
        assert_eq!(m.shed_count(), 1);
        assert_eq!(m.high_watermark(), 2);
    }

    #[test]
    fn shed_newest_rejects_incoming() {
        let mut m = Mailbox::new(2, OverloadPolicy::ShedNewest);
        m.push(1);
        m.push(2);
        assert_eq!(m.push(3), PushOutcome::Rejected(3));
        assert_eq!(m.pop(), Some(1));
        assert_eq!(m.pop(), Some(2));
        assert_eq!(m.shed_count(), 1);
    }

    #[test]
    fn block_overflow_rejects_like_shed_newest() {
        let mut m = Mailbox::new(1, OverloadPolicy::Block);
        m.push(1);
        assert_eq!(m.push(2), PushOutcome::Rejected(2));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn unbounded_mailbox_never_sheds() {
        let mut m = Mailbox::from_config(&FlowConfig::disabled());
        for i in 0..10_000 {
            assert_eq!(m.push(i), PushOutcome::Queued);
        }
        assert_eq!(m.shed_count(), 0);
        assert_eq!(m.len(), 10_000);
        assert_eq!(m.high_watermark(), 10_000);
    }
}
