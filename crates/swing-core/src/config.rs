//! Configuration for the resource-management layer.

use crate::error::{Error, Result};
use crate::routing::Policy;
use crate::SECOND_US;
use serde::{Deserialize, Serialize};

/// Configuration of a [`Router`](crate::routing::Router) — one per
/// upstream function unit.
///
/// Defaults follow the paper: control information is exchanged "every 1 s
/// in our implementation" (§V-A), latency is a moving average (§V-B), and
/// upstreams "switch periodically every few rounds to round robin mode for
/// a short time" to refresh estimates of unselected downstreams.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RouterConfig {
    /// Which routing policy to run (LRS, or one of the four baselines).
    pub policy: Policy,
    /// Period between rebalancing rounds, microseconds (default 1 s).
    pub control_period_us: u64,
    /// Enter probe (round-robin) mode every this many rebalancing rounds.
    pub probe_every_rounds: u32,
    /// During a probe, send this many tuples to *each* downstream.
    pub probe_tuples_per_unit: u32,
    /// Window length of the per-downstream latency moving average.
    pub latency_window: usize,
    /// Optimistic latency assumed for downstreams with no samples yet
    /// (microseconds). Keeps freshly joined devices attractive until the
    /// first measurements arrive.
    pub initial_latency_us: f64,
    /// Tuples unacknowledged for this long count as lost (microseconds).
    pub loss_timeout_us: u64,
    /// Multiplier on the measured input rate Λ when selecting workers;
    /// 1.0 reproduces the paper's `Σ μ_i ≥ Λ` constraint exactly, larger
    /// values keep spare capacity.
    pub headroom: f64,
    /// Latency/processing samples older than this no longer influence
    /// the moving averages (microseconds). Links change on the timescale
    /// of user movement; remembering a bad minute forever would keep a
    /// recovered device unattractive. Default 10 s.
    pub sample_max_age_us: u64,
    /// Floor each latency estimate by the age of the oldest
    /// unacknowledged in-flight tuple (an RTO-like freshness signal).
    /// On by default; turning it off reproduces a pure
    /// moving-average-of-ACKs estimator for ablation studies.
    pub pending_age_floor: bool,
}

impl RouterConfig {
    /// Paper-faithful defaults for the given policy.
    #[must_use]
    pub fn new(policy: Policy) -> Self {
        RouterConfig {
            policy,
            control_period_us: SECOND_US,
            probe_every_rounds: 5,
            probe_tuples_per_unit: 1,
            latency_window: 16,
            initial_latency_us: 100_000.0, // 100 ms
            loss_timeout_us: 5 * SECOND_US,
            headroom: 1.0,
            sample_max_age_us: 10 * SECOND_US,
            pending_age_floor: true,
        }
    }

    /// Validate ranges; call before handing the config to a router.
    pub fn validate(&self) -> Result<()> {
        if self.control_period_us == 0 {
            return Err(Error::InvalidConfig("control period must be positive".into()));
        }
        if self.latency_window == 0 {
            return Err(Error::InvalidConfig("latency window must be non-empty".into()));
        }
        if !(self.initial_latency_us > 0.0) {
            return Err(Error::InvalidConfig(
                "initial latency estimate must be positive".into(),
            ));
        }
        if !(self.headroom >= 1.0) {
            return Err(Error::InvalidConfig("headroom must be >= 1.0".into()));
        }
        if self.sample_max_age_us == 0 {
            return Err(Error::InvalidConfig(
                "sample_max_age_us must be positive".into(),
            ));
        }
        if self.probe_every_rounds == 0 {
            return Err(Error::InvalidConfig(
                "probe_every_rounds must be positive (use a large value to disable)".into(),
            ));
        }
        Ok(())
    }
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig::new(Policy::Lrs)
    }
}

/// Configuration of the sink-side reordering service.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReorderConfig {
    /// How long a tuple may wait for earlier-sequence stragglers before
    /// playback skips them. The paper sizes the buffer as a "timespan of
    /// 1 second" relative to the source data rate (§VI-B).
    pub span_us: u64,
}

impl ReorderConfig {
    /// The paper's 1-second buffer.
    #[must_use]
    pub fn one_second() -> Self {
        ReorderConfig { span_us: SECOND_US }
    }
}

impl Default for ReorderConfig {
    fn default() -> Self {
        ReorderConfig::one_second()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = RouterConfig::default();
        assert_eq!(c.policy, Policy::Lrs);
        assert_eq!(c.control_period_us, SECOND_US);
        c.validate().unwrap();
        assert_eq!(ReorderConfig::default().span_us, SECOND_US);
    }

    #[test]
    fn validation_rejects_bad_ranges() {
        let mut c = RouterConfig::default();
        c.control_period_us = 0;
        assert!(c.validate().is_err());

        let mut c = RouterConfig::default();
        c.latency_window = 0;
        assert!(c.validate().is_err());

        let mut c = RouterConfig::default();
        c.initial_latency_us = 0.0;
        assert!(c.validate().is_err());

        let mut c = RouterConfig::default();
        c.headroom = 0.5;
        assert!(c.validate().is_err());

        let mut c = RouterConfig::default();
        c.probe_every_rounds = 0;
        assert!(c.validate().is_err());
    }
}
