//! Configuration for the resource-management layer.

use crate::error::{Error, Result};
use crate::routing::Policy;
use crate::{timing, SECOND_US};
use serde::{Deserialize, Serialize};

/// Configuration of a [`Router`](crate::routing::Router) — one per
/// upstream function unit.
///
/// Defaults follow the paper: control information is exchanged "every 1 s
/// in our implementation" (§V-A), latency is a moving average (§V-B), and
/// upstreams "switch periodically every few rounds to round robin mode for
/// a short time" to refresh estimates of unselected downstreams.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RouterConfig {
    /// Which routing policy to run (LRS, or one of the four baselines).
    pub policy: Policy,
    /// Period between rebalancing rounds, microseconds (default 1 s).
    pub control_period_us: u64,
    /// Enter probe (round-robin) mode every this many rebalancing rounds.
    pub probe_every_rounds: u32,
    /// During a probe, send this many tuples to *each* downstream.
    pub probe_tuples_per_unit: u32,
    /// Window length of the per-downstream latency moving average.
    pub latency_window: usize,
    /// Optimistic latency assumed for downstreams with no samples yet
    /// (microseconds). Keeps freshly joined devices attractive until the
    /// first measurements arrive.
    pub initial_latency_us: f64,
    /// Tuples unacknowledged for this long count as lost (microseconds).
    pub loss_timeout_us: u64,
    /// Multiplier on the measured input rate Λ when selecting workers;
    /// 1.0 reproduces the paper's `Σ μ_i ≥ Λ` constraint exactly, larger
    /// values keep spare capacity.
    pub headroom: f64,
    /// Latency/processing samples older than this no longer influence
    /// the moving averages (microseconds). Links change on the timescale
    /// of user movement; remembering a bad minute forever would keep a
    /// recovered device unattractive. Default 10 s.
    pub sample_max_age_us: u64,
    /// Floor each latency estimate by the age of the oldest
    /// unacknowledged in-flight tuple (an RTO-like freshness signal).
    /// On by default; turning it off reproduces a pure
    /// moving-average-of-ACKs estimator for ablation studies.
    pub pending_age_floor: bool,
    /// Weight of queue-occupancy feedback on routing. Each rebalance
    /// scales a downstream's effective delay by
    /// `1 + occupancy × occupancy_penalty`, where occupancy ∈ [0, 1] is
    /// its reported credit-window fill (see `swing_core::flow`). This
    /// de-weights saturated workers *before* their queueing delay leaks
    /// into the latency estimate. 0 (the default) disables the feedback
    /// and reproduces the paper's pure latency-based weighting.
    pub occupancy_penalty: f64,
}

impl RouterConfig {
    /// Paper-faithful defaults for the given policy.
    #[must_use]
    pub fn new(policy: Policy) -> Self {
        RouterConfig {
            policy,
            control_period_us: timing::CONTROL_PERIOD_US,
            probe_every_rounds: timing::PROBE_EVERY_ROUNDS,
            probe_tuples_per_unit: timing::PROBE_TUPLES_PER_UNIT,
            latency_window: 16,
            initial_latency_us: timing::INITIAL_LATENCY_ESTIMATE_US,
            loss_timeout_us: timing::LOSS_TIMEOUT_US,
            headroom: 1.0,
            sample_max_age_us: timing::SAMPLE_MAX_AGE_US,
            pending_age_floor: true,
            occupancy_penalty: 0.0,
        }
    }

    /// Validate ranges; call before handing the config to a router.
    pub fn validate(&self) -> Result<()> {
        if self.control_period_us == 0 {
            return Err(Error::InvalidConfig(
                "control period must be positive".into(),
            ));
        }
        if self.latency_window == 0 {
            return Err(Error::InvalidConfig(
                "latency window must be non-empty".into(),
            ));
        }
        // `!(x > 0.0)` rather than `x <= 0.0`: NaN must also be rejected.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !(self.initial_latency_us > 0.0) {
            return Err(Error::InvalidConfig(
                "initial latency estimate must be positive".into(),
            ));
        }
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !(self.headroom >= 1.0) {
            return Err(Error::InvalidConfig("headroom must be >= 1.0".into()));
        }
        if self.sample_max_age_us == 0 {
            return Err(Error::InvalidConfig(
                "sample_max_age_us must be positive".into(),
            ));
        }
        if self.probe_every_rounds == 0 {
            return Err(Error::InvalidConfig(
                "probe_every_rounds must be positive (use a large value to disable)".into(),
            ));
        }
        // `!(x >= 0.0)` rather than `x < 0.0`: NaN must also be rejected.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !(self.occupancy_penalty >= 0.0) {
            return Err(Error::InvalidConfig(
                "occupancy_penalty must be >= 0".into(),
            ));
        }
        Ok(())
    }
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig::new(Policy::Lrs)
    }
}

/// Configuration of the runtime's delivery/retransmission layer.
///
/// The paper's prototype loses the tuples that are in flight toward a
/// departing device ("13 frames are lost", §VI-C). This layer upgrades
/// dispatch to at-least-once delivery: every dispatched tuple is retained
/// until ACKed, with an ACK deadline derived from the router's live
/// latency estimate `L_i` for the chosen downstream —
/// `deadline = clamp(deadline_factor · L_i, floor, ceiling) · backoff_factor^attempt`.
/// On expiry the tuple is re-routed (bounded retries, exponential
/// backoff); receivers deduplicate by sequence number so each stage still
/// executes a tuple at most once.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RetryConfig {
    /// Master switch. Disabled reproduces the paper prototype's
    /// fire-and-forget dispatch (in-flight tuples on broken links are
    /// counted lost, never re-sent).
    pub enabled: bool,
    /// ACK deadline as a multiple of the downstream's latency estimate.
    pub deadline_factor: f64,
    /// Lower bound on the ACK deadline (µs). Guards against spurious
    /// retransmissions when the latency estimate is optimistically small.
    pub deadline_floor_us: u64,
    /// Upper bound on the ACK deadline (µs), including backoff growth.
    pub deadline_ceiling_us: u64,
    /// Deadline multiplier applied per failed attempt (exponential
    /// backoff).
    pub backoff_factor: f64,
    /// Re-dispatch attempts before a tuple is declared lost.
    pub max_retries: u32,
    /// Per-upstream receiver-side dedup window: how many recently seen
    /// sequence numbers each executor remembers per upstream.
    pub dedup_window: usize,
}

impl RetryConfig {
    /// Paper-prototype behavior: no retention, no retransmission.
    #[must_use]
    pub fn disabled() -> Self {
        RetryConfig {
            enabled: false,
            ..RetryConfig::default()
        }
    }

    /// The ACK deadline (µs from dispatch) for a tuple on attempt
    /// `attempt` (0 = first transmission), given the downstream's current
    /// latency estimate.
    #[must_use]
    pub fn deadline_us(&self, latency_estimate_us: f64, attempt: u32) -> u64 {
        let base = (latency_estimate_us.max(0.0) * self.deadline_factor) as u64;
        let base = base.clamp(self.deadline_floor_us, self.deadline_ceiling_us);
        let scale = self.backoff_factor.powi(attempt.min(30) as i32);
        let scaled = (base as f64 * scale) as u64;
        scaled.clamp(self.deadline_floor_us, self.deadline_ceiling_us)
    }

    /// Validate ranges; call before handing the config to the runtime.
    pub fn validate(&self) -> Result<()> {
        // `!(x > 0.0)` rather than `x <= 0.0`: NaN must also be rejected.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !(self.deadline_factor > 0.0) {
            return Err(Error::InvalidConfig(
                "deadline_factor must be positive".into(),
            ));
        }
        if self.deadline_floor_us == 0 {
            return Err(Error::InvalidConfig(
                "deadline floor must be positive".into(),
            ));
        }
        if self.deadline_ceiling_us < self.deadline_floor_us {
            return Err(Error::InvalidConfig(
                "deadline ceiling must be >= floor".into(),
            ));
        }
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !(self.backoff_factor >= 1.0) {
            return Err(Error::InvalidConfig("backoff_factor must be >= 1.0".into()));
        }
        if self.dedup_window == 0 {
            return Err(Error::InvalidConfig(
                "dedup window must be non-empty".into(),
            ));
        }
        Ok(())
    }
}

impl Default for RetryConfig {
    fn default() -> Self {
        RetryConfig {
            enabled: true,
            deadline_factor: 4.0,
            deadline_floor_us: timing::ACK_DEADLINE_FLOOR_US,
            deadline_ceiling_us: timing::ACK_DEADLINE_CEILING_US,
            backoff_factor: 2.0,
            max_retries: 8,
            dedup_window: 1024,
        }
    }
}

/// Configuration of the sink-side reordering service.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReorderConfig {
    /// How long a tuple may wait for earlier-sequence stragglers before
    /// playback skips them. The paper sizes the buffer as a "timespan of
    /// 1 second" relative to the source data rate (§VI-B).
    pub span_us: u64,
}

impl ReorderConfig {
    /// The paper's 1-second buffer.
    #[must_use]
    pub fn one_second() -> Self {
        ReorderConfig { span_us: SECOND_US }
    }
}

impl Default for ReorderConfig {
    fn default() -> Self {
        ReorderConfig::one_second()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = RouterConfig::default();
        assert_eq!(c.policy, Policy::Lrs);
        assert_eq!(c.control_period_us, SECOND_US);
        c.validate().unwrap();
        assert_eq!(ReorderConfig::default().span_us, SECOND_US);
    }

    #[test]
    fn retry_defaults_validate_and_disable() {
        let c = RetryConfig::default();
        assert!(c.enabled);
        c.validate().unwrap();
        assert!(!RetryConfig::disabled().enabled);
    }

    #[test]
    fn retry_deadline_floors_ceils_and_backs_off() {
        let c = RetryConfig::default();
        // Tiny estimate: floored.
        assert_eq!(c.deadline_us(1_000.0, 0), 150_000);
        // 100 ms estimate × 4 = 400 ms.
        assert_eq!(c.deadline_us(100_000.0, 0), 400_000);
        // Backoff doubles per attempt but never exceeds the ceiling.
        assert_eq!(c.deadline_us(100_000.0, 1), 800_000);
        assert_eq!(c.deadline_us(100_000.0, 2), 1_600_000);
        assert_eq!(c.deadline_us(100_000.0, 3), 2_000_000);
        assert_eq!(c.deadline_us(100_000.0, 60), 2_000_000);
    }

    #[test]
    fn retry_validation_rejects_bad_ranges() {
        let bad = [
            RetryConfig {
                deadline_factor: 0.0,
                ..RetryConfig::default()
            },
            RetryConfig {
                deadline_floor_us: 0,
                ..RetryConfig::default()
            },
            RetryConfig {
                deadline_ceiling_us: RetryConfig::default().deadline_floor_us - 1,
                ..RetryConfig::default()
            },
            RetryConfig {
                backoff_factor: 0.9,
                ..RetryConfig::default()
            },
            RetryConfig {
                dedup_window: 0,
                ..RetryConfig::default()
            },
        ];
        for c in bad {
            assert!(c.validate().is_err(), "{c:?} should be rejected");
        }
    }

    #[test]
    fn validation_rejects_bad_ranges() {
        let bad = [
            RouterConfig {
                control_period_us: 0,
                ..RouterConfig::default()
            },
            RouterConfig {
                latency_window: 0,
                ..RouterConfig::default()
            },
            RouterConfig {
                initial_latency_us: 0.0,
                ..RouterConfig::default()
            },
            RouterConfig {
                headroom: 0.5,
                ..RouterConfig::default()
            },
            RouterConfig {
                probe_every_rounds: 0,
                ..RouterConfig::default()
            },
            RouterConfig {
                occupancy_penalty: -0.1,
                ..RouterConfig::default()
            },
            RouterConfig {
                occupancy_penalty: f64::NAN,
                ..RouterConfig::default()
            },
        ];
        for c in bad {
            assert!(c.validate().is_err(), "{c:?} should be rejected");
        }
    }
}
