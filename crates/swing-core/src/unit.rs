//! The function-unit programming API.
//!
//! "Each function unit is programmed to first receive data, and then
//! perform certain tasks" (paper §IV-A). A [`FunctionUnit`] receives one
//! [`Tuple`] at a time, computes, and emits zero or more output tuples to
//! its downstream units through an [`Emitter`]. Sources and sinks get
//! their own traits because they sit at the boundary of the graph: a
//! [`SourceUnit`] is *pulled* by the runtime's pacing loop, a
//! [`SinkUnit`] only consumes.

use crate::tuple::Tuple;
use std::fmt;

/// Destination for tuples produced by a function unit.
///
/// Implementations decide what "send to the next unit" means: the live
/// runtime routes through a [`Router`](crate::routing::Router) and a
/// transport, tests can simply collect into a `Vec<Tuple>`.
pub trait Emitter {
    /// Hand one output tuple to the downstream edge.
    fn emit(&mut self, tuple: Tuple);
}

impl Emitter for Vec<Tuple> {
    fn emit(&mut self, tuple: Tuple) {
        self.push(tuple);
    }
}

/// Execution context passed to a function unit for each input tuple.
pub struct Context<'a> {
    /// Current time in microseconds (simulated or wall-clock).
    pub now_us: u64,
    out: &'a mut dyn Emitter,
    emitted: usize,
}

impl<'a> Context<'a> {
    /// Create a context that emits into `out`.
    pub fn new(now_us: u64, out: &'a mut dyn Emitter) -> Self {
        Context {
            now_us,
            out,
            emitted: 0,
        }
    }

    /// Send an output tuple downstream (the paper's `send(output)`).
    pub fn send(&mut self, tuple: Tuple) {
        self.emitted += 1;
        self.out.emit(tuple);
    }

    /// How many tuples have been emitted through this context.
    #[must_use]
    pub fn emitted(&self) -> usize {
        self.emitted
    }
}

impl fmt::Debug for Context<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Context")
            .field("now_us", &self.now_us)
            .field("emitted", &self.emitted)
            .finish_non_exhaustive()
    }
}

/// A computational vertex of the application graph.
///
/// Mirrors the paper's Java `FunctionUnitAPI` with its single
/// `processData(Tuple data)` method.
pub trait FunctionUnit: Send {
    /// Process one incoming tuple, emitting any outputs via `ctx`.
    fn process_data(&mut self, data: Tuple, ctx: &mut Context<'_>);

    /// Called once before the first tuple (load models, open resources).
    fn on_start(&mut self) {}

    /// Called once after the last tuple (flush, release resources).
    fn on_stop(&mut self) {}
}

/// A unit without upstreams: senses data and generates tuples.
///
/// The runtime pulls it at the configured input rate; returning `None`
/// signals end of stream.
pub trait SourceUnit: Send {
    /// Produce the next tuple, or `None` when the stream is exhausted.
    fn next_tuple(&mut self, now_us: u64) -> Option<Tuple>;
}

/// A unit without downstreams: consumes final results.
pub trait SinkUnit: Send {
    /// Consume one result tuple.
    fn consume(&mut self, data: Tuple, now_us: u64);
}

/// Adapter turning a closure into a [`FunctionUnit`].
///
/// ```
/// use swing_core::unit::{closure_unit, Context, FunctionUnit};
/// use swing_core::Tuple;
///
/// let mut upper = closure_unit(|data: Tuple, ctx: &mut Context<'_>| {
///     let text = data.str("text").unwrap().to_uppercase();
///     ctx.send(Tuple::with_seq(data.seq()).with("text", text));
/// });
/// let mut out = Vec::new();
/// let mut ctx = Context::new(0, &mut out);
/// upper.process_data(Tuple::new().with("text", "hi"), &mut ctx);
/// assert_eq!(out[0].str("text").unwrap(), "HI");
/// ```
pub fn closure_unit<F>(f: F) -> ClosureUnit<F>
where
    F: FnMut(Tuple, &mut Context<'_>) + Send,
{
    ClosureUnit { f }
}

/// See [`closure_unit`].
pub struct ClosureUnit<F> {
    f: F,
}

impl<F> fmt::Debug for ClosureUnit<F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ClosureUnit").finish_non_exhaustive()
    }
}

impl<F> FunctionUnit for ClosureUnit<F>
where
    F: FnMut(Tuple, &mut Context<'_>) + Send,
{
    fn process_data(&mut self, data: Tuple, ctx: &mut Context<'_>) {
        (self.f)(data, ctx);
    }
}

/// Adapter turning a closure into a [`SourceUnit`].
pub fn closure_source<F>(f: F) -> ClosureSource<F>
where
    F: FnMut(u64) -> Option<Tuple> + Send,
{
    ClosureSource { f }
}

/// See [`closure_source`].
pub struct ClosureSource<F> {
    f: F,
}

impl<F> fmt::Debug for ClosureSource<F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ClosureSource").finish_non_exhaustive()
    }
}

impl<F> SourceUnit for ClosureSource<F>
where
    F: FnMut(u64) -> Option<Tuple> + Send,
{
    fn next_tuple(&mut self, now_us: u64) -> Option<Tuple> {
        (self.f)(now_us)
    }
}

/// Adapter turning a closure into a [`SinkUnit`].
pub fn closure_sink<F>(f: F) -> ClosureSink<F>
where
    F: FnMut(Tuple, u64) + Send,
{
    ClosureSink { f }
}

/// See [`closure_sink`].
pub struct ClosureSink<F> {
    f: F,
}

impl<F> fmt::Debug for ClosureSink<F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ClosureSink").finish_non_exhaustive()
    }
}

impl<F> SinkUnit for ClosureSink<F>
where
    F: FnMut(Tuple, u64) + Send,
{
    fn consume(&mut self, data: Tuple, now_us: u64) {
        (self.f)(data, now_us);
    }
}

/// A unit that forwards its input unchanged; useful for tests and as a
/// placeholder when only routing behaviour matters.
#[derive(Debug, Default, Clone, Copy)]
pub struct PassThrough;

impl FunctionUnit for PassThrough {
    fn process_data(&mut self, data: Tuple, ctx: &mut Context<'_>) {
        ctx.send(data);
    }
}

/// Wraps a function unit and stretches its processing time by a factor,
/// emulating a slower device in live runs (the paper's testbed spans a
/// 6× speed range; on one host all threads run at the same speed, so
/// heterogeneity must be injected to exercise the routing policies).
///
/// The inner unit runs first; the wrapper then spins for
/// `(factor − 1) ×` the measured kernel time, so a factor of 6.5 makes
/// this replica behave like the paper's Galaxy S next to a Nexus 4.
pub struct Slowed<U> {
    inner: U,
    factor: f64,
}

impl<U> std::fmt::Debug for Slowed<U> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Slowed")
            .field("factor", &self.factor)
            .finish_non_exhaustive()
    }
}

impl<U> Slowed<U> {
    /// Wrap `inner`, stretching its compute time by `factor` (≥ 1.0).
    ///
    /// # Panics
    /// Panics if `factor` is below 1 or not finite.
    pub fn new(inner: U, factor: f64) -> Self {
        assert!(
            factor >= 1.0 && factor.is_finite(),
            "slowdown factor must be >= 1.0, got {factor}"
        );
        Slowed { inner, factor }
    }

    /// The configured slowdown factor.
    #[must_use]
    pub fn factor(&self) -> f64 {
        self.factor
    }
}

impl<U: FunctionUnit> FunctionUnit for Slowed<U> {
    fn process_data(&mut self, data: Tuple, ctx: &mut Context<'_>) {
        let t0 = std::time::Instant::now();
        self.inner.process_data(data, ctx);
        let kernel = t0.elapsed();
        let target = kernel.mul_f64(self.factor);
        while t0.elapsed() < target {
            std::hint::spin_loop();
        }
    }

    fn on_start(&mut self) {
        self.inner.on_start();
    }

    fn on_stop(&mut self) {
        self.inner.on_stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SeqNo;

    #[test]
    fn pass_through_forwards() {
        let mut out = Vec::new();
        let mut ctx = Context::new(5, &mut out);
        PassThrough.process_data(Tuple::with_seq(SeqNo(3)).with("x", 1i64), &mut ctx);
        assert_eq!(ctx.emitted(), 1);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].seq(), SeqNo(3));
    }

    #[test]
    fn closure_source_produces_until_none() {
        let mut remaining = 2;
        let mut src = closure_source(move |now| {
            if remaining == 0 {
                None
            } else {
                remaining -= 1;
                Some(Tuple::new().with("t", now as i64))
            }
        });
        assert!(src.next_tuple(1).is_some());
        assert!(src.next_tuple(2).is_some());
        assert!(src.next_tuple(3).is_none());
    }

    #[test]
    fn closure_sink_observes_tuples() {
        let mut seen = Vec::new();
        {
            let mut sink = closure_sink(|t: Tuple, now| seen.push((t.seq(), now)));
            sink.consume(Tuple::with_seq(SeqNo(1)), 10);
            sink.consume(Tuple::with_seq(SeqNo(2)), 20);
        }
        assert_eq!(seen, vec![(SeqNo(1), 10), (SeqNo(2), 20)]);
    }

    #[test]
    fn context_counts_emissions() {
        let mut out = Vec::new();
        let mut ctx = Context::new(0, &mut out);
        let mut fanout = closure_unit(|data: Tuple, ctx: &mut Context<'_>| {
            ctx.send(data.clone());
            ctx.send(data);
        });
        fanout.process_data(Tuple::new(), &mut ctx);
        assert_eq!(ctx.emitted(), 2);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn slowed_stretches_processing_time() {
        let mut out = Vec::new();
        // A kernel that actually burns some time, so the stretch is
        // measurable.
        let busy = closure_unit(|t: Tuple, ctx: &mut Context<'_>| {
            let mut acc = 0u64;
            for i in 0..200_000u64 {
                acc = acc.wrapping_mul(31).wrapping_add(i);
            }
            ctx.send(t.with("acc", acc as i64));
        });
        let time_one = |unit: &mut dyn FunctionUnit, out: &mut Vec<Tuple>| {
            let t0 = std::time::Instant::now();
            let mut ctx = Context::new(0, out);
            unit.process_data(Tuple::new(), &mut ctx);
            t0.elapsed()
        };
        let mut fast = closure_unit(|t: Tuple, ctx: &mut Context<'_>| {
            let mut acc = 0u64;
            for i in 0..200_000u64 {
                acc = acc.wrapping_mul(31).wrapping_add(i);
            }
            ctx.send(t.with("acc", acc as i64));
        });
        // Warm up, then compare medians of a few runs.
        let mut base = Vec::new();
        let mut slow_times = Vec::new();
        let mut slowed = Slowed::new(busy, 4.0);
        for _ in 0..5 {
            base.push(time_one(&mut fast, &mut out));
            slow_times.push(time_one(&mut slowed, &mut out));
        }
        base.sort();
        slow_times.sort();
        let ratio = slow_times[2].as_secs_f64() / base[2].as_secs_f64().max(1e-9);
        assert!(ratio > 2.0, "slowdown ratio only {ratio:.1}");
        assert_eq!(slowed.factor(), 4.0);
        assert_eq!(out.len(), 10);
    }

    #[test]
    #[should_panic(expected = "factor")]
    fn slowed_rejects_speedups() {
        let _ = Slowed::new(PassThrough, 0.5);
    }

    #[test]
    fn units_are_object_safe() {
        let mut units: Vec<Box<dyn FunctionUnit>> = vec![
            Box::new(PassThrough),
            Box::new(closure_unit(|_t, _c: &mut Context<'_>| {})),
        ];
        let mut out = Vec::new();
        let mut ctx = Context::new(0, &mut out);
        for u in &mut units {
            u.on_start();
            u.process_data(Tuple::new(), &mut ctx);
            u.on_stop();
        }
        assert_eq!(out.len(), 1);
    }
}
