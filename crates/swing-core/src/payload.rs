//! Shared, cheaply-clonable byte buffers for tuple payloads.
//!
//! Video frames and audio segments dominate the data plane: a single
//! captured frame is dispatched downstream, retained in the in-flight
//! retransmission table until its ACK arrives, and possibly duplicated by
//! the chaos fabric — three owners of the same pixels. [`SharedBytes`]
//! lets all of them hold the *same* heap allocation behind an [`Arc`], so
//! cloning a tuple costs a reference-count bump instead of a memcpy of
//! the frame.
//!
//! A `SharedBytes` is a view (`start..start + len`) into its backing
//! buffer, which makes zero-copy decoding possible: the network layer
//! wraps a received frame once and hands out sub-slices of it as payload
//! fields without copying (see `swing-net`'s `Message::decode_shared`).
//!
//! Ownership rule: the backing buffer is immutable from the moment a
//! `SharedBytes` is constructed. There is deliberately no `&mut [u8]`
//! accessor — mutation would be observable through every clone, including
//! tuples already retained for retransmission. Build a new buffer instead.

use std::borrow::Borrow;
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// An immutable, reference-counted byte buffer view.
///
/// Cloning is O(1) and never copies the underlying bytes. Equality and
/// ordering compare the viewed bytes, not the backing allocation, so two
/// views with equal contents compare equal regardless of provenance.
pub struct SharedBytes {
    buf: Arc<Vec<u8>>,
    start: usize,
    len: usize,
}

impl SharedBytes {
    /// An empty buffer (no allocation is shared, but none is needed).
    #[must_use]
    pub fn new() -> Self {
        SharedBytes {
            buf: Arc::new(Vec::new()),
            start: 0,
            len: 0,
        }
    }

    /// Wrap an owned vector without copying it.
    #[must_use]
    #[inline]
    pub fn from_vec(v: Vec<u8>) -> Self {
        let len = v.len();
        SharedBytes {
            buf: Arc::new(v),
            start: 0,
            len,
        }
    }

    /// Copy a slice into a fresh shared buffer.
    #[must_use]
    pub fn copy_from_slice(s: &[u8]) -> Self {
        SharedBytes::from_vec(s.to_vec())
    }

    /// A sub-view of this buffer (`range` is relative to this view).
    /// Shares the backing allocation — no bytes are copied.
    ///
    /// # Panics
    /// Panics if `start + len` exceeds this view's length.
    #[must_use]
    #[inline]
    pub fn slice(&self, start: usize, len: usize) -> Self {
        assert!(
            start.checked_add(len).is_some_and(|end| end <= self.len),
            "slice {start}..{} out of bounds of view of length {}",
            start + len,
            self.len
        );
        SharedBytes {
            buf: Arc::clone(&self.buf),
            start: self.start + start,
            len,
        }
    }

    /// The viewed bytes.
    #[must_use]
    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        &self.buf[self.start..self.start + self.len]
    }

    /// Length of the view in bytes.
    #[must_use]
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the view is empty.
    #[must_use]
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of live views sharing this backing allocation.
    ///
    /// Diagnostic only (the count is racy under concurrent clones); used
    /// by tests to assert that dispatch/retransmission/duplication share
    /// one allocation instead of deep-copying.
    #[must_use]
    #[inline]
    pub fn ref_count(&self) -> usize {
        Arc::strong_count(&self.buf)
    }

    /// Whether `other` is a view into the same backing allocation.
    #[must_use]
    #[inline]
    pub fn shares_allocation_with(&self, other: &SharedBytes) -> bool {
        Arc::ptr_eq(&self.buf, &other.buf)
    }
}

impl Clone for SharedBytes {
    #[inline]
    fn clone(&self) -> Self {
        SharedBytes {
            buf: Arc::clone(&self.buf),
            start: self.start,
            len: self.len,
        }
    }
}

impl Default for SharedBytes {
    fn default() -> Self {
        SharedBytes::new()
    }
}

impl Deref for SharedBytes {
    type Target = [u8];
    #[inline]
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for SharedBytes {
    #[inline]
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for SharedBytes {
    #[inline]
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for SharedBytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for SharedBytes {}

impl PartialEq<[u8]> for SharedBytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for SharedBytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl fmt::Debug for SharedBytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Frames are kilobytes; print shape, not contents.
        write!(f, "SharedBytes({} bytes", self.len)?;
        if self.start != 0 || self.len != self.buf.len() {
            write!(
                f,
                " @{}..{} of {}",
                self.start,
                self.start + self.len,
                self.buf.len()
            )?;
        }
        write!(f, ")")
    }
}

impl From<Vec<u8>> for SharedBytes {
    fn from(v: Vec<u8>) -> Self {
        SharedBytes::from_vec(v)
    }
}

impl From<&[u8]> for SharedBytes {
    fn from(s: &[u8]) -> Self {
        SharedBytes::copy_from_slice(s)
    }
}

impl<const N: usize> From<[u8; N]> for SharedBytes {
    fn from(a: [u8; N]) -> Self {
        SharedBytes::from_vec(a.to_vec())
    }
}

impl FromIterator<u8> for SharedBytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        SharedBytes::from_vec(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_does_not_copy_and_clone_shares() {
        let frame = vec![7u8; 6_000];
        let a = SharedBytes::from_vec(frame);
        assert_eq!(a.ref_count(), 1);
        let b = a.clone();
        assert_eq!(a.ref_count(), 2);
        assert!(a.shares_allocation_with(&b));
        assert_eq!(a, b);
        drop(b);
        assert_eq!(a.ref_count(), 1);
    }

    #[test]
    fn slice_shares_backing_allocation() {
        let a = SharedBytes::from_vec((0u8..100).collect());
        let mid = a.slice(10, 20);
        assert!(a.shares_allocation_with(&mid));
        assert_eq!(&mid[..], &(10u8..30).collect::<Vec<_>>()[..]);
        // Slicing a slice stays relative to the view.
        let inner = mid.slice(5, 5);
        assert_eq!(&inner[..], &[15, 16, 17, 18, 19]);
        assert!(inner.shares_allocation_with(&a));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_out_of_bounds_panics() {
        let a = SharedBytes::from_vec(vec![0; 4]);
        let _ = a.slice(2, 3);
    }

    #[test]
    fn equality_is_by_contents_not_provenance() {
        let a = SharedBytes::from_vec(vec![1, 2, 3]);
        let b = SharedBytes::copy_from_slice(&[1, 2, 3]);
        assert_eq!(a, b);
        assert!(!a.shares_allocation_with(&b));
        assert_eq!(a, vec![1, 2, 3]);
        assert_eq!(a, *[1u8, 2, 3].as_slice());
    }

    #[test]
    fn empty_views() {
        let e = SharedBytes::new();
        assert!(e.is_empty());
        assert_eq!(e.len(), 0);
        let a = SharedBytes::from_vec(vec![1, 2]);
        let tail = a.slice(2, 0);
        assert!(tail.is_empty());
    }

    #[test]
    fn debug_prints_shape_not_contents() {
        let a = SharedBytes::from_vec(vec![0; 6000]);
        assert_eq!(format!("{a:?}"), "SharedBytes(6000 bytes)");
        let s = a.slice(100, 50);
        assert_eq!(format!("{s:?}"), "SharedBytes(50 bytes @100..150 of 6000)");
    }
}
