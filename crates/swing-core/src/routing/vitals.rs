//! The open worker-selection API: per-worker vitals and the
//! [`SelectionPolicy`] trait.
//!
//! The paper evaluates five closed-form policies (§VI-B), but defers the
//! energy question ("how to balance latency against device lifetime") to
//! future work. This module opens the selection step: the router hands a
//! policy a [`WorkerVitals`] snapshot per downstream — the same latency
//! estimate LRS weights by, plus battery level, drain rate and signal
//! strength — and the policy answers with a [`SelectionDecision`]. The
//! five paper policies are re-expressed as built-in implementations, and
//! three lifetime-aware policies join them:
//!
//! * [`EnergyWeightedLrs`] — LRS weights `1/L_i`, scaled down by the
//!   worker's projected lifetime so dying devices shed load gradually.
//! * [`CorrelatedSubset`] — Robot-Subset-Selection-style: among
//!   correlated sources covering the demand, prefer the ones with the
//!   healthiest batteries.
//! * [`CrowdioResched`] — CROWDio-style rescheduling: workers under a
//!   battery threshold are treated as *departing* and drained
//!   proactively, before the cliff turns their in-flight work into loss.

use crate::routing::policy::Metric;
use crate::routing::selection::select_workers;
use crate::UnitId;

/// Everything a [`SelectionPolicy`] may read about one downstream worker
/// at re-selection time.
///
/// `latency_us` is the router's occupancy-penalized delay estimate under
/// the policy's [`metric`](SelectionPolicy::metric) — exactly the figure
/// classic LRS inverts into a service rate. The energy and radio fields
/// default to a healthy mains-powered device (`battery_frac = 1`,
/// `drain_w = 0`, `rssi_dbm = 0` meaning *unreported*) until the runtime
/// feeds real vitals via `Router::note_vitals`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkerVitals {
    /// Downstream function-unit instance.
    pub unit: UnitId,
    /// Effective delay estimate, microseconds (occupancy-penalized,
    /// floored at 1 µs).
    pub latency_us: f64,
    /// Remaining battery charge, 0..=1. Mains-powered / unreported
    /// workers sit at 1.
    pub battery_frac: f64,
    /// Current total power draw, watts. 0 when unreported.
    pub drain_w: f64,
    /// Wi-Fi signal strength, dBm. 0 when unreported.
    pub rssi_dbm: f64,
}

impl WorkerVitals {
    /// Vitals for a healthy, unmeasured worker at the given delay.
    #[must_use]
    pub fn healthy(unit: UnitId, latency_us: f64) -> Self {
        WorkerVitals {
            unit,
            latency_us,
            battery_frac: 1.0,
            drain_w: 0.0,
            rssi_dbm: 0.0,
        }
    }

    /// Service rate `μ = 1/L`, tuples per second.
    #[must_use]
    pub fn rate_per_sec(&self) -> f64 {
        1_000_000.0 / self.latency_us.max(1.0)
    }

    /// Projected seconds until the battery empties at the current draw,
    /// assuming a phone-class pack ([`REFERENCE_CAPACITY_J`]).
    /// `f64::INFINITY` for full or non-draining workers.
    #[must_use]
    pub fn lifetime_s(&self) -> f64 {
        if self.drain_w <= 0.0 || self.battery_frac >= 1.0 {
            f64::INFINITY
        } else {
            self.battery_frac.max(0.0) * REFERENCE_CAPACITY_J / self.drain_w
        }
    }
}

/// Phone-class battery capacity assumed when projecting lifetimes from a
/// charge *fraction* (a Galaxy-Nexus-class 1750 mAh pack ≈ 23.3 kJ).
pub const REFERENCE_CAPACITY_J: f64 = 23_310.0;

/// Outcome of one re-selection round, installed verbatim into the
/// routing table.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SelectionDecision {
    /// Raw (unnormalized) routing weights per unit. Units missing from
    /// the list route nothing.
    pub weights: Vec<(UnitId, f64)>,
    /// The active set. Units outside it receive only probe traffic.
    pub selected: Vec<UnitId>,
    /// Whether the selected set's summed service rate covers the demand.
    pub satisfied: bool,
}

impl SelectionDecision {
    /// Select every worker, weighted by its service rate.
    #[must_use]
    pub fn all_by_rate(vitals: &[WorkerVitals]) -> Self {
        let weights: Vec<(UnitId, f64)> =
            vitals.iter().map(|v| (v.unit, v.rate_per_sec())).collect();
        let selected = vitals.iter().map(|v| v.unit).collect();
        SelectionDecision {
            weights,
            selected,
            satisfied: true,
        }
    }
}

/// A pluggable worker-selection policy.
///
/// Implementations receive the full vitals snapshot each control period
/// and decide which downstreams stay active and with what weights. The
/// contract mirrors the paper's two-step algorithm: *Worker Selection*
/// (the `selected` set) and *Data Routing* (the `weights`).
///
/// Rules of engagement:
///
/// * `select` must be **deterministic**: the same `(vitals, lambda)`
///   snapshot must produce the same decision, or seeded replays diverge.
/// * `lambda` arrives pre-multiplied by the router's configured headroom.
/// * Returning units absent from `vitals` is harmless (the routing table
///   ignores them); returning an empty decision re-selects everything at
///   equal weight.
/// * Policies are owned by a single router; `&mut self` may cache state
///   across rounds (hysteresis, EWMA of vitals, ...).
pub trait SelectionPolicy: Send + Sync + std::fmt::Debug {
    /// Decide the active set and routing weights for one control period.
    fn select(&mut self, vitals: &[WorkerVitals], lambda: f64) -> SelectionDecision;

    /// Which delay estimate fills [`WorkerVitals::latency_us`].
    fn metric(&self) -> Metric {
        Metric::Latency
    }

    /// `true` for pure round-robin policies: the router bypasses
    /// `select` entirely and deals tuples in turn.
    fn round_robin(&self) -> bool {
        false
    }

    /// Display name used in figures and telemetry labels.
    fn name(&self) -> &'static str;
}

/// Round-robin (the paper's `RR` baseline): every downstream in turn.
#[derive(Debug, Clone, Copy, Default)]
pub struct RoundRobin;

impl SelectionPolicy for RoundRobin {
    fn select(&mut self, vitals: &[WorkerVitals], _lambda: f64) -> SelectionDecision {
        let selected: Vec<UnitId> = vitals.iter().map(|v| v.unit).collect();
        let weights = selected.iter().map(|&u| (u, 1.0)).collect();
        SelectionDecision {
            weights,
            selected,
            satisfied: true,
        }
    }

    fn round_robin(&self) -> bool {
        true
    }

    fn name(&self) -> &'static str {
        "RR"
    }
}

/// Delay-proportional routing without selection (the paper's `PR`/`LR`):
/// every worker active, weights `1/delay` under the chosen metric.
#[derive(Debug, Clone, Copy)]
pub struct DelayRatio {
    metric: Metric,
}

impl DelayRatio {
    /// `LR` (latency metric) or `PR` (processing metric).
    #[must_use]
    pub fn new(metric: Metric) -> Self {
        DelayRatio { metric }
    }
}

impl SelectionPolicy for DelayRatio {
    fn select(&mut self, vitals: &[WorkerVitals], _lambda: f64) -> SelectionDecision {
        SelectionDecision::all_by_rate(vitals)
    }

    fn metric(&self) -> Metric {
        self.metric
    }

    fn name(&self) -> &'static str {
        match self.metric {
            Metric::Latency => "LR",
            Metric::Processing => "PR",
        }
    }
}

/// Delay-proportional routing *with* Worker Selection (the paper's
/// `PRS`/`LRS`): the minimum prefix of fastest workers covering `Λ`.
#[derive(Debug, Clone, Copy)]
pub struct DelaySelection {
    metric: Metric,
}

impl DelaySelection {
    /// `LRS` (latency metric) or `PRS` (processing metric).
    #[must_use]
    pub fn new(metric: Metric) -> Self {
        DelaySelection { metric }
    }
}

impl SelectionPolicy for DelaySelection {
    fn select(&mut self, vitals: &[WorkerVitals], lambda: f64) -> SelectionDecision {
        let rates: Vec<(UnitId, f64)> = vitals.iter().map(|v| (v.unit, v.rate_per_sec())).collect();
        let sel = select_workers(&rates, lambda);
        let weights = rates
            .iter()
            .filter(|(u, _)| sel.selected.contains(u))
            .copied()
            .collect();
        SelectionDecision {
            weights,
            selected: sel.selected,
            satisfied: sel.satisfied,
        }
    }

    fn metric(&self) -> Metric {
        self.metric
    }

    fn name(&self) -> &'static str {
        match self.metric {
            Metric::Latency => "LRS",
            Metric::Processing => "PRS",
        }
    }
}

/// Lifetime horizon (seconds) below which [`EnergyWeightedLrs`] starts
/// discounting a worker: half an hour of projected runtime counts as
/// "healthy enough", matching the paper's ~2 h full-battery estimate
/// with margin for the swarm to re-form.
pub const LIFETIME_HORIZON_S: f64 = 1_800.0;

/// Energy-weighted LRS: classic `1/L_i` weights scaled by projected
/// lifetime, so a fast-but-dying worker sheds load *gradually* instead
/// of dragging the swarm over its battery cliff.
///
/// The lifetime factor is `min(1, lifetime_s / LIFETIME_HORIZON_S)`;
/// workers with full or infinite batteries keep factor 1, which makes
/// this policy degenerate to exact LRS on a mains-powered swarm.
#[derive(Debug, Clone, Copy, Default)]
pub struct EnergyWeightedLrs;

impl EnergyWeightedLrs {
    /// The lifetime discount applied to a worker's service rate.
    #[must_use]
    pub fn lifetime_factor(v: &WorkerVitals) -> f64 {
        let life = v.lifetime_s();
        if life.is_infinite() {
            1.0
        } else {
            (life / LIFETIME_HORIZON_S).clamp(0.0, 1.0)
        }
    }
}

impl SelectionPolicy for EnergyWeightedLrs {
    fn select(&mut self, vitals: &[WorkerVitals], lambda: f64) -> SelectionDecision {
        let effective: Vec<(UnitId, f64)> = vitals
            .iter()
            .map(|v| (v.unit, v.rate_per_sec() * Self::lifetime_factor(v)))
            .collect();
        let sel = select_workers(&effective, lambda);
        let weights = effective
            .iter()
            .filter(|(u, _)| sel.selected.contains(u))
            .copied()
            .collect();
        SelectionDecision {
            weights,
            selected: sel.selected,
            satisfied: sel.satisfied,
        }
    }

    fn name(&self) -> &'static str {
        "ELRS"
    }
}

/// Correlated-source subset selection (Robot Subset Selection): when
/// sources are redundant, *which* subset covers the demand is a free
/// choice — spend it on battery health. Workers are ranked by remaining
/// charge first and speed second; the minimum prefix covering `Λ` is
/// selected and weighted by service rate.
#[derive(Debug, Clone, Copy, Default)]
pub struct CorrelatedSubset;

impl SelectionPolicy for CorrelatedSubset {
    fn select(&mut self, vitals: &[WorkerVitals], lambda: f64) -> SelectionDecision {
        let mut ranked: Vec<&WorkerVitals> = vitals.iter().collect();
        // Healthiest battery first; speed breaks charge ties; id breaks
        // exact ties so the outcome is deterministic.
        ranked.sort_by(|a, b| {
            b.battery_frac
                .partial_cmp(&a.battery_frac)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(
                    b.rate_per_sec()
                        .partial_cmp(&a.rate_per_sec())
                        .unwrap_or(std::cmp::Ordering::Equal),
                )
                .then(a.unit.cmp(&b.unit))
        });

        let mut selected = Vec::new();
        let mut weights = Vec::new();
        let mut sum = 0.0;
        let mut satisfied = false;
        for v in &ranked {
            selected.push(v.unit);
            weights.push((v.unit, v.rate_per_sec()));
            sum += v.rate_per_sec().max(0.0);
            if lambda <= 0.0 || sum >= lambda {
                satisfied = true;
                break;
            }
        }
        SelectionDecision {
            weights,
            selected,
            satisfied,
        }
    }

    fn name(&self) -> &'static str {
        "RSS"
    }
}

/// Battery fraction below which [`CrowdioResched`] treats a worker as
/// departing and starts draining its share of the load.
pub const CROWDIO_DYING_FRAC: f64 = 0.15;

/// CROWDio-style proactive rescheduling: run LRS over the *healthy*
/// workers, and admit dying ones (battery below
/// [`CROWDIO_DYING_FRAC`]) only when healthy capacity alone cannot cover
/// the demand — and then at a weight that shrinks with their remaining
/// charge, so their queues drain before the cliff empties them onto the
/// floor.
#[derive(Debug, Clone, Copy, Default)]
pub struct CrowdioResched;

impl SelectionPolicy for CrowdioResched {
    fn select(&mut self, vitals: &[WorkerVitals], lambda: f64) -> SelectionDecision {
        let healthy: Vec<(UnitId, f64)> = vitals
            .iter()
            .filter(|v| v.battery_frac > CROWDIO_DYING_FRAC)
            .map(|v| (v.unit, v.rate_per_sec()))
            .collect();

        if !healthy.is_empty() {
            let sel = select_workers(&healthy, lambda);
            if sel.satisfied {
                let weights = healthy
                    .iter()
                    .filter(|(u, _)| sel.selected.contains(u))
                    .copied()
                    .collect();
                return SelectionDecision {
                    weights,
                    selected: sel.selected,
                    satisfied: true,
                };
            }
        }

        // Healthy capacity falls short: keep every healthy worker and
        // top up with dying ones, fastest first, de-weighted by their
        // remaining charge so traffic tapers off as they approach empty.
        let mut selected: Vec<UnitId> = healthy.iter().map(|&(u, _)| u).collect();
        let mut weights: Vec<(UnitId, f64)> = healthy.clone();
        let mut sum: f64 = healthy.iter().map(|&(_, r)| r.max(0.0)).sum();

        let mut dying: Vec<&WorkerVitals> = vitals
            .iter()
            .filter(|v| v.battery_frac <= CROWDIO_DYING_FRAC)
            .collect();
        dying.sort_by(|a, b| {
            b.rate_per_sec()
                .partial_cmp(&a.rate_per_sec())
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.unit.cmp(&b.unit))
        });

        let mut satisfied = lambda > 0.0 && sum >= lambda;
        for v in &dying {
            if satisfied {
                break;
            }
            selected.push(v.unit);
            let taper = (v.battery_frac / CROWDIO_DYING_FRAC).clamp(0.0, 1.0);
            weights.push((v.unit, v.rate_per_sec() * taper));
            sum += v.rate_per_sec().max(0.0);
            satisfied = sum >= lambda;
        }
        SelectionDecision {
            weights,
            selected,
            satisfied,
        }
    }

    fn name(&self) -> &'static str {
        "CROWDIO"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u(i: u32) -> UnitId {
        UnitId(i)
    }

    fn v(i: u32, latency_us: f64, battery: f64, drain: f64) -> WorkerVitals {
        WorkerVitals {
            unit: u(i),
            latency_us,
            battery_frac: battery,
            drain_w: drain,
            rssi_dbm: -55.0,
        }
    }

    #[test]
    fn delay_selection_matches_select_workers() {
        let vitals = vec![
            v(1, 50_000.0, 1.0, 0.0),  // 20/s
            v(2, 50_000.0, 1.0, 0.0),  // 20/s
            v(3, 500_000.0, 1.0, 0.0), // 2/s
        ];
        let mut p = DelaySelection::new(Metric::Latency);
        let d = p.select(&vitals, 24.0);
        assert_eq!(d.selected, vec![u(1), u(2)]);
        assert!(d.satisfied);
        assert_eq!(d.weights.len(), 2);
    }

    #[test]
    fn energy_lrs_degenerates_on_full_batteries() {
        let vitals = vec![
            v(1, 40_000.0, 1.0, 3.0),
            v(2, 60_000.0, 1.0, 2.0),
            v(3, 300_000.0, 1.0, 1.0),
        ];
        let mut lrs = DelaySelection::new(Metric::Latency);
        let mut elrs = EnergyWeightedLrs;
        assert_eq!(lrs.select(&vitals, 30.0), elrs.select(&vitals, 30.0));
    }

    #[test]
    fn energy_lrs_discounts_a_dying_worker() {
        // Unit 1 is fastest but minutes from empty; with demand coverable
        // by the others, it must drop out of the selection.
        let vitals = vec![
            v(1, 40_000.0, 0.02, 4.0), // ~117 s left -> factor ~0.065
            v(2, 50_000.0, 0.9, 2.0),
            v(3, 55_000.0, 0.9, 2.0),
        ];
        let mut elrs = EnergyWeightedLrs;
        let d = elrs.select(&vitals, 30.0);
        assert!(!d.selected.contains(&u(1)), "dying unit stayed selected");
        assert!(d.satisfied);
    }

    #[test]
    fn lifetime_factor_clamps_to_one() {
        let healthy = v(1, 50_000.0, 1.0, 5.0);
        assert_eq!(EnergyWeightedLrs::lifetime_factor(&healthy), 1.0);
        let dying = v(2, 50_000.0, 0.01, 5.0);
        assert!(EnergyWeightedLrs::lifetime_factor(&dying) < 0.1);
    }

    #[test]
    fn correlated_subset_prefers_healthy_batteries() {
        // Both pairs cover the demand; RSS must pick the charged pair.
        let vitals = vec![
            v(1, 50_000.0, 0.2, 2.0),
            v(2, 50_000.0, 0.95, 2.0),
            v(3, 50_000.0, 0.9, 2.0),
            v(4, 50_000.0, 0.1, 2.0),
        ];
        let mut rss = CorrelatedSubset;
        let d = rss.select(&vitals, 30.0);
        assert_eq!(d.selected, vec![u(2), u(3)]);
        assert!(d.satisfied);
    }

    #[test]
    fn correlated_subset_selects_all_when_short() {
        let vitals = vec![v(1, 500_000.0, 0.5, 2.0), v(2, 500_000.0, 0.4, 2.0)];
        let mut rss = CorrelatedSubset;
        let d = rss.select(&vitals, 24.0);
        assert_eq!(d.selected.len(), 2);
        assert!(!d.satisfied);
    }

    #[test]
    fn crowdio_drops_dying_workers_when_capacity_allows() {
        let vitals = vec![
            v(1, 40_000.0, 0.05, 3.0), // dying and fast
            v(2, 50_000.0, 0.8, 2.0),
            v(3, 50_000.0, 0.8, 2.0),
        ];
        let mut c = CrowdioResched;
        let d = c.select(&vitals, 30.0);
        assert!(!d.selected.contains(&u(1)));
        assert!(d.satisfied);
    }

    #[test]
    fn crowdio_keeps_dying_workers_at_tapered_weight_when_short() {
        let vitals = vec![
            v(1, 40_000.0, 0.05, 3.0), // dying: 25/s raw
            v(2, 100_000.0, 0.8, 2.0), // healthy: 10/s
        ];
        let mut c = CrowdioResched;
        let d = c.select(&vitals, 30.0);
        assert!(
            d.selected.contains(&u(1)),
            "capacity requires the dying unit"
        );
        let w1 = d.weights.iter().find(|(x, _)| *x == u(1)).unwrap().1;
        let raw = 1_000_000.0 / 40_000.0;
        assert!(w1 < raw * 0.5, "dying weight should be tapered, got {w1}");
    }

    #[test]
    fn decisions_are_deterministic() {
        let vitals = vec![
            v(1, 40_000.0, 0.3, 3.0),
            v(2, 60_000.0, 0.9, 1.0),
            v(3, 80_000.0, 0.05, 2.0),
        ];
        for mut p in [
            Box::new(EnergyWeightedLrs) as Box<dyn SelectionPolicy>,
            Box::new(CorrelatedSubset),
            Box::new(CrowdioResched),
            Box::new(DelaySelection::new(Metric::Latency)),
        ] {
            let a = p.select(&vitals, 24.0);
            let b = p.select(&vitals, 24.0);
            assert_eq!(a, b, "{} not deterministic", p.name());
        }
    }

    #[test]
    fn round_robin_flags_itself() {
        let mut rr = RoundRobin;
        assert!(rr.round_robin());
        let d = rr.select(&[v(1, 50_000.0, 1.0, 0.0)], 10.0);
        assert_eq!(d.selected, vec![u(1)]);
    }

    #[test]
    fn healthy_vitals_report_infinite_lifetime() {
        let h = WorkerVitals::healthy(u(9), 80_000.0);
        assert_eq!(h.battery_frac, 1.0);
        assert!(h.lifetime_s().is_infinite());
        assert!((h.rate_per_sec() - 12.5).abs() < 1e-9);
    }
}
