//! The per-upstream routing engine implementing LRS and its baselines.

use crate::config::RouterConfig;
use crate::error::{Error, Result};
use crate::estimator::LatencyEstimator;
use crate::rng::DetRng;
use crate::routing::partition::rendezvous_owner;
use crate::routing::policy::{Metric, Policy};
use crate::routing::table::RoutingTable;
use crate::routing::vitals::{SelectionPolicy, WorkerVitals};
use crate::stats::RateEstimator;
use crate::{SeqNo, UnitId};
use std::collections::BTreeMap;

/// Energy/radio vitals reported for one downstream, kept between
/// control periods. Defaults model a healthy mains-powered worker.
#[derive(Debug, Clone, Copy, PartialEq)]
struct VitalsNote {
    battery_frac: f64,
    drain_w: f64,
    rssi_dbm: f64,
}

impl Default for VitalsNote {
    fn default() -> Self {
        VitalsNote {
            battery_frac: 1.0,
            drain_w: 0.0,
            rssi_dbm: 0.0,
        }
    }
}

/// Diagnostic view of one routing-table row plus its latency statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct RouteView {
    /// Downstream instance.
    pub unit: UnitId,
    /// Normalized routing weight `p_i`.
    pub weight: f64,
    /// Whether Worker Selection kept the unit active.
    pub selected: bool,
    /// Last reported battery level, 0..=1 (1 when unreported).
    pub battery_frac: f64,
    /// Last reported power draw, watts (0 when unreported).
    pub drain_w: f64,
    /// Mean end-to-end latency estimate, milliseconds.
    pub latency_ms: f64,
    /// Mean processing delay estimate, milliseconds.
    pub processing_ms: f64,
    /// Tuples sent / acked / lost so far.
    pub sent: u64,
    /// ACKs received.
    pub acked: u64,
    /// Tuples written off as lost.
    pub lost: u64,
}

/// Snapshot of a router's state after a rebalancing round.
#[derive(Debug, Clone, PartialEq)]
pub struct RouterSnapshot {
    /// Rebalancing rounds completed.
    pub round: u64,
    /// Measured incoming tuple rate Λ (tuples/s).
    pub lambda: f64,
    /// Whether the router is currently probing in round-robin mode.
    pub probing: bool,
    /// Per-downstream rows, in table order.
    pub routes: Vec<RouteView>,
}

/// The routing engine run by each upstream function unit.
///
/// Drives the paper's two-step LRS algorithm (worker selection +
/// latency-based probabilistic routing) and the four baseline policies,
/// using [`LatencyEstimator`] for ACK-driven measurements and
/// [`RateEstimator`] for the input rate Λ. All methods take explicit
/// timestamps; the router never reads a clock.
///
/// Typical integration:
///
/// ```
/// use swing_core::routing::{Policy, Router, RouterConfig};
/// use swing_core::{SeqNo, UnitId};
///
/// let mut r = Router::new(RouterConfig::new(Policy::Lrs), 1);
/// r.add_downstream(UnitId(1), 0);
/// r.add_downstream(UnitId(2), 0);
///
/// // For each incoming tuple: pick a destination, dispatch, record.
/// let dest = r.route(10_000).unwrap();
/// r.on_send(SeqNo(0), dest, 10_000);
/// // ... transport delivers, downstream processes and ACKs ...
/// r.on_ack(SeqNo(0), 90_000, 60_000);
/// ```
#[derive(Debug)]
pub struct Router {
    config: RouterConfig,
    /// The selection policy actually consulted each control period —
    /// resolved from `config.policy`, or installed directly via
    /// [`set_selection_policy`](Self::set_selection_policy).
    policy_impl: Box<dyn SelectionPolicy>,
    table: RoutingTable,
    estimator: LatencyEstimator,
    arrivals: RateEstimator,
    rng: DetRng,
    rr_cursor: usize,
    /// Cursor for `Rebalance`-edge round-robin, separate from
    /// `rr_cursor` so probing never perturbs keyed-graph dispatch.
    rebalance_cursor: usize,
    round: u64,
    probe_remaining: u32,
    last_rebalance_us: Option<u64>,
    demand_hint: Option<f64>,
    /// Latest reported queue occupancy per downstream, 0..=1.
    occupancy: BTreeMap<UnitId, f64>,
    /// Latest reported energy/radio vitals per downstream.
    vitals: BTreeMap<UnitId, VitalsNote>,
    /// Tuples dispatched via [`route`](Self::route).
    dispatched: u64,
    /// Arrivals recorded (explicitly or by `route`'s fallback).
    arrivals_noted: u64,
}

impl Router {
    /// Create a router with the given configuration and RNG seed.
    ///
    /// The seed makes probabilistic routing reproducible; give each
    /// upstream a distinct seed in multi-router deployments.
    ///
    /// # Panics
    /// Panics if the configuration is invalid (see
    /// [`RouterConfig::validate`]).
    #[must_use]
    pub fn new(config: RouterConfig, seed: u64) -> Self {
        config.validate().expect("invalid router configuration");
        let mut estimator = LatencyEstimator::new(
            config.latency_window,
            config.initial_latency_us,
            config.loss_timeout_us,
        );
        estimator.set_pending_age_floor(config.pending_age_floor);
        estimator.set_sample_max_age(config.sample_max_age_us);
        Router {
            arrivals: RateEstimator::new(config.control_period_us),
            estimator,
            table: RoutingTable::new(),
            rng: DetRng::seed_from_u64(seed),
            rr_cursor: 0,
            rebalance_cursor: 0,
            round: 0,
            probe_remaining: 0,
            last_rebalance_us: None,
            demand_hint: None,
            occupancy: BTreeMap::new(),
            vitals: BTreeMap::new(),
            dispatched: 0,
            arrivals_noted: 0,
            policy_impl: config.policy.resolve(),
            config,
        }
    }

    /// The configured policy name this router was built with. When a
    /// custom implementation was installed via
    /// [`set_selection_policy`](Self::set_selection_policy), this still
    /// reports the original config name — use
    /// [`policy_name`](Self::policy_name) for the live label.
    #[must_use]
    pub fn policy(&self) -> Policy {
        self.config.policy
    }

    /// Display name of the selection policy actually in force.
    #[must_use]
    pub fn policy_name(&self) -> &'static str {
        self.policy_impl.name()
    }

    /// Replace the selection policy with a custom implementation — the
    /// open end of the API. Takes effect at the next rebalancing round;
    /// the routing table keeps its current weights until then.
    pub fn set_selection_policy(&mut self, policy: Box<dyn SelectionPolicy>) {
        self.policy_impl = policy;
    }

    /// The router's configuration.
    #[must_use]
    pub fn config(&self) -> &RouterConfig {
        &self.config
    }

    /// Declare a demand floor (tuples/s), e.g. the app's declared input
    /// rate. Worker selection covers `max(measured Λ, hint)`.
    pub fn set_demand_hint(&mut self, tuples_per_sec: Option<f64>) {
        self.demand_hint = tuples_per_sec;
    }

    /// Register a new downstream (device joined). It starts with an
    /// equal-share weight so it receives traffic immediately — the paper
    /// activates new devices "instantly" and rebalances within a round.
    pub fn add_downstream(&mut self, unit: UnitId, _now_us: u64) {
        self.table.add(unit);
        self.estimator.add_unit(unit);
    }

    /// Remove a downstream (device left / link broken). "The affected
    /// upstream units automatically remove the corresponding downstream
    /// from the routing tables and re-route data to other units" (§IV-C).
    ///
    /// Returns the sequence numbers of in-flight tuples addressed to the
    /// removed unit; the caller decides whether to re-send or count them
    /// as lost (the paper's prototype loses them: "13 frames are lost").
    pub fn remove_downstream(&mut self, unit: UnitId) -> Vec<SeqNo> {
        self.table.remove(unit);
        self.occupancy.remove(&unit);
        self.vitals.remove(&unit);
        self.estimator.remove_unit(unit)
    }

    /// Downstream ids currently in the routing table.
    pub fn downstreams(&self) -> impl Iterator<Item = UnitId> + '_ {
        self.table.units()
    }

    /// Number of downstreams.
    #[must_use]
    pub fn downstream_len(&self) -> usize {
        self.table.len()
    }

    /// Whether the given downstream is currently selected.
    #[must_use]
    pub fn is_selected(&self, unit: UnitId) -> bool {
        self.table.selected_units().any(|u| u == unit)
    }

    /// Report a downstream's queue occupancy (0 = idle, 1 = its credit
    /// window or mailbox is full). Values are clamped to `[0, 1]`; NaN
    /// is ignored. The next rebalance scales the unit's effective delay
    /// by `1 + occupancy × occupancy_penalty` (see
    /// [`RouterConfig::occupancy_penalty`]), steering traffic away from
    /// saturated workers before their latency estimates inflate.
    pub fn note_occupancy(&mut self, unit: UnitId, occupancy: f64) {
        if occupancy.is_nan() {
            return;
        }
        self.occupancy.insert(unit, occupancy.clamp(0.0, 1.0));
    }

    /// Report a downstream's energy/radio vitals: remaining battery
    /// fraction (clamped to `[0, 1]`), current power draw in watts and
    /// Wi-Fi RSSI in dBm. The next rebalance hands them to the
    /// [`SelectionPolicy`] as part of its [`WorkerVitals`] snapshot;
    /// latency-only policies simply ignore them. NaN fields are ignored
    /// (the previous report is kept).
    pub fn note_vitals(&mut self, unit: UnitId, battery_frac: f64, drain_w: f64, rssi_dbm: f64) {
        let note = self.vitals.entry(unit).or_default();
        if !battery_frac.is_nan() {
            note.battery_frac = battery_frac.clamp(0.0, 1.0);
        }
        if !drain_w.is_nan() {
            note.drain_w = drain_w.max(0.0);
        }
        if !rssi_dbm.is_nan() {
            note.rssi_dbm = rssi_dbm;
        }
    }

    /// Record that a tuple arrived at this upstream unit.
    ///
    /// Feeds the input-rate estimate `Λ` that Worker Selection covers.
    /// Call this when the tuple *enters* the unit (is sensed or received
    /// from upstream), not when it is dispatched — dispatch may be
    /// throttled by a congested network, and selection must still target
    /// the true offered load.
    pub fn note_arrival(&mut self, now_us: u64) {
        self.arrivals_noted += 1;
        self.arrivals.record(now_us);
    }

    /// Pick the destination for the next tuple to dispatch.
    ///
    /// Runs a rebalancing round if the control period has elapsed, then
    /// routes: round-robin while probing or under the RR policy,
    /// weighted-random otherwise. Callers should have fed the offered
    /// load via [`note_arrival`](Self::note_arrival); as a convenience
    /// for simple single-stage callers, `route` also counts one arrival
    /// when none has been recorded for this tuple yet — detected by the
    /// arrival counter lagging the dispatch counter.
    pub fn route(&mut self, now_us: u64) -> Result<UnitId> {
        if self.table.is_empty() {
            return Err(Error::NoDownstreams);
        }
        self.note_dispatch(now_us);

        let round_robin = self.policy_impl.round_robin() || self.probe_remaining > 0;
        if round_robin {
            if self.probe_remaining > 0 {
                self.probe_remaining -= 1;
            }
            let units: Vec<UnitId> = self.table.units().collect();
            let dest = units[self.rr_cursor % units.len()];
            self.rr_cursor = (self.rr_cursor + 1) % units.len();
            Ok(dest)
        } else {
            self.table.sample(&mut self.rng)
        }
    }

    /// Pick the destination for a tuple on a
    /// [`KeyBy`](crate::graph::EdgeKind::KeyBy) edge: the live
    /// downstream that owns `key_hash` under rendezvous hashing (see
    /// [`partition`](crate::routing::partition)).
    ///
    /// Shares [`route`](Self::route)'s arrival and rebalance
    /// bookkeeping so Λ estimates and snapshots stay meaningful, but
    /// draws nothing from the RNG and ignores Worker Selection: key
    /// affinity — not latency — decides the destination, and *every*
    /// live instance (selected or not) owns its share of keys.
    pub fn route_key(&mut self, key_hash: u64, now_us: u64) -> Result<UnitId> {
        if self.table.is_empty() {
            return Err(Error::NoDownstreams);
        }
        self.note_dispatch(now_us);
        rendezvous_owner(key_hash, self.table.units()).ok_or(Error::NoDownstreams)
    }

    /// Pick the destination for a tuple on a
    /// [`Rebalance`](crate::graph::EdgeKind::Rebalance) edge:
    /// deterministic round-robin over all live downstreams, with a
    /// cursor independent from LRS probing so replays are byte-stable.
    pub fn route_rebalance(&mut self, now_us: u64) -> Result<UnitId> {
        if self.table.is_empty() {
            return Err(Error::NoDownstreams);
        }
        self.note_dispatch(now_us);
        let units: Vec<UnitId> = self.table.units().collect();
        let dest = units[self.rebalance_cursor % units.len()];
        self.rebalance_cursor = (self.rebalance_cursor + 1) % units.len();
        Ok(dest)
    }

    /// Dispatch-side bookkeeping shared by every `route*` flavour:
    /// count the dispatch, backfill a missing arrival sample, and run a
    /// rebalancing round when the control period has elapsed.
    fn note_dispatch(&mut self, now_us: u64) {
        self.dispatched += 1;
        if self.arrivals_noted < self.dispatched {
            self.arrivals_noted = self.dispatched;
            self.arrivals.record(now_us);
        }
        self.maybe_rebalance(now_us);
    }

    /// Record that `seq` was dispatched to `unit` at `now_us`.
    pub fn on_send(&mut self, seq: SeqNo, unit: UnitId, now_us: u64) {
        self.estimator.on_send(seq, unit, now_us);
    }

    /// Process a downstream ACK. Returns the latency sample (µs) if the
    /// tuple was known.
    pub fn on_ack(&mut self, seq: SeqNo, now_us: u64, processing_us: u64) -> Option<u64> {
        self.estimator.on_ack(seq, now_us, processing_us)
    }

    /// Current end-to-end latency estimate `L_i` for a downstream, in
    /// microseconds — the same figure LRS weights by, including the
    /// pending-age floor. `None` if the unit is not tracked. The
    /// runtime's retransmission layer derives ACK deadlines from this.
    #[must_use]
    pub fn latency_estimate_us(&mut self, unit: UnitId, now_us: u64) -> Option<f64> {
        self.estimator.view(unit, now_us).map(|v| v.latency_us)
    }

    /// Whether the router is currently probing (round-robin) to refresh
    /// latency estimates of unselected downstreams.
    #[must_use]
    pub fn probing(&self) -> bool {
        self.probe_remaining > 0
    }

    /// Rebalancing rounds completed so far.
    #[must_use]
    pub fn rounds(&self) -> u64 {
        self.round
    }

    fn maybe_rebalance(&mut self, now_us: u64) {
        match self.last_rebalance_us {
            None => {
                // First tuple: anchor the control period without stats.
                self.last_rebalance_us = Some(now_us);
            }
            Some(last) if now_us.saturating_sub(last) >= self.config.control_period_us => {
                self.rebalance(now_us);
                self.last_rebalance_us = Some(now_us);
            }
            _ => {}
        }
    }

    /// Run one rebalancing round immediately (normally triggered by
    /// [`route`](Self::route) once per control period).
    pub fn rebalance(&mut self, now_us: u64) {
        self.round += 1;
        let lost = self.estimator.prune_lost(now_us);
        let _ = lost;

        let measured = self.arrivals.rate_per_sec(now_us);
        let lambda = match self.demand_hint {
            Some(hint) => measured.max(hint),
            None => measured,
        };

        if self.policy_impl.round_robin() {
            self.table.equalize();
            return;
        }

        let metric = self.policy_impl.metric();

        // Gather vitals for every downstream in the table. A positive
        // occupancy_penalty inflates the effective delay of workers with
        // full credit windows, de-weighting them ahead of the (laggier)
        // latency signal. Energy fields come from the latest
        // `note_vitals` report; unreported workers count as healthy.
        let penalty = self.config.occupancy_penalty;
        let vitals: Vec<WorkerVitals> = self
            .table
            .units()
            .filter_map(|u| self.estimator.view(u, now_us))
            .map(|v| {
                let d = match metric {
                    Metric::Latency => v.latency_us,
                    Metric::Processing => v.processing_us,
                };
                let occ = if penalty > 0.0 {
                    self.occupancy.get(&v.unit).copied().unwrap_or(0.0)
                } else {
                    0.0
                };
                let note = self.vitals.get(&v.unit).copied().unwrap_or_default();
                WorkerVitals {
                    unit: v.unit,
                    latency_us: d.max(1.0) * (1.0 + occ * penalty),
                    battery_frac: note.battery_frac,
                    drain_w: note.drain_w,
                    rssi_dbm: note.rssi_dbm,
                }
            })
            .collect();
        if vitals.is_empty() {
            return;
        }

        let decision = self
            .policy_impl
            .select(&vitals, lambda * self.config.headroom);
        self.table.install(&decision.weights, &decision.selected);

        // Periodic probing keeps estimates of unselected units fresh
        // (§V-B). Only needed when selection starved some units.
        if self
            .round
            .is_multiple_of(u64::from(self.config.probe_every_rounds))
            && self.table.selected_len() < self.table.len()
        {
            self.probe_remaining = self.config.probe_tuples_per_unit * self.table.len() as u32;
        }
    }

    /// Diagnostic snapshot of the router state.
    #[must_use]
    pub fn snapshot(&mut self, now_us: u64) -> RouterSnapshot {
        let lambda = self.arrivals.rate_per_sec(now_us);
        let routes = self
            .table
            .entries()
            .iter()
            .map(|e| {
                let v = self.estimator.view(e.unit, now_us);
                let (latency_ms, processing_ms, sent, acked, lost) = match v {
                    Some(v) => (
                        v.latency_us / 1_000.0,
                        v.processing_us / 1_000.0,
                        v.sent,
                        v.acked,
                        v.lost,
                    ),
                    None => (0.0, 0.0, 0, 0, 0),
                };
                let note = self.vitals.get(&e.unit).copied().unwrap_or_default();
                RouteView {
                    unit: e.unit,
                    weight: e.weight,
                    selected: e.selected,
                    battery_frac: note.battery_frac,
                    drain_w: note.drain_w,
                    latency_ms,
                    processing_ms,
                    sent,
                    acked,
                    lost,
                }
            })
            .collect();
        RouterSnapshot {
            round: self.round,
            lambda,
            probing: self.probe_remaining > 0,
            routes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SECOND_US;

    fn u(i: u32) -> UnitId {
        UnitId(i)
    }

    /// Drive `router` with `n` tuples at `rate` FPS starting at `start`,
    /// acking each tuple with the given per-unit latency function.
    fn drive(
        router: &mut Router,
        n: u64,
        rate: f64,
        start: u64,
        latency_us: impl Fn(UnitId) -> u64,
    ) -> std::collections::BTreeMap<UnitId, u64> {
        let mut counts = std::collections::BTreeMap::new();
        let gap = (1_000_000.0 / rate) as u64;
        for i in 0..n {
            let now = start + i * gap;
            let dest = router.route(now).unwrap();
            *counts.entry(dest).or_insert(0) += 1;
            router.on_send(SeqNo(i), dest, now);
            let lat = latency_us(dest);
            router.on_ack(SeqNo(i), now + lat, lat / 2);
        }
        counts
    }

    #[test]
    fn empty_router_errors() {
        let mut r = Router::new(RouterConfig::new(Policy::Lrs), 0);
        assert_eq!(r.route(0).unwrap_err(), Error::NoDownstreams);
    }

    #[test]
    fn rr_cycles_evenly() {
        let mut r = Router::new(RouterConfig::new(Policy::Rr), 0);
        for i in 1..=3 {
            r.add_downstream(u(i), 0);
        }
        let counts = drive(&mut r, 300, 24.0, 0, |_| 10_000);
        for i in 1..=3 {
            assert_eq!(counts[&u(i)], 100);
        }
    }

    #[test]
    fn lr_weights_follow_inverse_latency() {
        let mut r = Router::new(RouterConfig::new(Policy::Lr), 1);
        r.add_downstream(u(1), 0);
        r.add_downstream(u(2), 0);
        // Unit 1 is 4x faster than unit 2.
        let counts = drive(&mut r, 4_000, 100.0, 0, |d| {
            if d == u(1) {
                25_000
            } else {
                100_000
            }
        });
        let c1 = counts[&u(1)] as f64;
        let c2 = counts[&u(2)] as f64;
        let ratio = c1 / c2;
        assert!(
            ratio > 2.5 && ratio < 6.0,
            "expected ~4x more tuples to the fast unit, ratio={ratio}"
        );
    }

    #[test]
    fn lrs_selects_minimum_fast_set() {
        let mut cfg = RouterConfig::new(Policy::Lrs);
        cfg.probe_every_rounds = 1_000; // keep probes out of this test
        let mut r = Router::new(cfg, 2);
        // Fast pair covers 24 FPS on its own: 20 + 20 > 24.
        r.add_downstream(u(1), 0); // 50 ms  -> 20/s
        r.add_downstream(u(2), 0); // 50 ms  -> 20/s
        r.add_downstream(u(3), 0); // 500 ms -> 2/s (straggler)
        let counts = drive(&mut r, 240, 24.0, 0, |d| match d {
            d if d == u(3) => 500_000,
            _ => 50_000,
        });
        // After the first rebalance the straggler is deselected.
        assert!(r.is_selected(u(1)));
        assert!(r.is_selected(u(2)));
        assert!(!r.is_selected(u(3)));
        // The straggler only saw traffic before the first rebalance.
        assert!(counts.get(&u(3)).copied().unwrap_or(0) < 40);
    }

    #[test]
    fn lrs_selects_all_when_capacity_short() {
        let mut r = Router::new(RouterConfig::new(Policy::Lrs), 3);
        r.add_downstream(u(1), 0); // 200 ms -> 5/s
        r.add_downstream(u(2), 0); // 250 ms -> 4/s
        drive(&mut r, 240, 24.0, 0, |d| {
            if d == u(1) {
                200_000
            } else {
                250_000
            }
        });
        // 9 tuples/s of capacity < 24 demanded: everything stays selected.
        assert!(r.is_selected(u(1)));
        assert!(r.is_selected(u(2)));
    }

    #[test]
    fn probing_revisits_unselected_units() {
        let mut cfg = RouterConfig::new(Policy::Lrs);
        cfg.probe_every_rounds = 2;
        cfg.probe_tuples_per_unit = 1;
        let mut r = Router::new(cfg, 4);
        r.add_downstream(u(1), 0); // fast
        r.add_downstream(u(2), 0); // fast
        r.add_downstream(u(3), 0); // straggler
        let counts = drive(&mut r, 24 * 20, 24.0, 0, |d| match d {
            d if d == u(3) => 800_000,
            _ => 40_000,
        });
        // 20 seconds -> ~20 rounds -> ~10 probe windows; the straggler
        // keeps receiving occasional probe tuples after deselection.
        let straggler = counts.get(&u(3)).copied().unwrap_or(0);
        assert!(
            straggler >= 8,
            "straggler should receive probe traffic, got {straggler}"
        );
        assert!(!r.is_selected(u(3)));
    }

    #[test]
    fn pr_uses_processing_delay_not_latency() {
        let mut r = Router::new(RouterConfig::new(Policy::Pr), 5);
        r.add_downstream(u(1), 0);
        r.add_downstream(u(2), 0);
        // Unit 1: terrible total latency but tiny processing delay
        // (a fast device on a bad link). PR must still prefer it.
        let gap = SECOND_US / 100;
        for i in 0..4_000u64 {
            let now = i * gap;
            let dest = r.route(now).unwrap();
            r.on_send(SeqNo(i), dest, now);
            let (lat, proc) = if dest == u(1) {
                (400_000, 10_000)
            } else {
                (60_000, 50_000)
            };
            r.on_ack(SeqNo(i), now + lat, proc);
        }
        let snap = r.snapshot(4_000 * gap);
        let w1 = snap.routes.iter().find(|v| v.unit == u(1)).unwrap().weight;
        let w2 = snap.routes.iter().find(|v| v.unit == u(2)).unwrap().weight;
        assert!(
            w1 > w2 * 2.0,
            "PR should weight the low-processing-delay unit higher: w1={w1} w2={w2}"
        );
    }

    #[test]
    fn join_gets_traffic_immediately() {
        let mut r = Router::new(RouterConfig::new(Policy::Lrs), 6);
        r.add_downstream(u(1), 0);
        drive(&mut r, 48, 24.0, 0, |_| 40_000);
        r.add_downstream(u(2), 2 * SECOND_US);
        // Route a handful of tuples; the newcomer must receive some
        // before any measurement exists.
        let mut got = 0;
        for i in 0..20u64 {
            let now = 2 * SECOND_US + i * 10_000;
            if r.route(now).unwrap() == u(2) {
                got += 1;
            }
        }
        assert!(got > 0, "newly joined unit received no traffic");
    }

    #[test]
    fn leave_reroutes_and_reports_orphans() {
        let mut r = Router::new(RouterConfig::new(Policy::Lrs), 7);
        r.add_downstream(u(1), 0);
        r.add_downstream(u(2), 0);
        // Send two tuples to each unit without acking.
        let mut orphan_candidates = Vec::new();
        for i in 0..8u64 {
            let dest = r.route(i * 1_000).unwrap();
            r.on_send(SeqNo(i), dest, i * 1_000);
            if dest == u(2) {
                orphan_candidates.push(SeqNo(i));
            }
        }
        let orphans = r.remove_downstream(u(2));
        assert_eq!(orphans, orphan_candidates);
        // All future traffic goes to the survivor.
        for i in 100..120u64 {
            assert_eq!(r.route(i * 1_000).unwrap(), u(1));
        }
    }

    #[test]
    fn demand_hint_raises_selection_target() {
        let mut cfg = RouterConfig::new(Policy::Lrs);
        cfg.probe_every_rounds = 1_000;
        let mut r = Router::new(cfg, 8);
        r.add_downstream(u(1), 0); // 20/s
        r.add_downstream(u(2), 0); // 20/s
        r.add_downstream(u(3), 0); // 18/s
        r.set_demand_hint(Some(50.0));
        // Offered rate is only 10 FPS, but the hint demands 50/s coverage,
        // so all three units stay selected.
        drive(&mut r, 100, 10.0, 0, |d| match d {
            d if d == u(1) || d == u(2) => 50_000,
            _ => 55_000,
        });
        assert_eq!(
            [u(1), u(2), u(3)]
                .iter()
                .filter(|&&x| r.is_selected(x))
                .count(),
            3
        );
    }

    #[test]
    fn snapshot_reports_counts() {
        let mut r = Router::new(RouterConfig::new(Policy::Lrs), 9);
        r.add_downstream(u(1), 0);
        drive(&mut r, 10, 24.0, 0, |_| 30_000);
        let snap = r.snapshot(SECOND_US);
        assert_eq!(snap.routes.len(), 1);
        assert_eq!(snap.routes[0].sent, 10);
        assert_eq!(snap.routes[0].acked, 10);
        assert_eq!(snap.routes[0].lost, 0);
        assert!(snap.routes[0].latency_ms > 0.0);
    }

    #[test]
    fn latency_estimate_follows_acks_and_pending_age() {
        let mut r = Router::new(RouterConfig::new(Policy::Lrs), 10);
        assert_eq!(r.latency_estimate_us(u(1), 0), None);
        r.add_downstream(u(1), 0);
        // Unmeasured: the optimistic initial estimate.
        assert_eq!(r.latency_estimate_us(u(1), 0), Some(100_000.0));
        r.on_send(SeqNo(0), u(1), 0);
        r.on_ack(SeqNo(0), 30_000, 10_000);
        assert_eq!(r.latency_estimate_us(u(1), 30_000), Some(30_000.0));
        // A stuck in-flight tuple floors the estimate by its age.
        r.on_send(SeqNo(1), u(1), 30_000);
        assert_eq!(
            r.latency_estimate_us(u(1), 530_000),
            Some(500_000.0),
            "pending-age floor should dominate the 30 ms average"
        );
    }

    #[test]
    fn occupancy_penalty_deweights_saturated_workers() {
        let mut cfg = RouterConfig::new(Policy::Lr);
        cfg.occupancy_penalty = 4.0;
        let mut r = Router::new(cfg, 11);
        r.add_downstream(u(1), 0);
        r.add_downstream(u(2), 0);
        // Identical measured latency, but unit 2 reports a full queue.
        for i in 0..100u64 {
            let now = i * 10_000;
            let dest = r.route(now).unwrap();
            r.on_send(SeqNo(i), dest, now);
            r.on_ack(SeqNo(i), now + 40_000, 20_000);
        }
        r.note_occupancy(u(2), 1.0);
        r.rebalance(2 * SECOND_US);
        let snap = r.snapshot(2 * SECOND_US);
        let w1 = snap.routes.iter().find(|v| v.unit == u(1)).unwrap().weight;
        let w2 = snap.routes.iter().find(|v| v.unit == u(2)).unwrap().weight;
        // Effective delay of unit 2 is 5x, so weight should be ~1/5th.
        assert!(
            w1 > w2 * 3.0,
            "occupancy feedback should de-weight the saturated unit: w1={w1} w2={w2}"
        );
        // Without the penalty, the same occupancy report changes nothing.
        let mut r2 = Router::new(RouterConfig::new(Policy::Lr), 11);
        r2.add_downstream(u(1), 0);
        r2.add_downstream(u(2), 0);
        for i in 0..100u64 {
            let now = i * 10_000;
            let dest = r2.route(now).unwrap();
            r2.on_send(SeqNo(i), dest, now);
            r2.on_ack(SeqNo(i), now + 40_000, 20_000);
        }
        r2.note_occupancy(u(2), 1.0);
        r2.rebalance(2 * SECOND_US);
        let snap = r2.snapshot(2 * SECOND_US);
        let w1 = snap.routes.iter().find(|v| v.unit == u(1)).unwrap().weight;
        let w2 = snap.routes.iter().find(|v| v.unit == u(2)).unwrap().weight;
        assert!((w1 - w2).abs() < 0.2, "penalty 0 must ignore occupancy");
    }

    #[test]
    fn occupancy_reports_clamp_and_clear_on_leave() {
        let mut cfg = RouterConfig::new(Policy::Lr);
        cfg.occupancy_penalty = 10.0;
        let mut r = Router::new(cfg, 12);
        r.add_downstream(u(1), 0);
        r.note_occupancy(u(1), 7.5); // clamped to 1.0
        r.note_occupancy(u(1), f64::NAN); // ignored, keeps 1.0
        assert_eq!(r.occupancy.get(&u(1)), Some(&1.0));
        r.remove_downstream(u(1));
        assert!(r.occupancy.is_empty());
    }

    #[test]
    fn route_key_is_sticky_and_rehomes_on_leave() {
        let mut r = Router::new(RouterConfig::new(Policy::Lrs), 13);
        for i in 1..=4 {
            r.add_downstream(u(i), 0);
        }
        // Ownership per key hash is stable across calls and time.
        let owners: Vec<UnitId> = (0..64u64)
            .map(|k| r.route_key(k.wrapping_mul(0x9E37), 0).unwrap())
            .collect();
        for (k, &owner) in owners.iter().enumerate() {
            assert_eq!(
                r.route_key((k as u64).wrapping_mul(0x9E37), SECOND_US)
                    .unwrap(),
                owner
            );
        }
        // Evicting one downstream moves only its keys.
        let dead = owners[0];
        r.remove_downstream(dead);
        for (k, &owner) in owners.iter().enumerate() {
            let now = r
                .route_key((k as u64).wrapping_mul(0x9E37), 2 * SECOND_US)
                .unwrap();
            if owner == dead {
                assert_ne!(now, dead, "dead unit still owns key {k}");
            } else {
                assert_eq!(now, owner, "survivor-owned key {k} moved");
            }
        }
    }

    #[test]
    fn route_key_ignores_worker_selection() {
        // LRS deselects the straggler, but keyed routing must still
        // deliver its keys to it: key affinity beats latency.
        let mut cfg = RouterConfig::new(Policy::Lrs);
        cfg.probe_every_rounds = 1_000;
        let mut r = Router::new(cfg, 14);
        r.add_downstream(u(1), 0);
        r.add_downstream(u(2), 0);
        r.add_downstream(u(3), 0);
        drive(&mut r, 240, 24.0, 0, |d| {
            if d == u(3) {
                500_000
            } else {
                50_000
            }
        });
        assert!(!r.is_selected(u(3)));
        let hit_straggler = (0..256u64)
            .any(|k| r.route_key(crate::routing::partition::mix64(k), 20 * SECOND_US) == Ok(u(3)));
        assert!(hit_straggler, "deselected unit received none of 256 keys");
    }

    #[test]
    fn route_rebalance_cycles_deterministically() {
        let mut r = Router::new(RouterConfig::new(Policy::Lrs), 15);
        for i in 1..=3 {
            r.add_downstream(u(i), 0);
        }
        let seq: Vec<UnitId> = (0..9u64)
            .map(|i| r.route_rebalance(i * 1_000).unwrap())
            .collect();
        let mut r2 = Router::new(RouterConfig::new(Policy::Lrs), 999);
        for i in 1..=3 {
            r2.add_downstream(u(i), 0);
        }
        let seq2: Vec<UnitId> = (0..9u64)
            .map(|i| r2.route_rebalance(i * 1_000).unwrap())
            .collect();
        assert_eq!(seq, seq2, "rebalance order must not depend on the seed");
        let mut counts = std::collections::BTreeMap::new();
        for d in seq {
            *counts.entry(d).or_insert(0u32) += 1;
        }
        assert!(
            counts.values().all(|&c| c == 3),
            "uneven rebalance: {counts:?}"
        );
    }

    #[test]
    fn keyed_routes_error_on_empty_table() {
        let mut r = Router::new(RouterConfig::new(Policy::Lrs), 16);
        assert_eq!(r.route_key(7, 0).unwrap_err(), Error::NoDownstreams);
        assert_eq!(r.route_rebalance(0).unwrap_err(), Error::NoDownstreams);
    }

    #[test]
    #[should_panic(expected = "invalid router configuration")]
    fn invalid_config_panics_on_construction() {
        let mut cfg = RouterConfig::new(Policy::Lrs);
        cfg.headroom = 0.0;
        let _ = Router::new(cfg, 0);
    }

    #[test]
    fn energy_lrs_deselects_a_dying_fast_worker() {
        let mut cfg = RouterConfig::new(Policy::EnergyLrs);
        cfg.probe_every_rounds = 1_000;
        let mut r = Router::new(cfg, 20);
        r.add_downstream(u(1), 0);
        r.add_downstream(u(2), 0);
        r.add_downstream(u(3), 0);
        // Unit 1 is fastest but nearly empty and draining hard.
        r.note_vitals(u(1), 0.02, 4.0, -55.0);
        let counts = drive(&mut r, 480, 24.0, 0, |d| {
            if d == u(1) {
                40_000
            } else {
                60_000
            }
        });
        assert!(!r.is_selected(u(1)), "dying unit must be deselected");
        assert!(r.is_selected(u(2)));
        assert!(r.is_selected(u(3)));
        // Under plain LRS the fast unit would dominate; here the healthy
        // pair carries the load after the first rebalance.
        let dying = counts.get(&u(1)).copied().unwrap_or(0);
        let healthy = counts.get(&u(2)).copied().unwrap_or(0);
        assert!(
            healthy > dying,
            "healthy worker should out-receive the dying one: {healthy} vs {dying}"
        );
    }

    #[test]
    fn vitals_default_to_healthy_and_clear_on_leave() {
        let mut r = Router::new(RouterConfig::new(Policy::EnergyLrs), 21);
        r.add_downstream(u(1), 0);
        drive(&mut r, 48, 24.0, 0, |_| 40_000);
        let snap = r.snapshot(2 * SECOND_US);
        assert_eq!(snap.routes[0].battery_frac, 1.0);
        assert_eq!(snap.routes[0].drain_w, 0.0);
        r.note_vitals(u(1), 7.0, -3.0, f64::NAN); // clamped
        r.note_vitals(u(1), f64::NAN, 2.5, -60.0); // partial update
        let snap = r.snapshot(2 * SECOND_US);
        assert_eq!(snap.routes[0].battery_frac, 1.0);
        assert_eq!(snap.routes[0].drain_w, 2.5);
        r.remove_downstream(u(1));
        assert!(r.vitals.is_empty());
    }

    #[test]
    fn custom_selection_policy_plugs_in() {
        /// Always routes everything to the lowest unit id.
        #[derive(Debug)]
        struct Favorite;
        impl crate::routing::SelectionPolicy for Favorite {
            fn select(
                &mut self,
                vitals: &[crate::routing::WorkerVitals],
                _lambda: f64,
            ) -> crate::routing::SelectionDecision {
                let min = vitals.iter().map(|v| v.unit).min();
                let selected: Vec<UnitId> = min.into_iter().collect();
                crate::routing::SelectionDecision {
                    weights: selected.iter().map(|&u| (u, 1.0)).collect(),
                    selected,
                    satisfied: true,
                }
            }
            fn name(&self) -> &'static str {
                "FAVORITE"
            }
        }

        let mut cfg = RouterConfig::new(Policy::Lrs);
        cfg.probe_every_rounds = 1_000;
        let mut r = Router::new(cfg, 22);
        r.add_downstream(u(3), 0);
        r.add_downstream(u(7), 0);
        r.set_selection_policy(Box::new(Favorite));
        assert_eq!(r.policy_name(), "FAVORITE");
        assert_eq!(r.policy(), Policy::Lrs, "config name is preserved");
        drive(&mut r, 200, 24.0, 0, |_| 40_000);
        assert!(r.is_selected(u(3)));
        assert!(!r.is_selected(u(7)));
    }

    #[test]
    fn energy_policies_match_lrs_on_healthy_swarms() {
        // With no vitals reported every worker defaults to a full
        // battery, so ELRS must route byte-identically to LRS.
        let run = |policy: Policy| {
            let mut cfg = RouterConfig::new(policy);
            cfg.probe_every_rounds = 1_000;
            let mut r = Router::new(cfg, 23);
            for i in 1..=3 {
                r.add_downstream(u(i), 0);
            }
            drive(&mut r, 300, 24.0, 0, |d| {
                if d == u(3) {
                    400_000
                } else {
                    50_000
                }
            })
        };
        assert_eq!(run(Policy::Lrs), run(Policy::EnergyLrs));
    }
}
