//! Distributed resource management: the LRS algorithm and its baselines.
//!
//! "Swing uses a distributed low complexity routing algorithm that we call
//! LRS (Latency-based Routing with worker Selection). LRS is executed at
//! each upstream function unit in the application dataflow graph using
//! information communicated periodically from its downstream function
//! units" (paper §V-A).
//!
//! The module decomposes the algorithm exactly along the paper's two key
//! design points:
//!
//! * [`selection`] — *Worker Selection*: pick the minimum set of fastest
//!   downstreams whose summed service rates cover the input rate `Λ`.
//! * [`table`] — the weighted routing table used for *Data Routing*:
//!   probabilistic routing with weights `p_i = (1/L_i) / Σ (1/L_j)`.
//! * [`Router`] — ties selection, routing and
//!   [latency estimation](crate::estimator) together and implements all
//!   five policies evaluated in the paper (§VI-B): RR, PR, LR, PRS, LRS.
//! * [`partition`] — key hashing and rendezvous ownership for
//!   [`KeyBy`](crate::graph::EdgeKind::KeyBy) edges, where the *key*
//!   (not LRS) decides the destination instance.
//! * [`vitals`] — the open [`SelectionPolicy`] trait: policies consume a
//!   per-worker [`WorkerVitals`] snapshot (latency, battery, drain,
//!   RSSI), so lifetime-aware schedulers plug in beside the paper's five.

pub mod partition;
mod policy;
mod router;
pub mod selection;
pub mod table;
pub mod vitals;

pub use crate::config::RouterConfig;
pub use partition::{rendezvous_owner, tuple_key_bytes, tuple_key_hash};
pub use policy::{Metric, Policy};
pub use router::{RouteView, Router, RouterSnapshot};
pub use table::{RouteEntry, RoutingTable};
pub use vitals::{
    CorrelatedSubset, CrowdioResched, DelayRatio, DelaySelection, EnergyWeightedLrs, RoundRobin,
    SelectionDecision, SelectionPolicy, WorkerVitals,
};
