//! The five routing policies evaluated in the paper (§VI-B).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// Which delay estimate drives the routing weights.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Metric {
    /// Total end-to-end latency `L` (network + queuing + processing).
    Latency,
    /// Processing delay `W` only, ignoring network location.
    Processing,
}

/// A data-routing policy for upstream function units.
///
/// | Policy | Weights      | Worker selection |
/// |--------|--------------|------------------|
/// | `Rr`   | equal (turns)| no               |
/// | `Pr`   | `1/W_i`      | no               |
/// | `Lr`   | `1/L_i`      | no               |
/// | `Prs`  | `1/W_i`      | yes              |
/// | `Lrs`  | `1/L_i`      | yes              |
///
/// `Lrs` is Swing's contribution; `Rr` is the default of data-center
/// stream processors (Storm, SEEP, IBM Streams) and of prior mobile
/// stream processors, making it the paper's headline baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Policy {
    /// Round-robin: each tuple to the next downstream in turn.
    Rr,
    /// Processing-delay-based routing, no worker selection.
    Pr,
    /// Latency-based routing, no worker selection.
    Lr,
    /// Processing-delay-based routing with worker selection.
    Prs,
    /// Latency-based routing with worker selection (the Swing policy).
    Lrs,
}

impl Policy {
    /// All policies, in the order the paper's figures list them.
    pub const ALL: [Policy; 5] = [Policy::Rr, Policy::Pr, Policy::Lr, Policy::Prs, Policy::Lrs];

    /// Whether this policy runs the Worker Selection step.
    #[must_use]
    pub fn uses_selection(self) -> bool {
        matches!(self, Policy::Prs | Policy::Lrs)
    }

    /// The delay metric driving the weights, or `None` for round robin.
    #[must_use]
    pub fn metric(self) -> Option<Metric> {
        match self {
            Policy::Rr => None,
            Policy::Pr | Policy::Prs => Some(Metric::Processing),
            Policy::Lr | Policy::Lrs => Some(Metric::Latency),
        }
    }

    /// Upper-case display name used in figures ("RR", "LRS", ...).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Policy::Rr => "RR",
            Policy::Pr => "PR",
            Policy::Lr => "LR",
            Policy::Prs => "PRS",
            Policy::Lrs => "LRS",
        }
    }
}

impl fmt::Display for Policy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for Policy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "rr" => Ok(Policy::Rr),
            "pr" => Ok(Policy::Pr),
            "lr" => Ok(Policy::Lr),
            "prs" => Ok(Policy::Prs),
            "lrs" => Ok(Policy::Lrs),
            other => Err(format!(
                "unknown policy `{other}` (expected one of rr, pr, lr, prs, lrs)"
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selection_flag_matches_table() {
        assert!(!Policy::Rr.uses_selection());
        assert!(!Policy::Pr.uses_selection());
        assert!(!Policy::Lr.uses_selection());
        assert!(Policy::Prs.uses_selection());
        assert!(Policy::Lrs.uses_selection());
    }

    #[test]
    fn metrics_match_table() {
        assert_eq!(Policy::Rr.metric(), None);
        assert_eq!(Policy::Pr.metric(), Some(Metric::Processing));
        assert_eq!(Policy::Prs.metric(), Some(Metric::Processing));
        assert_eq!(Policy::Lr.metric(), Some(Metric::Latency));
        assert_eq!(Policy::Lrs.metric(), Some(Metric::Latency));
    }

    #[test]
    fn parse_roundtrips_display() {
        for p in Policy::ALL {
            let parsed: Policy = p.name().parse().unwrap();
            assert_eq!(parsed, p);
            let parsed: Policy = p.name().to_lowercase().parse().unwrap();
            assert_eq!(parsed, p);
        }
        assert!("bogus".parse::<Policy>().is_err());
    }

    #[test]
    fn all_lists_five_policies_in_figure_order() {
        assert_eq!(Policy::ALL.len(), 5);
        assert_eq!(Policy::ALL[0], Policy::Rr);
        assert_eq!(Policy::ALL[4], Policy::Lrs);
    }
}
