//! The routing policies evaluated in the paper (§VI-B) plus the
//! lifetime-aware extensions, as config-deserializable names.
//!
//! [`Policy`] is a thin identifier: it serializes, parses and displays,
//! and [`resolve`](Policy::resolve)s to a boxed
//! [`SelectionPolicy`](crate::routing::SelectionPolicy) implementation
//! that the router actually consults. Custom policies skip the enum
//! entirely and hand the router an implementation directly.

use crate::routing::vitals::{
    CorrelatedSubset, CrowdioResched, DelayRatio, DelaySelection, EnergyWeightedLrs, RoundRobin,
    SelectionPolicy,
};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// Which delay estimate drives the routing weights.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Metric {
    /// Total end-to-end latency `L` (network + queuing + processing).
    Latency,
    /// Processing delay `W` only, ignoring network location.
    Processing,
}

/// A data-routing policy for upstream function units.
///
/// | Policy    | Weights             | Worker selection        |
/// |-----------|---------------------|-------------------------|
/// | `Rr`      | equal (turns)       | no                      |
/// | `Pr`      | `1/W_i`             | no                      |
/// | `Lr`      | `1/L_i`             | no                      |
/// | `Prs`     | `1/W_i`             | yes                     |
/// | `Lrs`     | `1/L_i`             | yes                     |
/// | `EnergyLrs` | `1/L_i` × lifetime | yes (lifetime-scaled)  |
/// | `Rss`     | `1/L_i`             | yes (battery-ranked)    |
/// | `Crowdio` | `1/L_i` (tapered)   | yes (drains dying)      |
///
/// `Lrs` is Swing's contribution; `Rr` is the default of data-center
/// stream processors (Storm, SEEP, IBM Streams) and of prior mobile
/// stream processors, making it the paper's headline baseline. The last
/// three go beyond the paper: they read the per-worker
/// [`WorkerVitals`](crate::routing::WorkerVitals) energy fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Policy {
    /// Round-robin: each tuple to the next downstream in turn.
    Rr,
    /// Processing-delay-based routing, no worker selection.
    Pr,
    /// Latency-based routing, no worker selection.
    Lr,
    /// Processing-delay-based routing with worker selection.
    Prs,
    /// Latency-based routing with worker selection (the Swing policy).
    Lrs,
    /// LRS with weights scaled by projected battery lifetime.
    EnergyLrs,
    /// Correlated-source subset selection: cover demand with the
    /// healthiest-battery subset (Robot Subset Selection).
    Rss,
    /// CROWDio-style rescheduling: proactively drain dying workers.
    Crowdio,
}

impl Policy {
    /// The five paper policies, in the order the paper's figures list
    /// them. Pinned to five entries — figure-reproduction sweeps index
    /// into this array.
    pub const ALL: [Policy; 5] = [Policy::Rr, Policy::Pr, Policy::Lr, Policy::Prs, Policy::Lrs];

    /// The three lifetime-aware policies added on top of the paper.
    pub const ENERGY_AWARE: [Policy; 3] = [Policy::EnergyLrs, Policy::Rss, Policy::Crowdio];

    /// Every built-in policy: the paper's five followed by the
    /// energy-aware three.
    pub const EXTENDED: [Policy; 8] = [
        Policy::Rr,
        Policy::Pr,
        Policy::Lr,
        Policy::Prs,
        Policy::Lrs,
        Policy::EnergyLrs,
        Policy::Rss,
        Policy::Crowdio,
    ];

    /// Resolve the name to its built-in [`SelectionPolicy`]
    /// implementation — the object the [`Router`](crate::routing::Router)
    /// consults every control period.
    #[must_use]
    pub fn resolve(self) -> Box<dyn SelectionPolicy> {
        match self {
            Policy::Rr => Box::new(RoundRobin),
            Policy::Pr => Box::new(DelayRatio::new(Metric::Processing)),
            Policy::Lr => Box::new(DelayRatio::new(Metric::Latency)),
            Policy::Prs => Box::new(DelaySelection::new(Metric::Processing)),
            Policy::Lrs => Box::new(DelaySelection::new(Metric::Latency)),
            Policy::EnergyLrs => Box::new(EnergyWeightedLrs),
            Policy::Rss => Box::new(CorrelatedSubset),
            Policy::Crowdio => Box::new(CrowdioResched),
        }
    }

    /// Whether this policy runs the Worker Selection step.
    #[deprecated(
        since = "0.10.0",
        note = "the Router consults the resolved SelectionPolicy; use `Policy::resolve()`"
    )]
    #[must_use]
    pub fn uses_selection(self) -> bool {
        matches!(
            self,
            Policy::Prs | Policy::Lrs | Policy::EnergyLrs | Policy::Rss | Policy::Crowdio
        )
    }

    /// The delay metric driving the weights, or `None` for round robin.
    #[deprecated(
        since = "0.10.0",
        note = "the Router consults the resolved SelectionPolicy; use `Policy::resolve()`"
    )]
    #[must_use]
    pub fn metric(self) -> Option<Metric> {
        match self {
            Policy::Rr => None,
            Policy::Pr | Policy::Prs => Some(Metric::Processing),
            _ => Some(Metric::Latency),
        }
    }

    /// Upper-case display name used in figures ("RR", "LRS", ...).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Policy::Rr => "RR",
            Policy::Pr => "PR",
            Policy::Lr => "LR",
            Policy::Prs => "PRS",
            Policy::Lrs => "LRS",
            Policy::EnergyLrs => "ELRS",
            Policy::Rss => "RSS",
            Policy::Crowdio => "CROWDIO",
        }
    }
}

impl fmt::Display for Policy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for Policy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "rr" => Ok(Policy::Rr),
            "pr" => Ok(Policy::Pr),
            "lr" => Ok(Policy::Lr),
            "prs" => Ok(Policy::Prs),
            "lrs" => Ok(Policy::Lrs),
            "elrs" | "energy-lrs" => Ok(Policy::EnergyLrs),
            "rss" => Ok(Policy::Rss),
            "crowdio" => Ok(Policy::Crowdio),
            other => Err(format!(
                "unknown policy `{other}` (expected one of rr, pr, lr, prs, lrs, \
                 elrs, rss, crowdio)"
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(deprecated)]
    fn selection_flag_matches_table() {
        assert!(!Policy::Rr.uses_selection());
        assert!(!Policy::Pr.uses_selection());
        assert!(!Policy::Lr.uses_selection());
        assert!(Policy::Prs.uses_selection());
        assert!(Policy::Lrs.uses_selection());
        assert!(Policy::EnergyLrs.uses_selection());
    }

    #[test]
    #[allow(deprecated)]
    fn metrics_match_table() {
        assert_eq!(Policy::Rr.metric(), None);
        assert_eq!(Policy::Pr.metric(), Some(Metric::Processing));
        assert_eq!(Policy::Prs.metric(), Some(Metric::Processing));
        assert_eq!(Policy::Lr.metric(), Some(Metric::Latency));
        assert_eq!(Policy::Lrs.metric(), Some(Metric::Latency));
        assert_eq!(Policy::EnergyLrs.metric(), Some(Metric::Latency));
    }

    #[test]
    fn parse_roundtrips_display() {
        for p in Policy::EXTENDED {
            let parsed: Policy = p.name().parse().unwrap();
            assert_eq!(parsed, p);
            let parsed: Policy = p.name().to_lowercase().parse().unwrap();
            assert_eq!(parsed, p);
        }
        assert!("bogus".parse::<Policy>().is_err());
    }

    #[test]
    fn all_lists_five_policies_in_figure_order() {
        assert_eq!(Policy::ALL.len(), 5);
        assert_eq!(Policy::ALL[0], Policy::Rr);
        assert_eq!(Policy::ALL[4], Policy::Lrs);
    }

    #[test]
    fn extended_starts_with_the_paper_five() {
        assert_eq!(Policy::EXTENDED.len(), 8);
        assert_eq!(&Policy::EXTENDED[..5], &Policy::ALL[..]);
        assert_eq!(Policy::ENERGY_AWARE.len(), 3);
    }

    #[test]
    fn resolve_names_match_enum_names() {
        for p in Policy::EXTENDED {
            assert_eq!(p.resolve().name(), p.name());
        }
    }

    #[test]
    fn new_variants_parse_their_aliases() {
        assert_eq!("energy-lrs".parse::<Policy>().unwrap(), Policy::EnergyLrs);
        assert_eq!("Elrs".parse::<Policy>().unwrap(), Policy::EnergyLrs);
        let err = "bogus".parse::<Policy>().unwrap_err();
        assert!(
            err.contains("crowdio"),
            "error should list new names: {err}"
        );
    }
}
