//! The Worker Selection step of LRS (paper §V-A).
//!
//! "The upstream function unit selects a subset S of its downstream
//! function units D. More specifically, it sorts function units in
//! descending order of service rates μ_i = 1/L_i and selects the minimum
//! number of function units S such that Σ μ_i ≥ Λ. [...] If the sum rate
//! constraint cannot be satisfied, all downstream function units are
//! selected."

use crate::UnitId;

/// Outcome of a worker-selection round.
#[derive(Debug, Clone, PartialEq)]
pub struct Selection {
    /// The selected downstream units (fastest first).
    pub selected: Vec<UnitId>,
    /// Whether the summed service rate of the selection covers the demand.
    /// `false` means every downstream was selected and capacity still
    /// falls short of `Λ`.
    pub satisfied: bool,
}

/// Select the minimum prefix of fastest workers covering demand `lambda`
/// (tuples per second).
///
/// `rates` holds `(unit, μ)` pairs in any order; μ is a service rate in
/// tuples per second. Ties are broken by unit id so the outcome is
/// deterministic. A non-positive `lambda` selects just the fastest worker
/// (the system still needs somewhere to route).
#[must_use]
pub fn select_workers(rates: &[(UnitId, f64)], lambda: f64) -> Selection {
    let mut sorted: Vec<(UnitId, f64)> = rates.to_vec();
    // Descending by rate, ascending by id on ties.
    sorted.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.0.cmp(&b.0))
    });

    let mut selected = Vec::new();
    let mut sum = 0.0;
    for (unit, mu) in &sorted {
        selected.push(*unit);
        sum += mu.max(0.0);
        if sum >= lambda && lambda > 0.0 {
            return Selection {
                selected,
                satisfied: true,
            };
        }
        if lambda <= 0.0 {
            // Demand unknown or zero: keep only the fastest unit.
            return Selection {
                selected,
                satisfied: true,
            };
        }
    }
    // Constraint unsatisfiable: select everything.
    Selection {
        selected,
        satisfied: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u(i: u32) -> UnitId {
        UnitId(i)
    }

    #[test]
    fn selects_minimum_prefix_of_fastest() {
        // Rates modeled on Table I throughputs (FPS).
        let rates = vec![
            (u(1), 10.0), // B
            (u(2), 8.0),  // C
            (u(3), 6.0),  // D
            (u(6), 12.0), // G
            (u(7), 13.0), // H
            (u(8), 12.0), // I
        ];
        let sel = select_workers(&rates, 24.0);
        assert!(sel.satisfied);
        // Fastest first: H(13) + G(12) = 25 >= 24 -> exactly two workers.
        assert_eq!(sel.selected, vec![u(7), u(6)]);
    }

    #[test]
    fn selects_all_when_unsatisfiable() {
        let rates = vec![(u(1), 5.0), (u(2), 4.0)];
        let sel = select_workers(&rates, 24.0);
        assert!(!sel.satisfied);
        assert_eq!(sel.selected.len(), 2);
        assert_eq!(sel.selected, vec![u(1), u(2)]); // still fastest-first
    }

    #[test]
    fn exact_boundary_is_satisfied() {
        let rates = vec![(u(1), 12.0), (u(2), 12.0), (u(3), 1.0)];
        let sel = select_workers(&rates, 24.0);
        assert!(sel.satisfied);
        assert_eq!(sel.selected, vec![u(1), u(2)]);
    }

    #[test]
    fn ties_break_by_unit_id() {
        let rates = vec![(u(9), 10.0), (u(2), 10.0), (u(5), 10.0)];
        let sel = select_workers(&rates, 15.0);
        assert_eq!(sel.selected, vec![u(2), u(5)]);
    }

    #[test]
    fn zero_demand_keeps_one_worker() {
        let rates = vec![(u(1), 3.0), (u(2), 9.0)];
        let sel = select_workers(&rates, 0.0);
        assert!(sel.satisfied);
        assert_eq!(sel.selected, vec![u(2)]);
    }

    #[test]
    fn empty_input_selects_nothing() {
        let sel = select_workers(&[], 24.0);
        assert!(sel.selected.is_empty());
        assert!(!sel.satisfied);
    }

    #[test]
    fn negative_rates_do_not_inflate_sum() {
        let rates = vec![(u(1), -5.0), (u(2), 10.0)];
        let sel = select_workers(&rates, 8.0);
        assert!(sel.satisfied);
        assert_eq!(sel.selected, vec![u(2)]);
    }
}
