//! The weighted routing table kept by every upstream function unit.
//!
//! "Each upstream thread maintains a routing table with downstream
//! threads' IDs and their weights, so that data tuples could be routed
//! accordingly" (paper §IV-C). Routing is probabilistic: "Upon arrival of
//! a data tuple, the upstream generates a weighted random number and sends
//! the tuple to the specified downstream ID" (§V-A).

use crate::error::{Error, Result};
use crate::rng::DetRng;
use crate::UnitId;
use serde::{Deserialize, Serialize};

/// One row of the routing table.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RouteEntry {
    /// Downstream function-unit instance.
    pub unit: UnitId,
    /// Normalized routing weight `p_i` (0 for unselected units).
    pub weight: f64,
    /// Whether Worker Selection kept this unit in the active set.
    pub selected: bool,
}

/// Routing table: downstream ids, normalized weights, selection flags.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RoutingTable {
    entries: Vec<RouteEntry>,
}

impl RoutingTable {
    /// Create an empty table.
    #[must_use]
    pub fn new() -> Self {
        RoutingTable::default()
    }

    /// Add a downstream with equal-share weight; no-op if present.
    /// Newly added units start selected so they receive traffic until the
    /// next rebalancing round decides otherwise.
    pub fn add(&mut self, unit: UnitId) {
        if self.contains(unit) {
            return;
        }
        self.entries.push(RouteEntry {
            unit,
            weight: 0.0,
            selected: true,
        });
        self.equalize();
    }

    /// Remove a downstream (device left / link broken). Remaining weights
    /// are re-normalized, mirroring the paper's routing-table repair on
    /// disconnection. Returns whether the unit was present.
    pub fn remove(&mut self, unit: UnitId) -> bool {
        let before = self.entries.len();
        self.entries.retain(|e| e.unit != unit);
        let removed = self.entries.len() != before;
        if removed {
            self.renormalize();
        }
        removed
    }

    /// Whether a downstream is present.
    #[must_use]
    pub fn contains(&self, unit: UnitId) -> bool {
        self.entries.iter().any(|e| e.unit == unit)
    }

    /// Number of downstreams (selected or not).
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All entries in insertion order.
    #[must_use]
    pub fn entries(&self) -> &[RouteEntry] {
        &self.entries
    }

    /// All downstream ids in insertion order.
    pub fn units(&self) -> impl Iterator<Item = UnitId> + '_ {
        self.entries.iter().map(|e| e.unit)
    }

    /// Ids of currently selected downstreams.
    pub fn selected_units(&self) -> impl Iterator<Item = UnitId> + '_ {
        self.entries.iter().filter(|e| e.selected).map(|e| e.unit)
    }

    /// Number of selected downstreams.
    #[must_use]
    pub fn selected_len(&self) -> usize {
        self.entries.iter().filter(|e| e.selected).count()
    }

    /// Install new weights from `(unit, raw_weight)` pairs and a selection
    /// set. Units absent from `weights` keep weight 0; units absent from
    /// `selected` are deselected. Weights are normalized over the selected
    /// set (`p_i = w_i / Σ_selected w_j`).
    pub fn install(&mut self, weights: &[(UnitId, f64)], selected: &[UnitId]) {
        for e in &mut self.entries {
            e.selected = selected.contains(&e.unit);
            e.weight = weights
                .iter()
                .find(|(u, _)| *u == e.unit)
                .map(|(_, w)| w.max(0.0))
                .unwrap_or(0.0);
            if !e.selected {
                e.weight = 0.0;
            }
        }
        self.renormalize();
    }

    /// Give every present unit an equal weight and select all.
    pub fn equalize(&mut self) {
        let n = self.entries.len();
        if n == 0 {
            return;
        }
        let w = 1.0 / n as f64;
        for e in &mut self.entries {
            e.weight = w;
            e.selected = true;
        }
    }

    fn renormalize(&mut self) {
        let total: f64 = self
            .entries
            .iter()
            .filter(|e| e.selected)
            .map(|e| e.weight)
            .sum();
        if total > 0.0 {
            for e in &mut self.entries {
                if e.selected {
                    e.weight /= total;
                } else {
                    e.weight = 0.0;
                }
            }
        } else {
            // Degenerate weights: fall back to equal shares over the
            // selected set (or everything if nothing is selected).
            let any_selected = self.entries.iter().any(|e| e.selected);
            let n = if any_selected {
                self.entries.iter().filter(|e| e.selected).count()
            } else {
                self.entries.len()
            };
            if n == 0 {
                return;
            }
            let w = 1.0 / n as f64;
            for e in &mut self.entries {
                if !any_selected {
                    e.selected = true;
                }
                e.weight = if e.selected { w } else { 0.0 };
            }
        }
    }

    /// Draw a destination with probability proportional to its weight
    /// ("the upstream generates a weighted random number").
    pub fn sample(&self, rng: &mut DetRng) -> Result<UnitId> {
        if self.entries.is_empty() {
            return Err(Error::NoDownstreams);
        }
        let total: f64 = self
            .entries
            .iter()
            .filter(|e| e.selected)
            .map(|e| e.weight)
            .sum();
        if total <= 0.0 {
            // No usable weights: uniform over all units.
            let idx = rng.random_range(0..self.entries.len());
            return Ok(self.entries[idx].unit);
        }
        let mut x = rng.random_range(0.0..total);
        for e in &self.entries {
            if !e.selected {
                continue;
            }
            if x < e.weight {
                return Ok(e.unit);
            }
            x -= e.weight;
        }
        // Floating-point tail: return the last selected unit.
        Ok(self
            .entries
            .iter()
            .rev()
            .find(|e| e.selected)
            .expect("total > 0 implies a selected entry")
            .unit)
    }

    /// The weight currently assigned to `unit` (0 if absent).
    #[must_use]
    pub fn weight_of(&self, unit: UnitId) -> f64 {
        self.entries
            .iter()
            .find(|e| e.unit == unit)
            .map(|e| e.weight)
            .unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::DetRng;

    fn u(i: u32) -> UnitId {
        UnitId(i)
    }

    #[test]
    fn add_equalizes_weights() {
        let mut t = RoutingTable::new();
        t.add(u(1));
        t.add(u(2));
        t.add(u(2)); // duplicate ignored
        assert_eq!(t.len(), 2);
        assert!((t.weight_of(u(1)) - 0.5).abs() < 1e-12);
        assert!((t.weight_of(u(2)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn install_normalizes_over_selected() {
        let mut t = RoutingTable::new();
        for i in 1..=3 {
            t.add(u(i));
        }
        t.install(&[(u(1), 2.0), (u(2), 2.0), (u(3), 6.0)], &[u(1), u(3)]);
        assert!((t.weight_of(u(1)) - 0.25).abs() < 1e-12);
        assert_eq!(t.weight_of(u(2)), 0.0);
        assert!((t.weight_of(u(3)) - 0.75).abs() < 1e-12);
        assert_eq!(t.selected_len(), 2);
    }

    #[test]
    fn remove_renormalizes() {
        let mut t = RoutingTable::new();
        for i in 1..=3 {
            t.add(u(i));
        }
        t.install(
            &[(u(1), 1.0), (u(2), 1.0), (u(3), 2.0)],
            &[u(1), u(2), u(3)],
        );
        assert!(t.remove(u(3)));
        assert!(!t.remove(u(3)));
        let total: f64 = t.entries().iter().map(|e| e.weight).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert!((t.weight_of(u(1)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn sample_respects_weights() {
        let mut t = RoutingTable::new();
        t.add(u(1));
        t.add(u(2));
        t.install(&[(u(1), 9.0), (u(2), 1.0)], &[u(1), u(2)]);
        let mut rng = DetRng::seed_from_u64(7);
        let mut count1 = 0;
        for _ in 0..10_000 {
            if t.sample(&mut rng).unwrap() == u(1) {
                count1 += 1;
            }
        }
        // Expect ~9000; allow generous tolerance.
        assert!((8_700..9_300).contains(&count1), "count1 = {count1}");
    }

    #[test]
    fn sample_never_picks_unselected() {
        let mut t = RoutingTable::new();
        for i in 1..=4 {
            t.add(u(i));
        }
        t.install(&[(u(2), 1.0), (u(4), 3.0)], &[u(2), u(4)]);
        let mut rng = DetRng::seed_from_u64(3);
        for _ in 0..1_000 {
            let d = t.sample(&mut rng).unwrap();
            assert!(d == u(2) || d == u(4));
        }
    }

    #[test]
    fn sample_empty_table_errors() {
        let t = RoutingTable::new();
        let mut rng = DetRng::seed_from_u64(0);
        assert_eq!(t.sample(&mut rng).unwrap_err(), Error::NoDownstreams);
    }

    #[test]
    fn degenerate_weights_fall_back_to_uniform() {
        let mut t = RoutingTable::new();
        t.add(u(1));
        t.add(u(2));
        // All-zero raw weights over the selected set.
        t.install(&[(u(1), 0.0), (u(2), 0.0)], &[u(1), u(2)]);
        let total: f64 = t.entries().iter().map(|e| e.weight).sum();
        assert!((total - 1.0).abs() < 1e-12);
        let mut rng = DetRng::seed_from_u64(1);
        t.sample(&mut rng).unwrap();
    }

    #[test]
    fn empty_selection_reselects_everything() {
        let mut t = RoutingTable::new();
        t.add(u(1));
        t.add(u(2));
        t.install(&[], &[]);
        assert_eq!(t.selected_len(), 2);
        let total: f64 = t.entries().iter().map(|e| e.weight).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn weights_always_sum_to_one_after_install() {
        let mut t = RoutingTable::new();
        for i in 0..5 {
            t.add(u(i));
        }
        t.install(
            &[(u(0), 0.3), (u(1), 12.0), (u(2), 7.5), (u(3), 0.001)],
            &[u(0), u(1), u(2), u(3)],
        );
        let total: f64 = t.entries().iter().map(|e| e.weight).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert_eq!(t.weight_of(u(4)), 0.0);
    }
}
