//! Key hashing and rendezvous partitioning for `KeyBy` edges.
//!
//! A keyed edge routes every tuple carrying the same key value to the
//! same downstream instance, so per-key operator state never has to be
//! shared or migrated during normal operation. Ownership is decided by
//! rendezvous (highest-random-weight) hashing over the *live* instance
//! set: each `(key, instance)` pair gets a deterministic score and the
//! instance with the highest score owns the key. Rendezvous hashing is
//!
//! * **deterministic** — a pure function of key bytes and member ids, so
//!   SimSwarm replays route identically;
//! * **total** — any non-empty member set owns every key;
//! * **minimally disruptive** — removing one member re-homes only the
//!   keys that member owned, and adding one member steals only the keys
//!   it now wins; every other key keeps its owner.
//!
//! Key identity is the *canonical byte encoding* of the tuple field
//! ([`tuple_key_bytes`]), a kind tag followed by a fixed-width
//! big-endian payload, so `I64(1)` and `F64(1.0)` are distinct keys and
//! float keys hash by bit pattern (NaNs are stable, `-0.0 != 0.0`).

use crate::tuple::{Tuple, Value};
use crate::UnitId;

/// Kind tag prefixed to the canonical key bytes of a missing field.
const TAG_MISSING: u8 = 0;
/// Kind tags for each [`Value`] variant (see [`value_key_bytes`]).
const TAG_BYTES: u8 = 1;
const TAG_STR: u8 = 2;
const TAG_I64: u8 = 3;
const TAG_F64: u8 = 4;
const TAG_F32VEC: u8 = 5;
const TAG_BOOL: u8 = 6;

/// SplitMix64 finalizer: a full-avalanche 64-bit mixing function.
///
/// Used both to finish the byte hash and to combine a key hash with a
/// member id for rendezvous scoring. Deterministic and dependency-free,
/// so key ownership is identical across hosts and replays.
#[must_use]
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// FNV-1a 64-bit hash of a byte string, finished with [`mix64`].
///
/// FNV-1a mixes low bits poorly on short inputs; the finalizer spreads
/// the result over all 64 bits so rendezvous scores are unbiased.
#[must_use]
pub fn stable_hash(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    mix64(h)
}

/// Append the canonical key encoding of a value: one kind tag byte,
/// then a fixed-width big-endian payload.
///
/// The encoding is injective per kind (distinct values never collide
/// byte-wise) and portable (no platform-dependent layout), which makes
/// it usable both for hashing and as a `BTreeMap` state-cell key with
/// deterministic iteration order.
pub fn value_key_bytes(value: &Value, out: &mut Vec<u8>) {
    match value {
        Value::Bytes(b) => {
            out.push(TAG_BYTES);
            out.extend_from_slice(b.as_slice());
        }
        Value::Str(s) => {
            out.push(TAG_STR);
            out.extend_from_slice(s.as_bytes());
        }
        Value::I64(i) => {
            out.push(TAG_I64);
            out.extend_from_slice(&i.to_be_bytes());
        }
        Value::F64(f) => {
            out.push(TAG_F64);
            out.extend_from_slice(&f.to_bits().to_be_bytes());
        }
        Value::F32Vec(v) => {
            out.push(TAG_F32VEC);
            for f in v.iter() {
                out.extend_from_slice(&f.to_bits().to_be_bytes());
            }
        }
        Value::Bool(b) => {
            out.push(TAG_BOOL);
            out.push(u8::from(*b));
        }
    }
}

/// Canonical key bytes of `field` in `tuple`.
///
/// A missing field maps to a one-byte sentinel encoding, so tuples
/// without the key field still land deterministically on one instance
/// (all of them on the *same* instance) instead of erroring mid-stream.
#[must_use]
pub fn tuple_key_bytes(tuple: &Tuple, field: &str) -> Vec<u8> {
    let mut out = Vec::with_capacity(16);
    match tuple.get_value(field) {
        Ok(v) => value_key_bytes(v, &mut out),
        Err(_) => out.push(TAG_MISSING),
    }
    out
}

/// Hash of the canonical key bytes of `field` in `tuple`.
#[must_use]
pub fn tuple_key_hash(tuple: &Tuple, field: &str) -> u64 {
    stable_hash(&tuple_key_bytes(tuple, field))
}

/// Rendezvous score of `(key_hash, member)` — higher wins ownership.
#[must_use]
#[inline]
pub fn rendezvous_score(key_hash: u64, member: UnitId) -> u64 {
    // Pre-mixing the member id decorrelates consecutive unit ids before
    // they meet the key hash; xor alone would make u0/u1 scores differ
    // in one bit.
    mix64(key_hash ^ mix64(u64::from(member.0).wrapping_add(0x9E37_79B9_7F4A_7C15)))
}

/// The member owning `key_hash`: the highest [`rendezvous_score`], ties
/// broken toward the lower unit id. `None` iff `members` is empty.
///
/// Members may arrive in any order and may contain duplicates; the
/// result depends only on the *set*.
pub fn rendezvous_owner(
    key_hash: u64,
    members: impl IntoIterator<Item = UnitId>,
) -> Option<UnitId> {
    let mut best: Option<(u64, UnitId)> = None;
    for m in members {
        let score = rendezvous_score(key_hash, m);
        best = match best {
            None => Some((score, m)),
            Some((bs, bm)) if score > bs || (score == bs && m < bm) => Some((score, m)),
            keep => keep,
        };
    }
    best.map(|(_, m)| m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::payload::SharedBytes;
    use std::collections::BTreeMap;

    fn u(i: u32) -> UnitId {
        UnitId(i)
    }

    #[test]
    fn key_bytes_distinguish_kinds_and_values() {
        let t = Tuple::new()
            .with("i", 1i64)
            .with("f", 1.0f64)
            .with("s", "1")
            .with("b", SharedBytes::copy_from_slice(b"1"));
        let keys: Vec<Vec<u8>> = ["i", "f", "s", "b"]
            .iter()
            .map(|k| tuple_key_bytes(&t, k))
            .collect();
        for (a, ka) in keys.iter().enumerate() {
            for kb in keys.iter().skip(a + 1) {
                assert_ne!(ka, kb, "kinds must not collide byte-wise");
            }
        }
        // Missing field: stable one-byte sentinel.
        assert_eq!(tuple_key_bytes(&t, "absent"), vec![TAG_MISSING]);
        assert_eq!(
            tuple_key_hash(&t, "absent"),
            tuple_key_hash(&Tuple::new(), "anything-else"),
            "all missing keys are one partition, regardless of field name"
        );
    }

    #[test]
    fn float_keys_hash_by_bit_pattern() {
        let pos = Tuple::new().with("f", 0.0f64);
        let neg = Tuple::new().with("f", -0.0f64);
        assert_ne!(tuple_key_hash(&pos, "f"), tuple_key_hash(&neg, "f"));
        let nan = Tuple::new().with("f", f64::NAN);
        assert_eq!(tuple_key_hash(&nan, "f"), tuple_key_hash(&nan, "f"));
    }

    #[test]
    fn owner_is_deterministic_and_order_independent() {
        let members = [u(3), u(1), u(7), u(5)];
        let mut reversed = members;
        reversed.reverse();
        for k in 0..200u64 {
            let h = mix64(k);
            let a = rendezvous_owner(h, members).unwrap();
            let b = rendezvous_owner(h, reversed).unwrap();
            assert_eq!(a, b);
            assert!(members.contains(&a), "owner must be a member");
        }
        assert_eq!(rendezvous_owner(42, []), None);
    }

    #[test]
    fn removal_moves_only_the_dead_members_keys() {
        let full = [u(0), u(1), u(2), u(3)];
        let survivors = [u(0), u(1), u(3)];
        for k in 0..500u64 {
            let h = mix64(k ^ 0xDEAD);
            let before = rendezvous_owner(h, full).unwrap();
            let after = rendezvous_owner(h, survivors).unwrap();
            if before != u(2) {
                assert_eq!(before, after, "survivor-owned key must not move");
            } else {
                assert!(survivors.contains(&after));
            }
        }
    }

    #[test]
    fn ownership_spreads_over_members() {
        let members = [u(0), u(1), u(2), u(3)];
        let mut counts: BTreeMap<UnitId, u32> = BTreeMap::new();
        for k in 0..4_000u64 {
            let h = stable_hash(&k.to_be_bytes());
            *counts
                .entry(rendezvous_owner(h, members).unwrap())
                .or_insert(0) += 1;
        }
        for (&m, &c) in &counts {
            assert!(
                (500..=1_500).contains(&c),
                "member {m} owns {c} of 4000 keys; distribution is skewed"
            );
        }
    }
}
