//! The application dataflow graph.
//!
//! A Swing app is "a directed graph (whose) vertices correspond to
//! computational parts of the app, which we refer to as *function units*"
//! (paper §IV-A). This module models the *logical* graph: named stages
//! (source / operator / sink) and the edges between them. At deployment
//! time each stage may be replicated onto several devices; the resulting
//! *instances* are tracked by a [`Deployment`].

use crate::error::{Error, Result};
use crate::tuple::TupleSchema;
use crate::{DeviceId, UnitId};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};
use std::fmt;

/// Identifier of a logical stage (vertex) of an [`AppGraph`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct StageId(pub u32);

impl fmt::Display for StageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// The role a stage plays in the dataflow graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Role {
    /// A unit without upstreams that senses data and generates tuples.
    Source,
    /// An intermediate compute unit.
    Operator,
    /// A unit without downstreams that consumes final results.
    Sink,
}

impl fmt::Display for Role {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Role::Source => "source",
            Role::Operator => "operator",
            Role::Sink => "sink",
        })
    }
}

/// Static description of one stage of the application.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageSpec {
    /// Human-readable stage name, unique within the graph.
    pub name: String,
    /// Source / operator / sink.
    pub role: Role,
    /// Optional schema of the tuples this stage emits.
    pub output_schema: Option<TupleSchema>,
    /// Parallelism hint: cap on how many replicas a deployment should
    /// place for this stage. `None` means "as many as the placement
    /// policy likes" (today's behavior).
    pub parallelism: Option<u32>,
}

/// How tuples crossing an edge are distributed over the downstream
/// stage's instances.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum EdgeKind {
    /// Every downstream replica is a candidate; LRS (or the configured
    /// policy) picks one per tuple. Today's behavior and the default.
    #[default]
    Broadcast,
    /// Hash-partitioned on the named tuple field: every tuple carrying
    /// the same key value goes to the one instance that owns the key
    /// under rendezvous hashing (see
    /// [`routing::partition`](crate::routing::partition)).
    KeyBy(String),
    /// Deterministic round-robin over live instances, ignoring latency.
    Rebalance,
}

impl fmt::Display for EdgeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EdgeKind::Broadcast => f.write_str("broadcast"),
            EdgeKind::KeyBy(field) => write!(f, "key_by({field})"),
            EdgeKind::Rebalance => f.write_str("rebalance"),
        }
    }
}

/// One directed edge of the dataflow graph, with its distribution kind.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EdgeSpec {
    /// Upstream stage.
    pub from: StageId,
    /// Downstream stage.
    pub to: StageId,
    /// How tuples are spread over the downstream's instances.
    pub kind: EdgeKind,
}

/// A directed acyclic dataflow graph describing a Swing application.
///
/// ```
/// use swing_core::graph::AppGraph;
///
/// // The paper's face-recognition app: capture -> detect -> recognize -> display.
/// let mut g = AppGraph::new("face-recognition");
/// let cam = g.add_source("camera");
/// let det = g.add_operator("detect");
/// let rec = g.add_operator("recognize");
/// let dsp = g.add_sink("display");
/// g.connect(cam, det).unwrap();
/// g.connect(det, rec).unwrap();
/// g.connect(rec, dsp).unwrap();
/// g.validate().unwrap();
/// assert_eq!(g.topo_order().unwrap(), vec![cam, det, rec, dsp]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppGraph {
    name: String,
    stages: Vec<StageSpec>,
    /// Edges in insertion order.
    edges: Vec<EdgeSpec>,
    /// Downstream adjacency per stage, maintained incrementally by
    /// `connect_with` so graph walks (`reaches`, `topo_order`,
    /// `downstreams`) are O(V+E) instead of rescanning the flat edge
    /// list per node. Per-stage order mirrors edge insertion order.
    out_adj: Vec<Vec<StageId>>,
    /// Upstream adjacency per stage (see `out_adj`).
    in_adj: Vec<Vec<StageId>>,
    /// Performance requirement: input rate (tuples/s) the app must sustain,
    /// settable by the programmer (paper §IV-A). `None` means best effort.
    target_rate: Option<f64>,
}

impl AppGraph {
    /// Create an empty graph with the given application name.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        AppGraph {
            name: name.into(),
            stages: Vec::new(),
            edges: Vec::new(),
            out_adj: Vec::new(),
            in_adj: Vec::new(),
            target_rate: None,
        }
    }

    /// Application name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Declare the input rate (tuples per second) the app must sustain.
    pub fn set_target_rate(&mut self, tuples_per_sec: f64) {
        self.target_rate = Some(tuples_per_sec);
    }

    /// The declared input-rate requirement, if any.
    #[must_use]
    pub fn target_rate(&self) -> Option<f64> {
        self.target_rate
    }

    /// Add a source stage and return its id.
    pub fn add_source(&mut self, name: impl Into<String>) -> StageId {
        self.add_stage(name, Role::Source)
    }

    /// Add an operator stage and return its id.
    pub fn add_operator(&mut self, name: impl Into<String>) -> StageId {
        self.add_stage(name, Role::Operator)
    }

    /// Add a sink stage and return its id.
    pub fn add_sink(&mut self, name: impl Into<String>) -> StageId {
        self.add_stage(name, Role::Sink)
    }

    fn add_stage(&mut self, name: impl Into<String>, role: Role) -> StageId {
        let id = StageId(self.stages.len() as u32);
        self.stages.push(StageSpec {
            name: name.into(),
            role,
            output_schema: None,
            parallelism: None,
        });
        self.out_adj.push(Vec::new());
        self.in_adj.push(Vec::new());
        id
    }

    /// Declare the schema of tuples emitted by `stage`.
    pub fn set_output_schema(&mut self, stage: StageId, schema: TupleSchema) -> Result<()> {
        let spec = self
            .stages
            .get_mut(stage.0 as usize)
            .ok_or(Error::UnknownStage(stage))?;
        spec.output_schema = Some(schema);
        Ok(())
    }

    /// Declare how many replicas a deployment should place for `stage`
    /// at most. `replicas` must be at least 1.
    pub fn set_parallelism(&mut self, stage: StageId, replicas: u32) -> Result<()> {
        if replicas == 0 {
            return Err(Error::InvalidConfig(
                "stage parallelism must be at least 1".into(),
            ));
        }
        let spec = self
            .stages
            .get_mut(stage.0 as usize)
            .ok_or(Error::UnknownStage(stage))?;
        spec.parallelism = Some(replicas);
        Ok(())
    }

    /// Connect `from` to `to` (the paper's `src.connectTo(f1)`) with
    /// the default [`Broadcast`](EdgeKind::Broadcast) distribution.
    ///
    /// Rejects unknown stages, duplicate edges, edges into a source or out
    /// of a sink, self-loops and anything that would create a cycle.
    pub fn connect(&mut self, from: StageId, to: StageId) -> Result<()> {
        self.connect_with(from, to, EdgeKind::Broadcast)
    }

    /// Connect `from` to `to` hash-partitioned on tuple field `field`:
    /// every tuple with the same key value is routed to the one
    /// downstream instance owning that key.
    pub fn connect_keyed(
        &mut self,
        from: StageId,
        to: StageId,
        field: impl Into<String>,
    ) -> Result<()> {
        self.connect_with(from, to, EdgeKind::KeyBy(field.into()))
    }

    /// Connect `from` to `to` with deterministic round-robin
    /// distribution over the downstream's live instances.
    pub fn connect_rebalance(&mut self, from: StageId, to: StageId) -> Result<()> {
        self.connect_with(from, to, EdgeKind::Rebalance)
    }

    /// Connect `from` to `to` with an explicit [`EdgeKind`].
    ///
    /// Beyond [`connect`](Self::connect)'s checks, a non-`Broadcast`
    /// out-edge must be its stage's *only* out-edge (and vice versa):
    /// one upstream dispatcher tracks in-flight tuples by sequence
    /// number, so it runs exactly one distribution mode. `KeyBy` also
    /// requires a non-empty field name.
    pub fn connect_with(&mut self, from: StageId, to: StageId, kind: EdgeKind) -> Result<()> {
        let from_spec = self
            .stages
            .get(from.0 as usize)
            .ok_or(Error::UnknownStage(from))?;
        let to_spec = self
            .stages
            .get(to.0 as usize)
            .ok_or(Error::UnknownStage(to))?;
        if from_spec.role == Role::Sink {
            return Err(Error::InvalidEndpoint(
                UnitId(from.0),
                "a sink cannot have downstream units",
            ));
        }
        if to_spec.role == Role::Source {
            return Err(Error::InvalidEndpoint(
                UnitId(to.0),
                "a source cannot have upstream units",
            ));
        }
        if from == to {
            return Err(Error::CycleDetected(UnitId(from.0), UnitId(to.0)));
        }
        if let EdgeKind::KeyBy(field) = &kind {
            if field.is_empty() {
                return Err(Error::InvalidConfig(
                    "key_by edge requires a non-empty field name".into(),
                ));
            }
        }
        if self.edges.iter().any(|e| e.from == from && e.to == to) {
            return Err(Error::DuplicateEdge(UnitId(from.0), UnitId(to.0)));
        }
        let has_out = !self.out_adj[from.0 as usize].is_empty();
        let has_partitioned_out = self
            .edges
            .iter()
            .any(|e| e.from == from && e.kind != EdgeKind::Broadcast);
        if (kind != EdgeKind::Broadcast && has_out) || has_partitioned_out {
            return Err(Error::InvalidGraph(format!(
                "stage `{}` would mix a partitioned out-edge with other \
                 out-edges; key_by/rebalance edges must be sole",
                from_spec.name
            )));
        }
        if self.reaches(to, from) {
            return Err(Error::CycleDetected(UnitId(from.0), UnitId(to.0)));
        }
        self.edges.push(EdgeSpec { from, to, kind });
        self.out_adj[from.0 as usize].push(to);
        self.in_adj[to.0 as usize].push(from);
        Ok(())
    }

    /// Whether `from` can reach `to` following edges.
    fn reaches(&self, from: StageId, to: StageId) -> bool {
        let mut queue = VecDeque::from([from]);
        let mut seen = vec![false; self.stages.len()];
        while let Some(s) = queue.pop_front() {
            if s == to {
                return true;
            }
            if std::mem::replace(&mut seen[s.0 as usize], true) {
                continue;
            }
            queue.extend(&self.out_adj[s.0 as usize]);
        }
        false
    }

    /// Specification of a stage.
    pub fn stage(&self, id: StageId) -> Result<&StageSpec> {
        self.stages
            .get(id.0 as usize)
            .ok_or(Error::UnknownStage(id))
    }

    /// Look up a stage id by name.
    #[must_use]
    pub fn stage_by_name(&self, name: &str) -> Option<StageId> {
        self.stages
            .iter()
            .position(|s| s.name == name)
            .map(|i| StageId(i as u32))
    }

    /// All stage ids in insertion order.
    pub fn stages(&self) -> impl Iterator<Item = StageId> + '_ {
        (0..self.stages.len() as u32).map(StageId)
    }

    /// Number of stages.
    #[must_use]
    pub fn stage_count(&self) -> usize {
        self.stages.len()
    }

    /// All edges in insertion order.
    #[must_use]
    pub fn edges(&self) -> &[EdgeSpec] {
        &self.edges
    }

    /// The distribution kind of the `from -> to` edge, if it exists.
    #[must_use]
    pub fn edge_kind(&self, from: StageId, to: StageId) -> Option<&EdgeKind> {
        self.edges
            .iter()
            .find(|e| e.from == from && e.to == to)
            .map(|e| &e.kind)
    }

    /// Stages that `stage` sends tuples to.
    pub fn downstreams(&self, stage: StageId) -> impl Iterator<Item = StageId> + '_ {
        self.out_adj
            .get(stage.0 as usize)
            .map(Vec::as_slice)
            .unwrap_or_default()
            .iter()
            .copied()
    }

    /// Stages that send tuples to `stage`.
    pub fn upstreams(&self, stage: StageId) -> impl Iterator<Item = StageId> + '_ {
        self.in_adj
            .get(stage.0 as usize)
            .map(Vec::as_slice)
            .unwrap_or_default()
            .iter()
            .copied()
    }

    /// All source stages.
    pub fn sources(&self) -> impl Iterator<Item = StageId> + '_ {
        self.stages()
            .filter(|s| self.stages[s.0 as usize].role == Role::Source)
    }

    /// All sink stages.
    pub fn sinks(&self) -> impl Iterator<Item = StageId> + '_ {
        self.stages()
            .filter(|s| self.stages[s.0 as usize].role == Role::Sink)
    }

    /// A topological order of the stages.
    ///
    /// Fails if the graph contains a cycle (cannot happen through
    /// [`connect`](Self::connect), which rejects cycles eagerly).
    pub fn topo_order(&self) -> Result<Vec<StageId>> {
        let n = self.stages.len();
        let mut indeg: Vec<usize> = self.in_adj.iter().map(Vec::len).collect();
        let mut queue: VecDeque<StageId> = (0..n as u32)
            .map(StageId)
            .filter(|s| indeg[s.0 as usize] == 0)
            .collect();
        let mut order = Vec::with_capacity(n);
        while let Some(s) = queue.pop_front() {
            order.push(s);
            for &b in &self.out_adj[s.0 as usize] {
                indeg[b.0 as usize] -= 1;
                if indeg[b.0 as usize] == 0 {
                    queue.push_back(b);
                }
            }
        }
        if order.len() == n {
            Ok(order)
        } else {
            Err(Error::InvalidGraph("graph contains a cycle".into()))
        }
    }

    /// Render the graph in Graphviz DOT format: sources as houses,
    /// operators as boxes, sinks as inverted houses. Handy for
    /// documenting deployments (`dot -Tsvg`).
    #[must_use]
    pub fn to_dot(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("digraph \"{}\" {{\n", self.name.replace('"', "'")));
        out.push_str("  rankdir=LR;\n");
        for s in self.stages() {
            let spec = &self.stages[s.0 as usize];
            let shape = match spec.role {
                Role::Source => "house",
                Role::Operator => "box",
                Role::Sink => "invhouse",
            };
            out.push_str(&format!(
                "  {} [label=\"{}\", shape={}];\n",
                s,
                spec.name.replace('"', "'"),
                shape
            ));
        }
        for e in &self.edges {
            match &e.kind {
                // Unlabeled, exactly as before this field existed.
                EdgeKind::Broadcast => out.push_str(&format!("  {} -> {};\n", e.from, e.to)),
                kind => out.push_str(&format!(
                    "  {} -> {} [label=\"{}\"];\n",
                    e.from,
                    e.to,
                    kind.to_string().replace('"', "'")
                )),
            }
        }
        out.push_str("}\n");
        out
    }

    /// Validate the whole graph: at least one source and one sink, every
    /// non-source has an upstream, every non-sink has a downstream, and
    /// every stage lies on a source→sink path.
    pub fn validate(&self) -> Result<()> {
        if self.stages.is_empty() {
            return Err(Error::InvalidGraph("graph has no stages".into()));
        }
        if self.sources().next().is_none() {
            return Err(Error::InvalidGraph("graph has no source".into()));
        }
        if self.sinks().next().is_none() {
            return Err(Error::InvalidGraph("graph has no sink".into()));
        }
        for s in self.stages() {
            let spec = &self.stages[s.0 as usize];
            let has_up = self.upstreams(s).next().is_some();
            let has_down = self.downstreams(s).next().is_some();
            match spec.role {
                Role::Source if !has_down => {
                    return Err(Error::InvalidGraph(format!(
                        "source `{}` is not connected to any downstream",
                        spec.name
                    )))
                }
                Role::Sink if !has_up => {
                    return Err(Error::InvalidGraph(format!(
                        "sink `{}` has no upstream",
                        spec.name
                    )))
                }
                Role::Operator if !(has_up && has_down) => {
                    return Err(Error::InvalidGraph(format!(
                        "operator `{}` must have both upstream and downstream",
                        spec.name
                    )))
                }
                _ => {}
            }
        }
        self.topo_order()?;
        Ok(())
    }
}

/// Assignment of stage replicas to devices, produced at deployment time
/// (paper §IV-B step 3: "the master deploys the app dataflow graph by
/// assigning function units and connecting devices").
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Deployment {
    next_unit: u32,
    /// instance id -> (stage, device)
    instances: BTreeMap<UnitId, (StageId, DeviceId)>,
}

impl Deployment {
    /// Create an empty deployment.
    #[must_use]
    pub fn new() -> Self {
        Deployment::default()
    }

    /// Place one replica of `stage` on `device`, returning its instance id.
    pub fn place(&mut self, stage: StageId, device: DeviceId) -> UnitId {
        let id = UnitId(self.next_unit);
        self.next_unit += 1;
        self.instances.insert(id, (stage, device));
        id
    }

    /// Remove an instance (device left the swarm). Returns whether it existed.
    pub fn remove(&mut self, unit: UnitId) -> bool {
        self.instances.remove(&unit).is_some()
    }

    /// Re-insert an instance under its original id (master recovery from
    /// a checkpoint). Keeps the id counter above every restored id so
    /// future placements never collide with adopted units.
    pub fn restore(&mut self, unit: UnitId, stage: StageId, device: DeviceId) {
        self.next_unit = self.next_unit.max(unit.0 + 1);
        self.instances.insert(unit, (stage, device));
    }

    /// The stage a unit instantiates.
    pub fn stage_of(&self, unit: UnitId) -> Result<StageId> {
        self.instances
            .get(&unit)
            .map(|(s, _)| *s)
            .ok_or(Error::UnknownUnit(unit))
    }

    /// The device a unit runs on.
    pub fn device_of(&self, unit: UnitId) -> Result<DeviceId> {
        self.instances
            .get(&unit)
            .map(|(_, d)| *d)
            .ok_or(Error::UnknownUnit(unit))
    }

    /// All instances of a stage, in id order.
    pub fn instances_of(&self, stage: StageId) -> impl Iterator<Item = UnitId> + '_ {
        self.instances
            .iter()
            .filter(move |(_, (s, _))| *s == stage)
            .map(|(u, _)| *u)
    }

    /// All instances placed on a device, in id order.
    pub fn instances_on(&self, device: DeviceId) -> impl Iterator<Item = UnitId> + '_ {
        self.instances
            .iter()
            .filter(move |(_, (_, d))| *d == device)
            .map(|(u, _)| *u)
    }

    /// All (unit, stage, device) rows in unit-id order.
    pub fn iter(&self) -> impl Iterator<Item = (UnitId, StageId, DeviceId)> + '_ {
        self.instances.iter().map(|(u, (s, d))| (*u, *s, *d))
    }

    /// Number of placed instances.
    #[must_use]
    pub fn len(&self) -> usize {
        self.instances.len()
    }

    /// Whether nothing has been placed yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.instances.is_empty()
    }

    /// The downstream instances a given instance should route to, derived
    /// from the logical graph: every instance of every downstream stage.
    ///
    /// This is the *candidate set* — on a `Broadcast` edge the router
    /// picks among all of them per tuple; on a partitioned edge use
    /// [`downstream_instances_for`](Self::downstream_instances_for)
    /// to resolve a concrete tuple's destination.
    pub fn downstream_instances(&self, graph: &AppGraph, unit: UnitId) -> Result<Vec<UnitId>> {
        let stage = self.stage_of(unit)?;
        let mut out = Vec::new();
        for ds in graph.downstreams(stage) {
            out.extend(self.instances_of(ds));
        }
        Ok(out)
    }

    /// The downstream instances `tuple` may be delivered to from `unit`,
    /// respecting each out-edge's [`EdgeKind`]:
    ///
    /// * `Broadcast` / `Rebalance` — every instance of the downstream
    ///   stage (the per-tuple pick happens in the router);
    /// * `KeyBy(field)` — only the one instance owning the tuple's key
    ///   under rendezvous hashing over the stage's live instances.
    pub fn downstream_instances_for(
        &self,
        graph: &AppGraph,
        unit: UnitId,
        tuple: &crate::tuple::Tuple,
    ) -> Result<Vec<UnitId>> {
        use crate::routing::partition::{rendezvous_owner, tuple_key_hash};
        let stage = self.stage_of(unit)?;
        let mut out = Vec::new();
        for edge in graph.edges().iter().filter(|e| e.from == stage) {
            match &edge.kind {
                EdgeKind::Broadcast | EdgeKind::Rebalance => {
                    out.extend(self.instances_of(edge.to));
                }
                EdgeKind::KeyBy(field) => {
                    let h = tuple_key_hash(tuple, field);
                    out.extend(rendezvous_owner(h, self.instances_of(edge.to)));
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn face_graph() -> (AppGraph, StageId, StageId, StageId, StageId) {
        let mut g = AppGraph::new("face");
        let cam = g.add_source("camera");
        let det = g.add_operator("detect");
        let rec = g.add_operator("recognize");
        let dsp = g.add_sink("display");
        g.connect(cam, det).unwrap();
        g.connect(det, rec).unwrap();
        g.connect(rec, dsp).unwrap();
        (g, cam, det, rec, dsp)
    }

    #[test]
    fn builds_and_validates_linear_pipeline() {
        let (g, ..) = face_graph();
        g.validate().unwrap();
        assert_eq!(g.stage_count(), 4);
        assert_eq!(g.edges().len(), 3);
    }

    #[test]
    fn rejects_duplicate_edge() {
        let (mut g, cam, det, ..) = face_graph();
        assert!(matches!(
            g.connect(cam, det),
            Err(Error::DuplicateEdge(_, _))
        ));
    }

    #[test]
    fn rejects_cycles_and_self_loops() {
        let (mut g, _, det, rec, _) = face_graph();
        assert!(matches!(g.connect(rec, det), Err(Error::CycleDetected(..))));
        assert!(matches!(g.connect(det, det), Err(Error::CycleDetected(..))));
    }

    #[test]
    fn rejects_edges_into_source_or_out_of_sink() {
        let (mut g, cam, det, _, dsp) = face_graph();
        assert!(matches!(
            g.connect(det, cam),
            Err(Error::InvalidEndpoint(..))
        ));
        assert!(matches!(
            g.connect(dsp, det),
            Err(Error::InvalidEndpoint(..))
        ));
    }

    #[test]
    fn rejects_unknown_stage() {
        let (mut g, cam, ..) = face_graph();
        assert_eq!(
            g.connect(cam, StageId(99)),
            Err(Error::UnknownStage(StageId(99)))
        );
        assert_eq!(
            g.connect(StageId(42), cam),
            Err(Error::UnknownStage(StageId(42)))
        );
        assert_eq!(
            g.stage(StageId(99)).unwrap_err(),
            Error::UnknownStage(StageId(99))
        );
        assert_eq!(
            g.set_parallelism(StageId(99), 2),
            Err(Error::UnknownStage(StageId(99)))
        );
    }

    #[test]
    fn keyed_and_rebalance_edges_record_their_kind() {
        let mut g = AppGraph::new("keyed");
        let src = g.add_source("gps");
        let agg = g.add_operator("agg");
        let dsp = g.add_sink("dsp");
        g.connect_keyed(src, agg, "cell").unwrap();
        g.connect_rebalance(agg, dsp).unwrap();
        g.validate().unwrap();
        assert_eq!(g.edge_kind(src, agg), Some(&EdgeKind::KeyBy("cell".into())));
        assert_eq!(g.edge_kind(agg, dsp), Some(&EdgeKind::Rebalance));
        assert_eq!(g.edge_kind(src, dsp), None);
        // Kinds render as DOT labels; broadcast stays bare.
        let dot = g.to_dot();
        assert!(dot.contains(&format!("{src} -> {agg} [label=\"key_by(cell)\"];")));
        assert!(dot.contains(&format!("{agg} -> {dsp} [label=\"rebalance\"];")));
    }

    #[test]
    fn partitioned_out_edge_must_be_sole() {
        // Keyed after an existing broadcast out-edge.
        let mut g = AppGraph::new("mix1");
        let s = g.add_source("s");
        let a = g.add_operator("a");
        let b = g.add_operator("b");
        g.connect(s, a).unwrap();
        assert!(matches!(
            g.connect_keyed(s, b, "k"),
            Err(Error::InvalidGraph(_))
        ));
        // Broadcast after an existing keyed out-edge.
        let mut g = AppGraph::new("mix2");
        let s = g.add_source("s");
        let a = g.add_operator("a");
        let b = g.add_operator("b");
        g.connect_keyed(s, a, "k").unwrap();
        assert!(matches!(g.connect(s, b), Err(Error::InvalidGraph(_))));
        // Two broadcast out-edges stay legal (today's fan-out).
        let mut g = AppGraph::new("fan");
        let s = g.add_source("s");
        let a = g.add_operator("a");
        let b = g.add_operator("b");
        g.connect(s, a).unwrap();
        g.connect(s, b).unwrap();
    }

    #[test]
    fn keyed_edge_requires_field_name() {
        let mut g = AppGraph::new("nofield");
        let s = g.add_source("s");
        let a = g.add_operator("a");
        assert!(matches!(
            g.connect_keyed(s, a, ""),
            Err(Error::InvalidConfig(_))
        ));
    }

    #[test]
    fn parallelism_hint_round_trips() {
        let (mut g, _, det, ..) = face_graph();
        assert_eq!(g.stage(det).unwrap().parallelism, None);
        g.set_parallelism(det, 3).unwrap();
        assert_eq!(g.stage(det).unwrap().parallelism, Some(3));
        assert!(matches!(
            g.set_parallelism(det, 0),
            Err(Error::InvalidConfig(_))
        ));
    }

    #[test]
    fn validation_catches_disconnected_units() {
        let mut g = AppGraph::new("bad");
        let s = g.add_source("src");
        let k = g.add_sink("snk");
        g.connect(s, k).unwrap();
        g.add_operator("orphan");
        let err = g.validate().unwrap_err();
        assert!(err.to_string().contains("orphan"));
    }

    #[test]
    fn validation_requires_source_and_sink() {
        let mut g = AppGraph::new("no-sink");
        g.add_source("src");
        assert!(g.validate().is_err());

        let mut g = AppGraph::new("no-source");
        g.add_sink("snk");
        assert!(g.validate().is_err());

        assert!(AppGraph::new("empty").validate().is_err());
    }

    #[test]
    fn upstream_downstream_queries() {
        let (g, cam, det, rec, dsp) = face_graph();
        assert_eq!(g.downstreams(cam).collect::<Vec<_>>(), vec![det]);
        assert_eq!(g.upstreams(rec).collect::<Vec<_>>(), vec![det]);
        assert_eq!(g.sources().collect::<Vec<_>>(), vec![cam]);
        assert_eq!(g.sinks().collect::<Vec<_>>(), vec![dsp]);
    }

    #[test]
    fn fan_out_graph_topo_order_is_valid() {
        let mut g = AppGraph::new("fan");
        let s = g.add_source("src");
        let a = g.add_operator("a");
        let b = g.add_operator("b");
        let k = g.add_sink("snk");
        g.connect(s, a).unwrap();
        g.connect(s, b).unwrap();
        g.connect(a, k).unwrap();
        g.connect(b, k).unwrap();
        g.validate().unwrap();
        let order = g.topo_order().unwrap();
        let pos = |x: StageId| order.iter().position(|&y| y == x).unwrap();
        assert!(pos(s) < pos(a) && pos(s) < pos(b));
        assert!(pos(a) < pos(k) && pos(b) < pos(k));
    }

    #[test]
    fn stage_lookup_by_name() {
        let (g, _, det, ..) = face_graph();
        assert_eq!(g.stage_by_name("detect"), Some(det));
        assert_eq!(g.stage_by_name("absent"), None);
        assert_eq!(g.stage(det).unwrap().role, Role::Operator);
    }

    #[test]
    fn target_rate_requirement() {
        let (mut g, ..) = face_graph();
        assert_eq!(g.target_rate(), None);
        g.set_target_rate(24.0);
        assert_eq!(g.target_rate(), Some(24.0));
    }

    #[test]
    fn deployment_places_and_queries() {
        let (g, cam, det, _, _) = face_graph();
        let mut d = Deployment::new();
        let u_src = d.place(cam, DeviceId(0));
        let u1 = d.place(det, DeviceId(1));
        let u2 = d.place(det, DeviceId(2));
        assert_eq!(d.len(), 3);
        assert_eq!(d.stage_of(u1).unwrap(), det);
        assert_eq!(d.device_of(u2).unwrap(), DeviceId(2));
        assert_eq!(d.instances_of(det).collect::<Vec<_>>(), vec![u1, u2]);
        assert_eq!(d.instances_on(DeviceId(0)).collect::<Vec<_>>(), vec![u_src]);
        let downstream = d.downstream_instances(&g, u_src).unwrap();
        assert_eq!(downstream, vec![u1, u2]);
    }

    #[test]
    fn keyed_deployment_query_resolves_one_owner() {
        use crate::tuple::Tuple;
        let mut g = AppGraph::new("keyed-deploy");
        let src = g.add_source("gps");
        let agg = g.add_operator("agg");
        let dsp = g.add_sink("dsp");
        g.connect_keyed(src, agg, "cell").unwrap();
        g.connect(agg, dsp).unwrap();
        let mut d = Deployment::new();
        let u_src = d.place(src, DeviceId(0));
        let owners: Vec<UnitId> = (1..=4).map(|i| d.place(agg, DeviceId(i))).collect();
        let u_agg = owners[0];
        let u_dsp = d.place(dsp, DeviceId(9));

        // A keyed edge resolves to exactly one owning instance, stably.
        let t = Tuple::new().with("cell", 7i64);
        let hit = d.downstream_instances_for(&g, u_src, &t).unwrap();
        assert_eq!(hit.len(), 1);
        assert!(owners.contains(&hit[0]));
        assert_eq!(hit, d.downstream_instances_for(&g, u_src, &t).unwrap());
        // Different keys spread over different owners.
        let distinct: std::collections::BTreeSet<UnitId> = (0..64i64)
            .map(|c| {
                d.downstream_instances_for(&g, u_src, &Tuple::new().with("cell", c))
                    .unwrap()[0]
            })
            .collect();
        assert!(distinct.len() > 1, "all 64 keys landed on one instance");
        // Broadcast edges still return every downstream instance.
        assert_eq!(
            d.downstream_instances_for(&g, u_agg, &t).unwrap(),
            vec![u_dsp]
        );
    }

    #[test]
    fn deployment_remove() {
        let (_, cam, ..) = face_graph();
        let mut d = Deployment::new();
        let u = d.place(cam, DeviceId(0));
        assert!(d.remove(u));
        assert!(!d.remove(u));
        assert!(d.stage_of(u).is_err());
        assert!(d.is_empty());
    }

    #[test]
    fn dot_export_contains_stages_and_edges() {
        let (g, cam, det, ..) = face_graph();
        let dot = g.to_dot();
        assert!(dot.starts_with("digraph \"face\""));
        assert!(dot.contains("label=\"camera\", shape=house"));
        assert!(dot.contains("label=\"detect\", shape=box"));
        assert!(dot.contains("label=\"display\", shape=invhouse"));
        assert!(dot.contains(&format!("{cam} -> {det};")));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn dot_export_escapes_quotes() {
        let mut g = AppGraph::new("has\"quote");
        g.add_source("s\"rc");
        let dot = g.to_dot();
        assert!(!dot.contains("\"\""), "unescaped quote in {dot}");
    }

    #[test]
    fn schema_can_be_attached_to_stage() {
        use crate::tuple::{TupleSchema, ValueKind};
        let (mut g, cam, ..) = face_graph();
        g.set_output_schema(cam, TupleSchema::new().field("frame", ValueKind::Bytes))
            .unwrap();
        assert!(g.stage(cam).unwrap().output_schema.is_some());
        assert!(g
            .set_output_schema(StageId(99), TupleSchema::new())
            .is_err());
    }
}
