//! Source pacing: emit tuples at a configured sensing rate.
//!
//! The evaluation drives sources at fixed frame rates (24 FPS video,
//! §VI-A). [`Pacer`] converts a rate into precise emission deadlines in
//! the shared microsecond timebase, avoiding cumulative rounding drift,
//! and supports mid-stream rate changes (Fig. 2 varies the input rate).

use serde::{Deserialize, Serialize};

/// Deadline generator for a fixed-rate source.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Pacer {
    /// Emission interval in microseconds (fractional for exactness).
    interval_us: f64,
    /// Deadline of the next emission.
    next_due_us: f64,
    emitted: u64,
}

impl Pacer {
    /// Create a pacer emitting `rate_per_sec` tuples per second, with the
    /// first tuple due at `start_us`.
    ///
    /// # Panics
    /// Panics if the rate is not strictly positive and finite.
    #[must_use]
    pub fn new(rate_per_sec: f64, start_us: u64) -> Self {
        assert!(
            rate_per_sec > 0.0 && rate_per_sec.is_finite(),
            "pacer rate must be positive and finite, got {rate_per_sec}"
        );
        Pacer {
            interval_us: 1_000_000.0 / rate_per_sec,
            next_due_us: start_us as f64,
            emitted: 0,
        }
    }

    /// Current rate in tuples per second.
    #[must_use]
    pub fn rate_per_sec(&self) -> f64 {
        1_000_000.0 / self.interval_us
    }

    /// Change the rate; the next deadline is preserved.
    ///
    /// # Panics
    /// Panics if the rate is not strictly positive and finite.
    pub fn set_rate(&mut self, rate_per_sec: f64) {
        assert!(
            rate_per_sec > 0.0 && rate_per_sec.is_finite(),
            "pacer rate must be positive and finite, got {rate_per_sec}"
        );
        self.interval_us = 1_000_000.0 / rate_per_sec;
    }

    /// Deadline of the next emission, in microseconds.
    #[must_use]
    pub fn next_due_us(&self) -> u64 {
        self.next_due_us.round() as u64
    }

    /// Number of tuples whose deadlines have been consumed so far.
    #[must_use]
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Consume and return every deadline that is due at or before
    /// `now_us`. An idle period therefore produces a burst, exactly like a
    /// sensor buffer being drained.
    pub fn due(&mut self, now_us: u64) -> Vec<u64> {
        let mut out = Vec::new();
        while self.next_due_us <= now_us as f64 {
            out.push(self.next_due_us.round() as u64);
            self.next_due_us += self.interval_us;
            self.emitted += 1;
        }
        out
    }

    /// Consume exactly one deadline and return it (used by event-driven
    /// schedulers that wake exactly at [`next_due_us`](Self::next_due_us)).
    pub fn consume_next(&mut self) -> u64 {
        let due = self.next_due_us.round() as u64;
        self.next_due_us += self.interval_us;
        self.emitted += 1;
        due
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emits_at_exact_rate_without_drift() {
        let mut p = Pacer::new(24.0, 0);
        let due = p.due(1_000_000); // one second
        assert_eq!(due.len(), 25); // t=0 plus 24 intervals
                                   // After 10 simulated seconds the count is exact up to one deadline
                                   // of floating-point boundary slack, with no cumulative drift.
        let due = p.due(10_000_000);
        assert_eq!(p.emitted() as usize, due.len() + 25);
        assert!((240..=241).contains(&p.emitted()), "{}", p.emitted());
    }

    #[test]
    fn deadlines_are_evenly_spaced() {
        let mut p = Pacer::new(10.0, 500);
        let due = p.due(1_000_500);
        assert_eq!(due[0], 500);
        for w in due.windows(2) {
            let gap = w[1] - w[0];
            assert!((99_999..=100_001).contains(&gap), "gap {gap}");
        }
    }

    #[test]
    fn rate_change_takes_effect_for_subsequent_deadlines() {
        let mut p = Pacer::new(5.0, 0);
        p.due(400_000); // consume a few at 200 ms spacing
        p.set_rate(20.0);
        assert!((p.rate_per_sec() - 20.0).abs() < 1e-9);
        let before = p.emitted();
        p.due(1_400_000);
        let after = p.emitted();
        // Next deadline was already scheduled at 600 ms; the remaining
        // 800 ms at 20/s yields 17 deadlines (600, 650, ..., 1400 ms).
        assert!((16..=18).contains(&(after - before)), "{}", after - before);
    }

    #[test]
    fn consume_next_advances_one_deadline() {
        let mut p = Pacer::new(24.0, 0);
        let first = p.consume_next();
        let second = p.consume_next();
        assert_eq!(first, 0);
        assert!((41_600..41_700).contains(&second));
        assert_eq!(p.emitted(), 2);
    }

    #[test]
    fn nothing_due_before_start() {
        let mut p = Pacer::new(24.0, 1_000_000);
        assert!(p.due(999_999).is_empty());
        assert_eq!(p.next_due_us(), 1_000_000);
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn zero_rate_panics() {
        let _ = Pacer::new(0.0, 0);
    }
}
