//! Deterministic discrete-event core: a time-ordered event queue with
//! stable FIFO ordering for simultaneous events.
//!
//! Promoted out of `swing-sim` so that both the simulator and the
//! virtual-time runtime harness ([`crate::clock::VirtualClock`]) share
//! one scheduling substrate. `swing_sim::engine` re-exports this module
//! for source compatibility.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A scheduled event.
#[derive(Debug, Clone)]
struct Scheduled<E> {
    time_us: u64,
    tie: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time_us == other.time_us && self.tie == other.tie
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse so the BinaryHeap becomes a min-heap on (time, tie).
        other
            .time_us
            .cmp(&self.time_us)
            .then(other.tie.cmp(&self.tie))
    }
}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Min-heap event queue dispensing events in (time, insertion) order.
///
/// Two events scheduled for the same microsecond pop in the order they
/// were pushed, which keeps simulations reproducible run-to-run.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_tie: u64,
    now_us: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue at t = 0.
    #[must_use]
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_tie: 0,
            now_us: 0,
        }
    }

    /// Current simulation time: the timestamp of the last popped event.
    #[must_use]
    pub fn now_us(&self) -> u64 {
        self.now_us
    }

    /// Schedule `event` at absolute time `time_us`.
    ///
    /// Scheduling in the past is clamped to `now` — the event fires next.
    pub fn schedule(&mut self, time_us: u64, event: E) {
        let time_us = time_us.max(self.now_us);
        let tie = self.next_tie;
        self.next_tie += 1;
        self.heap.push(Scheduled {
            time_us,
            tie,
            event,
        });
    }

    /// Schedule `event` after a delay relative to the current time.
    pub fn schedule_in(&mut self, delay_us: u64, event: E) {
        self.schedule(self.now_us.saturating_add(delay_us), event);
    }

    /// Pop the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(u64, E)> {
        let s = self.heap.pop()?;
        debug_assert!(s.time_us >= self.now_us, "time moved backwards");
        self.now_us = s.time_us;
        Some((s.time_us, s.event))
    }

    /// Timestamp of the next event without popping it.
    #[must_use]
    pub fn peek_time(&self) -> Option<u64> {
        self.heap.peek().map(|s| s.time_us)
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(30, "c");
        q.schedule(10, "a");
        q.schedule(20, "b");
        assert_eq!(q.pop(), Some((10, "a")));
        assert_eq!(q.pop(), Some((20, "b")));
        assert_eq!(q.pop(), Some((30, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn simultaneous_events_pop_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(5, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((5, i)));
        }
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(100, ());
        assert_eq!(q.now_us(), 0);
        q.pop();
        assert_eq!(q.now_us(), 100);
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut q = EventQueue::new();
        q.schedule(100, "first");
        q.pop();
        q.schedule_in(50, "second");
        assert_eq!(q.pop(), Some((150, "second")));
    }

    #[test]
    fn past_events_clamp_to_now() {
        let mut q = EventQueue::new();
        q.schedule(100, "a");
        q.pop();
        q.schedule(10, "late");
        assert_eq!(q.pop(), Some((100, "late")));
        assert_eq!(q.now_us(), 100);
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(10, 1);
        q.schedule(30, 3);
        assert_eq!(q.pop(), Some((10, 1)));
        q.schedule(20, 2);
        assert_eq!(q.pop(), Some((20, 2)));
        assert_eq!(q.pop(), Some((30, 3)));
        assert!(q.is_empty());
    }
}
