//! Data tuples flowing along the edges of a Swing application graph.
//!
//! The paper's programming model passes *tuples* — lists of serializable
//! named values such as "a bitmap image, a matrix of floating-point values
//! or a text string" — between function units. [`Tuple`] mirrors the Java
//! API (`data.getValue("value1")`, `data.setValues(...)`) with typed
//! accessors, and additionally carries the metadata the LRS algorithm
//! needs: a per-source sequence number and the timestamp the upstream
//! attached when dispatching the tuple.

use crate::error::{Error, Result};
use crate::payload::SharedBytes;
use crate::SeqNo;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// A single named value inside a [`Tuple`].
///
/// The two bulk variants ([`Value::Bytes`], [`Value::F32Vec`]) hold their
/// data behind shared, reference-counted buffers, so cloning a `Value` —
/// and therefore a [`Tuple`] — never copies a frame's pixels or a feature
/// vector's floats. See [`crate::payload`] for the ownership rules.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Value {
    /// Raw bytes — e.g. an encoded video frame or audio segment.
    /// Cheap to clone: the buffer is shared, not copied.
    Bytes(SharedBytes),
    /// UTF-8 text — e.g. a recognized name or translated sentence.
    Str(String),
    /// A 64-bit signed integer.
    I64(i64),
    /// A 64-bit float.
    F64(f64),
    /// A vector of 32-bit floats — e.g. a feature vector.
    /// Cheap to clone: the storage is shared, not copied.
    F32Vec(Arc<[f32]>),
    /// A boolean flag.
    Bool(bool),
}

/// The kind (discriminant) of a [`Value`], used for schema declarations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum ValueKind {
    /// Raw bytes.
    Bytes,
    /// UTF-8 text.
    Str,
    /// 64-bit signed integer.
    I64,
    /// 64-bit float.
    F64,
    /// Vector of 32-bit floats.
    F32Vec,
    /// Boolean flag.
    Bool,
}

impl Value {
    /// The kind of this value.
    #[must_use]
    pub fn kind(&self) -> ValueKind {
        match self {
            Value::Bytes(_) => ValueKind::Bytes,
            Value::Str(_) => ValueKind::Str,
            Value::I64(_) => ValueKind::I64,
            Value::F64(_) => ValueKind::F64,
            Value::F32Vec(_) => ValueKind::F32Vec,
            Value::Bool(_) => ValueKind::Bool,
        }
    }

    /// Approximate serialized size in bytes; used by the network models to
    /// compute transmission delays.
    #[must_use]
    pub fn size_bytes(&self) -> usize {
        match self {
            Value::Bytes(b) => b.len(),
            Value::Str(s) => s.len(),
            Value::I64(_) | Value::F64(_) => 8,
            Value::F32Vec(v) => v.len() * 4,
            Value::Bool(_) => 1,
        }
    }

    fn kind_name(&self) -> &'static str {
        self.kind().name()
    }
}

impl ValueKind {
    /// Human-readable name of the kind.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ValueKind::Bytes => "bytes",
            ValueKind::Str => "string",
            ValueKind::I64 => "i64",
            ValueKind::F64 => "f64",
            ValueKind::F32Vec => "f32vec",
            ValueKind::Bool => "bool",
        }
    }
}

impl fmt::Display for ValueKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl From<Vec<u8>> for Value {
    fn from(v: Vec<u8>) -> Self {
        Value::Bytes(SharedBytes::from_vec(v))
    }
}
impl From<SharedBytes> for Value {
    fn from(v: SharedBytes) -> Self {
        Value::Bytes(v)
    }
}
impl From<&[u8]> for Value {
    fn from(v: &[u8]) -> Self {
        Value::Bytes(SharedBytes::copy_from_slice(v))
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}
impl From<Vec<f32>> for Value {
    fn from(v: Vec<f32>) -> Self {
        Value::F32Vec(v.into())
    }
}
impl From<Arc<[f32]>> for Value {
    fn from(v: Arc<[f32]>) -> Self {
        Value::F32Vec(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

/// Longest field name stored inline in a [`FieldKey`].
const INLINE_KEY: usize = 22;

/// A field name. Names of up to `INLINE_KEY` (22) bytes — every key the
/// runtime and the apps use — are stored inline, so building, decoding
/// and cloning tuples never allocates per field; longer names fall back
/// to the heap.
#[derive(Clone)]
pub struct FieldKey(KeyRepr);

#[derive(Clone)]
enum KeyRepr {
    Inline { len: u8, buf: [u8; INLINE_KEY] },
    Heap(String),
}

impl FieldKey {
    /// The name as a string slice.
    #[must_use]
    #[inline]
    pub fn as_str(&self) -> &str {
        match &self.0 {
            KeyRepr::Inline { len, buf } => std::str::from_utf8(&buf[..*len as usize])
                .expect("inline keys are built from valid strings"),
            KeyRepr::Heap(s) => s,
        }
    }

    /// The raw name bytes. Comparisons go through this accessor: the
    /// bytes are always valid UTF-8 by construction, so equality on
    /// bytes equals equality on the string, without re-validating.
    #[must_use]
    #[inline]
    pub fn as_bytes(&self) -> &[u8] {
        match &self.0 {
            KeyRepr::Inline { len, buf } => &buf[..*len as usize],
            KeyRepr::Heap(s) => s.as_bytes(),
        }
    }

    /// Build a key from raw name bytes, returning `None` when they are
    /// not valid UTF-8. ASCII names — every key the runtime and apps
    /// use — take a validation-free inline fast path; anything else
    /// goes through full UTF-8 validation.
    #[must_use]
    #[inline]
    pub fn try_from_bytes(raw: &[u8]) -> Option<FieldKey> {
        if raw.len() <= INLINE_KEY && raw.iter().all(|&b| b < 0x80) {
            let mut buf = [0u8; INLINE_KEY];
            for (dst, &src) in buf.iter_mut().zip(raw) {
                *dst = src;
            }
            return Some(FieldKey(KeyRepr::Inline {
                len: raw.len() as u8,
                buf,
            }));
        }
        std::str::from_utf8(raw).ok().map(FieldKey::from)
    }

    /// Name length in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        match &self.0 {
            KeyRepr::Inline { len, .. } => *len as usize,
            KeyRepr::Heap(s) => s.len(),
        }
    }

    /// Whether the name is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl From<&str> for FieldKey {
    #[inline]
    fn from(s: &str) -> Self {
        if s.len() <= INLINE_KEY {
            let mut buf = [0u8; INLINE_KEY];
            // An explicit loop: for these tiny lengths the compiler
            // emits a handful of moves instead of a memcpy call.
            for (dst, &src) in buf.iter_mut().zip(s.as_bytes()) {
                *dst = src;
            }
            FieldKey(KeyRepr::Inline {
                len: s.len() as u8,
                buf,
            })
        } else {
            FieldKey(KeyRepr::Heap(s.to_owned()))
        }
    }
}

impl From<String> for FieldKey {
    #[inline]
    fn from(s: String) -> Self {
        if s.len() <= INLINE_KEY {
            FieldKey::from(s.as_str())
        } else {
            FieldKey(KeyRepr::Heap(s))
        }
    }
}

impl From<&String> for FieldKey {
    #[inline]
    fn from(s: &String) -> Self {
        FieldKey::from(s.as_str())
    }
}

impl std::ops::Deref for FieldKey {
    type Target = str;
    #[inline]
    fn deref(&self) -> &str {
        self.as_str()
    }
}

impl PartialEq for FieldKey {
    #[inline]
    fn eq(&self, other: &Self) -> bool {
        self.as_bytes() == other.as_bytes()
    }
}

impl Eq for FieldKey {}

impl std::hash::Hash for FieldKey {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_str().hash(state);
    }
}

impl PartialEq<str> for FieldKey {
    #[inline]
    fn eq(&self, other: &str) -> bool {
        self.as_bytes() == other.as_bytes()
    }
}

impl std::fmt::Debug for FieldKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Debug::fmt(self.as_str(), f)
    }
}

impl std::fmt::Display for FieldKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A data tuple exchanged between function units.
///
/// Fields are stored in insertion order; lookup is by key. Tuples are small
/// (a handful of fields), so linear scans beat a hash map here.
///
/// Cloning a tuple copies its (short, inline — see [`FieldKey`]) field
/// keys but *shares* bulk payloads — see [`Value`]. This is what makes
/// retaining every dispatched tuple in the in-flight retransmission
/// table affordable.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Tuple {
    seq: SeqNo,
    /// Microsecond timestamp attached by the dispatching upstream unit.
    /// Downstreams echo it back in their ACKs so the upstream can compute
    /// the tuple's end-to-end latency (paper §V-B).
    sent_at_us: u64,
    fields: Vec<(FieldKey, Value)>,
}

impl Tuple {
    /// Create an empty tuple with sequence number zero.
    #[must_use]
    pub fn new() -> Self {
        Tuple::default()
    }

    /// Create an empty tuple carrying the given sequence number.
    #[must_use]
    #[inline]
    pub fn with_seq(seq: SeqNo) -> Self {
        Tuple {
            seq,
            ..Tuple::default()
        }
    }

    /// The per-source sequence number.
    #[must_use]
    #[inline]
    pub fn seq(&self) -> SeqNo {
        self.seq
    }

    /// Set the sequence number (used by sources when emitting).
    pub fn set_seq(&mut self, seq: SeqNo) {
        self.seq = seq;
    }

    /// The dispatch timestamp attached by the upstream, in microseconds.
    #[must_use]
    #[inline]
    pub fn sent_at_us(&self) -> u64 {
        self.sent_at_us
    }

    /// Stamp the tuple with the dispatch time (done by the routing layer).
    #[inline]
    pub fn stamp_sent(&mut self, now_us: u64) {
        self.sent_at_us = now_us;
    }

    /// Add or replace a field, builder style.
    #[must_use]
    pub fn with(mut self, key: impl Into<FieldKey>, value: impl Into<Value>) -> Self {
        self.set_value(key, value);
        self
    }

    /// Reserve room for `additional` more fields. Decoders that know the
    /// field count up front use this to build the tuple in one
    /// allocation instead of growing it push by push.
    #[inline]
    pub fn reserve_fields(&mut self, additional: usize) {
        self.fields.reserve(additional);
    }

    /// Add or replace a field.
    pub fn set_value(&mut self, key: impl Into<FieldKey>, value: impl Into<Value>) {
        let key = key.into();
        let value = value.into();
        if let Some(slot) = self.fields.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = value;
        } else {
            self.fields.push((key, value));
        }
    }

    /// Look up a field by key.
    #[inline]
    pub fn get_value(&self, key: &str) -> Result<&Value> {
        self.fields
            .iter()
            .find(|(k, _)| k.as_bytes() == key.as_bytes())
            .map(|(_, v)| v)
            .ok_or_else(|| Error::MissingField(key.to_owned()))
    }

    /// Look up a byte-array field (the paper's `(byte[]) data.getValue(..)`).
    pub fn bytes(&self, key: &str) -> Result<&[u8]> {
        match self.get_value(key)? {
            Value::Bytes(b) => Ok(b.as_slice()),
            other => Err(self.kind_mismatch(key, "bytes", other)),
        }
    }

    /// Look up a byte-array field as a shared handle. The returned clone
    /// shares the field's allocation (an O(1) refcount bump), so units can
    /// forward a frame downstream without copying it.
    pub fn bytes_shared(&self, key: &str) -> Result<SharedBytes> {
        match self.get_value(key)? {
            Value::Bytes(b) => Ok(b.clone()),
            other => Err(self.kind_mismatch(key, "bytes", other)),
        }
    }

    /// Look up a string field.
    pub fn str(&self, key: &str) -> Result<&str> {
        match self.get_value(key)? {
            Value::Str(s) => Ok(s),
            other => Err(self.kind_mismatch(key, "string", other)),
        }
    }

    /// Look up an integer field.
    pub fn i64(&self, key: &str) -> Result<i64> {
        match self.get_value(key)? {
            Value::I64(v) => Ok(*v),
            other => Err(self.kind_mismatch(key, "i64", other)),
        }
    }

    /// Look up a float field.
    pub fn f64(&self, key: &str) -> Result<f64> {
        match self.get_value(key)? {
            Value::F64(v) => Ok(*v),
            other => Err(self.kind_mismatch(key, "f64", other)),
        }
    }

    /// Look up a float-vector field.
    pub fn f32_vec(&self, key: &str) -> Result<&[f32]> {
        match self.get_value(key)? {
            Value::F32Vec(v) => Ok(v),
            other => Err(self.kind_mismatch(key, "f32vec", other)),
        }
    }

    /// Look up a boolean field.
    pub fn bool(&self, key: &str) -> Result<bool> {
        match self.get_value(key)? {
            Value::Bool(v) => Ok(*v),
            other => Err(self.kind_mismatch(key, "bool", other)),
        }
    }

    /// Remove a field, returning its value if present.
    pub fn remove(&mut self, key: &str) -> Option<Value> {
        let idx = self
            .fields
            .iter()
            .position(|(k, _)| k.as_bytes() == key.as_bytes())?;
        Some(self.fields.remove(idx).1)
    }

    /// Whether a field with this key exists.
    #[must_use]
    pub fn contains(&self, key: &str) -> bool {
        self.fields
            .iter()
            .any(|(k, _)| k.as_bytes() == key.as_bytes())
    }

    /// Number of fields.
    #[must_use]
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// Whether the tuple has no fields.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Iterate over `(key, value)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.fields.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Approximate on-wire payload size in bytes (fields + keys + header).
    ///
    /// The network models use this to compute transmission delays; the wire
    /// format in `swing-net` produces frames of almost exactly this size.
    #[must_use]
    pub fn size_bytes(&self) -> usize {
        let header = 8 + 8; // seq + timestamp
        self.fields
            .iter()
            .map(|(k, v)| k.len() + v.size_bytes() + 6)
            .sum::<usize>()
            + header
    }

    fn kind_mismatch(&self, key: &str, requested: &'static str, actual: &Value) -> Error {
        Error::FieldKindMismatch {
            key: key.to_owned(),
            requested,
            actual: actual.kind_name(),
        }
    }
}

/// Declared field layout of tuples on a graph edge.
///
/// Mirrors the paper's "define tuple structure" step. Schemas are advisory:
/// units can check incoming tuples against them with [`TupleSchema::check`].
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TupleSchema {
    fields: Vec<(String, ValueKind)>,
}

impl TupleSchema {
    /// Create an empty schema.
    #[must_use]
    pub fn new() -> Self {
        TupleSchema::default()
    }

    /// Add a field declaration, builder style.
    #[must_use]
    pub fn field(mut self, key: impl Into<String>, kind: ValueKind) -> Self {
        self.fields.push((key.into(), kind));
        self
    }

    /// Declared fields in order.
    #[must_use]
    pub fn fields(&self) -> &[(String, ValueKind)] {
        &self.fields
    }

    /// Verify that `tuple` contains every declared field with the declared
    /// kind. Extra fields are allowed (operators may enrich tuples).
    pub fn check(&self, tuple: &Tuple) -> Result<()> {
        for (key, kind) in &self.fields {
            match tuple.get_value(key) {
                Ok(v) if v.kind() == *kind => {}
                Ok(v) => {
                    return Err(Error::SchemaViolation(format!(
                        "field `{key}` should be {} but is {}",
                        kind.name(),
                        v.kind().name()
                    )))
                }
                Err(_) => {
                    return Err(Error::SchemaViolation(format!(
                        "required field `{key}` ({}) is missing",
                        kind.name()
                    )))
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Tuple {
        Tuple::with_seq(SeqNo(7))
            .with("value1", vec![1u8, 2, 3])
            .with("value2", "hello")
            .with("count", 42i64)
    }

    #[test]
    fn typed_accessors_return_values() {
        let t = sample();
        assert_eq!(t.bytes("value1").unwrap(), &[1, 2, 3]);
        assert_eq!(t.str("value2").unwrap(), "hello");
        assert_eq!(t.i64("count").unwrap(), 42);
        assert_eq!(t.seq(), SeqNo(7));
    }

    #[test]
    fn missing_field_errors() {
        let t = sample();
        assert_eq!(
            t.str("nope").unwrap_err(),
            Error::MissingField("nope".into())
        );
    }

    #[test]
    fn kind_mismatch_errors_name_both_kinds() {
        let t = sample();
        let err = t.bytes("value2").unwrap_err();
        match err {
            Error::FieldKindMismatch {
                requested, actual, ..
            } => {
                assert_eq!(requested, "bytes");
                assert_eq!(actual, "string");
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn set_value_replaces_existing_key() {
        let mut t = sample();
        t.set_value("value2", "world");
        assert_eq!(t.str("value2").unwrap(), "world");
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn remove_and_contains() {
        let mut t = sample();
        assert!(t.contains("count"));
        assert_eq!(t.remove("count"), Some(Value::I64(42)));
        assert!(!t.contains("count"));
        assert_eq!(t.remove("count"), None);
    }

    #[test]
    fn size_accounts_for_payload() {
        let frame = vec![0u8; 6_000]; // the paper's 6.0 kB video frame
        let t = Tuple::new().with("frame", frame);
        assert!(t.size_bytes() >= 6_000);
        assert!(t.size_bytes() < 6_100);
    }

    #[test]
    fn stamping_records_dispatch_time() {
        let mut t = sample();
        assert_eq!(t.sent_at_us(), 0);
        t.stamp_sent(123_456);
        assert_eq!(t.sent_at_us(), 123_456);
    }

    #[test]
    fn schema_check_accepts_matching_tuple() {
        let schema = TupleSchema::new()
            .field("value1", ValueKind::Bytes)
            .field("value2", ValueKind::Str);
        schema.check(&sample()).unwrap();
    }

    #[test]
    fn schema_check_rejects_missing_and_mismatched() {
        let schema = TupleSchema::new().field("absent", ValueKind::Bool);
        assert!(schema.check(&sample()).is_err());

        let schema = TupleSchema::new().field("value2", ValueKind::Bytes);
        assert!(schema.check(&sample()).is_err());
    }

    #[test]
    fn schema_allows_extra_fields() {
        let schema = TupleSchema::new().field("value1", ValueKind::Bytes);
        schema.check(&sample()).unwrap();
    }

    #[test]
    fn value_kinds_and_sizes() {
        assert_eq!(Value::from(1.5f64).kind(), ValueKind::F64);
        assert_eq!(Value::from(true).size_bytes(), 1);
        assert_eq!(Value::from(vec![0.0f32; 4]).size_bytes(), 16);
        assert_eq!(Value::from("abc").size_bytes(), 3);
        assert_eq!(Value::from(7i64).size_bytes(), 8);
    }

    #[test]
    fn iter_preserves_insertion_order() {
        let t = sample();
        let keys: Vec<&str> = t.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec!["value1", "value2", "count"]);
    }
}
