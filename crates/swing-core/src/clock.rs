//! Time as an injected capability.
//!
//! Every layer of the runtime that needs a timestamp takes a
//! [`ClockHandle`] instead of reading a process global. Two
//! implementations cover the two execution modes:
//!
//! * [`RealClock`] — wraps a monotonic [`Instant`] epoch; `sleep_until`
//!   parks the calling thread. This is what the live multi-threaded
//!   runtime injects.
//! * [`VirtualClock`] — discrete-event time backed by the shared
//!   [`EventQueue`]. `sleep_until` *jumps* the
//!   clock forward instead of waiting, so sixty seconds of simulated
//!   traffic run in milliseconds of wall time, and two runs from the
//!   same seed replay identically (FoundationDB-style deterministic
//!   simulation of the production code paths).
//!
//! Both clocks share the microsecond timebase used across the crate.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::event::EventQueue;

/// Identifier for a timer registered with a clock.
pub type TimerId = u64;

/// A source of monotonic microsecond time plus timer scheduling.
///
/// The trait is object-safe: components hold an `Arc<dyn Clock>`
/// ([`ClockHandle`]) so the same executor/router/retransmission code
/// runs under real or virtual time without recompilation.
pub trait Clock: Send + Sync {
    /// Microseconds since this clock's epoch. Monotonic.
    fn now_us(&self) -> u64;

    /// Block (real time) or jump (virtual time) until `deadline_us`.
    ///
    /// A deadline at or before `now_us()` returns immediately.
    fn sleep_until(&self, deadline_us: u64);

    /// Register a timer to fire at `deadline_us`; returns its id.
    ///
    /// Timers are a scheduling hint: [`VirtualClock`] keeps them in its
    /// event queue so a driver can advance straight to the next
    /// deadline; [`RealClock`] only records the earliest deadline.
    fn register_timer(&self, deadline_us: u64) -> TimerId;

    /// Earliest registered timer deadline not yet fired, if any.
    fn next_timer_us(&self) -> Option<u64>;

    /// Whether this clock is discrete-event (virtual) time.
    fn is_virtual(&self) -> bool {
        false
    }
}

impl fmt::Debug for dyn Clock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Clock")
            .field("now_us", &self.now_us())
            .field("virtual", &self.is_virtual())
            .finish()
    }
}

/// Shared handle to a clock implementation.
pub type ClockHandle = Arc<dyn Clock>;

/// Monotonic wall-clock time measured from a per-instance epoch.
///
/// Each `RealClock` owns its epoch, which fixes the cross-test coupling
/// of a process-global `OnceLock` epoch: tests that construct their own
/// clock see timestamps starting near zero regardless of what ran
/// before them in the same process.
#[derive(Debug, Clone)]
pub struct RealClock {
    epoch: Instant,
    next_deadline: Arc<AtomicU64>,
}

impl Default for RealClock {
    fn default() -> Self {
        RealClock::new()
    }
}

impl RealClock {
    /// A real clock whose epoch is the moment of construction.
    #[must_use]
    pub fn new() -> Self {
        RealClock {
            epoch: Instant::now(),
            next_deadline: Arc::new(AtomicU64::new(u64::MAX)),
        }
    }

    /// Convenience: a freshly constructed clock behind a [`ClockHandle`].
    #[must_use]
    pub fn handle() -> ClockHandle {
        Arc::new(RealClock::new())
    }
}

impl Clock for RealClock {
    fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    fn sleep_until(&self, deadline_us: u64) {
        let now = self.now_us();
        if deadline_us > now {
            std::thread::sleep(Duration::from_micros(deadline_us - now));
        }
    }

    fn register_timer(&self, deadline_us: u64) -> TimerId {
        self.next_deadline.fetch_min(deadline_us, Ordering::Relaxed);
        deadline_us
    }

    fn next_timer_us(&self) -> Option<u64> {
        let d = self.next_deadline.load(Ordering::Relaxed);
        (d != u64::MAX).then_some(d)
    }
}

struct VirtualTimers {
    queue: EventQueue<TimerId>,
    next_id: TimerId,
}

/// Discrete-event virtual time.
///
/// The clock only moves when a driver advances it — either explicitly
/// via [`VirtualClock::advance_to`] / [`VirtualClock::fire_next`], or
/// implicitly when a component calls `sleep_until` (which jumps rather
/// than waits). Reads are a single atomic load, so hot dispatch paths
/// pay the same cost as under [`RealClock`].
pub struct VirtualClock {
    now: AtomicU64,
    timers: Mutex<VirtualTimers>,
}

impl fmt::Debug for VirtualClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("VirtualClock")
            .field("now_us", &self.now.load(Ordering::Relaxed))
            .finish()
    }
}

impl Default for VirtualClock {
    fn default() -> Self {
        VirtualClock::new()
    }
}

impl VirtualClock {
    /// A virtual clock starting at t = 0 with no timers.
    #[must_use]
    pub fn new() -> Self {
        VirtualClock {
            now: AtomicU64::new(0),
            timers: Mutex::new(VirtualTimers {
                queue: EventQueue::new(),
                next_id: 0,
            }),
        }
    }

    /// Convenience: a fresh virtual clock behind an `Arc`.
    #[must_use]
    pub fn shared() -> Arc<VirtualClock> {
        Arc::new(VirtualClock::new())
    }

    /// Advance time to `t_us` (never moves backwards).
    pub fn advance_to(&self, t_us: u64) {
        self.now.fetch_max(t_us, Ordering::Relaxed);
    }

    /// Pop the earliest registered timer, advancing `now` to its
    /// deadline. Returns `(deadline_us, timer_id)`.
    pub fn fire_next(&self) -> Option<(u64, TimerId)> {
        let fired = {
            let mut t = self.timers.lock().expect("virtual clock poisoned");
            t.queue.pop()
        };
        if let Some((when, _)) = fired {
            self.advance_to(when);
        }
        fired
    }
}

impl Clock for VirtualClock {
    fn now_us(&self) -> u64 {
        self.now.load(Ordering::Relaxed)
    }

    fn sleep_until(&self, deadline_us: u64) {
        // Discrete-event semantics: jump, don't wait.
        self.advance_to(deadline_us);
    }

    fn register_timer(&self, deadline_us: u64) -> TimerId {
        let mut t = self.timers.lock().expect("virtual clock poisoned");
        let id = t.next_id;
        t.next_id += 1;
        t.queue.schedule(deadline_us.max(self.now_us()), id);
        id
    }

    fn next_timer_us(&self) -> Option<u64> {
        self.timers
            .lock()
            .expect("virtual clock poisoned")
            .queue
            .peek_time()
    }

    fn is_virtual(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_clock_is_monotonic_and_advances() {
        let c = RealClock::new();
        let a = c.now_us();
        std::thread::sleep(Duration::from_millis(2));
        let b = c.now_us();
        assert!(b > a, "clock did not advance: {a} -> {b}");
    }

    #[test]
    fn fresh_real_clocks_start_near_zero() {
        // Per-instance epochs: no cross-test coupling through a global.
        let c = RealClock::new();
        assert!(c.now_us() < SECOND_IN_US, "epoch not fresh");
        const SECOND_IN_US: u64 = 1_000_000;
    }

    #[test]
    fn real_clock_sleep_until_waits() {
        let c = RealClock::new();
        let start = c.now_us();
        c.sleep_until(start + 3_000);
        assert!(c.now_us() - start >= 2_000);
        // A past deadline returns immediately.
        c.sleep_until(0);
    }

    #[test]
    fn virtual_clock_only_moves_when_driven() {
        let c = VirtualClock::new();
        assert_eq!(c.now_us(), 0);
        std::thread::sleep(Duration::from_millis(1));
        assert_eq!(c.now_us(), 0, "virtual time moved on its own");
        c.advance_to(42_000);
        assert_eq!(c.now_us(), 42_000);
        c.advance_to(10); // never backwards
        assert_eq!(c.now_us(), 42_000);
    }

    #[test]
    fn virtual_sleep_jumps() {
        let c = VirtualClock::new();
        let before = Instant::now();
        c.sleep_until(60_000_000); // "sleep" a virtual minute
        assert!(before.elapsed() < Duration::from_millis(100));
        assert_eq!(c.now_us(), 60_000_000);
    }

    #[test]
    fn virtual_timers_fire_in_order() {
        let c = VirtualClock::new();
        let t2 = c.register_timer(2_000);
        let t1 = c.register_timer(1_000);
        assert_eq!(c.next_timer_us(), Some(1_000));
        assert_eq!(c.fire_next(), Some((1_000, t1)));
        assert_eq!(c.now_us(), 1_000);
        assert_eq!(c.fire_next(), Some((2_000, t2)));
        assert_eq!(c.fire_next(), None);
    }

    #[test]
    fn clock_handle_is_object_safe() {
        let handles: Vec<ClockHandle> =
            vec![Arc::new(RealClock::new()), Arc::new(VirtualClock::new())];
        for h in &handles {
            let _ = h.now_us();
        }
        assert!(!handles[0].is_virtual());
        assert!(handles[1].is_virtual());
    }
}
