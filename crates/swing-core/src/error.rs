//! The unified error type shared by every Swing crate.
//!
//! One `#[non_exhaustive]` enum covers graph construction, tuple
//! access, routing and configuration (the historical swing-core
//! surface) *and* the network layer (wire codec, transports,
//! discovery — folded in from `swing_net::error`). `swing_net`
//! re-exports `NetError`/`NetResult` as deprecated aliases of
//! [`Error`]/[`Result`] for one release.

use crate::graph::StageId;
use crate::UnitId;
use std::fmt;
use std::io;
use std::sync::Arc;

/// Convenient result alias used across the workspace.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced by graph construction, tuple access, routing,
/// configuration and the network layer.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum Error {
    /// An edge refers to a unit id that is not part of the graph.
    UnknownUnit(UnitId),
    /// A graph operation refers to a stage id that is not part of the
    /// graph. Distinct from [`UnknownUnit`](Error::UnknownUnit): stages
    /// are logical graph vertices, units are deployed instances.
    UnknownStage(StageId),
    /// The same edge was added twice.
    DuplicateEdge(UnitId, UnitId),
    /// Connecting these units would create a cycle; Swing graphs are DAGs.
    CycleDetected(UnitId, UnitId),
    /// A source unit was given an upstream, or a sink a downstream.
    InvalidEndpoint(UnitId, &'static str),
    /// Graph validation failed (message explains which invariant broke).
    InvalidGraph(String),
    /// A tuple field with this key does not exist.
    MissingField(String),
    /// A tuple field exists but holds a different kind of value.
    FieldKindMismatch {
        /// Field key that was accessed.
        key: String,
        /// Kind the caller asked for.
        requested: &'static str,
        /// Kind actually stored.
        actual: &'static str,
    },
    /// A tuple does not match the schema declared for a unit.
    SchemaViolation(String),
    /// The router has no downstream units to send to.
    NoDownstreams,
    /// A configuration value is out of its valid range.
    InvalidConfig(String),
    /// Underlying socket / IO failure. Wrapped in an [`Arc`] so the
    /// unified error stays `Clone`; equality compares the
    /// [`io::ErrorKind`] only.
    Io(Arc<io::Error>),
    /// A frame or message could not be decoded.
    Malformed(String),
    /// The peer speaks an incompatible protocol version.
    VersionMismatch {
        /// Version we implement.
        ours: u8,
        /// Version the peer sent.
        theirs: u8,
    },
    /// A frame exceeded the maximum allowed size.
    FrameTooLarge(usize),
    /// Discovery timed out without finding a master.
    DiscoveryTimeout,
    /// The connection was closed by the peer.
    Closed,
    /// A non-blocking operation found no work ready (accept with no
    /// pending connection, read with no buffered bytes). Distinct from
    /// [`Io`](Error::Io) so poll loops can retry instead of treating the
    /// condition as a fatal transport failure.
    WouldBlock,
}

impl Error {
    /// Wrap an [`io::Error`] (equivalent to `From`, handy in closures).
    #[must_use]
    pub fn io(e: io::Error) -> Self {
        Error::Io(Arc::new(e))
    }
}

impl PartialEq for Error {
    fn eq(&self, other: &Self) -> bool {
        use Error::*;
        match (self, other) {
            (UnknownUnit(a), UnknownUnit(b)) => a == b,
            (UnknownStage(a), UnknownStage(b)) => a == b,
            (DuplicateEdge(a1, a2), DuplicateEdge(b1, b2)) => a1 == b1 && a2 == b2,
            (CycleDetected(a1, a2), CycleDetected(b1, b2)) => a1 == b1 && a2 == b2,
            (InvalidEndpoint(a, aw), InvalidEndpoint(b, bw)) => a == b && aw == bw,
            (InvalidGraph(a), InvalidGraph(b)) => a == b,
            (MissingField(a), MissingField(b)) => a == b,
            (
                FieldKindMismatch {
                    key: ak,
                    requested: ar,
                    actual: aa,
                },
                FieldKindMismatch {
                    key: bk,
                    requested: br,
                    actual: ba,
                },
            ) => ak == bk && ar == br && aa == ba,
            (SchemaViolation(a), SchemaViolation(b)) => a == b,
            (NoDownstreams, NoDownstreams) => true,
            (InvalidConfig(a), InvalidConfig(b)) => a == b,
            // io::Error carries no structural equality; kind is the
            // meaningful comparison for tests and retries.
            (Io(a), Io(b)) => a.kind() == b.kind(),
            (Malformed(a), Malformed(b)) => a == b,
            (
                VersionMismatch {
                    ours: ao,
                    theirs: at,
                },
                VersionMismatch {
                    ours: bo,
                    theirs: bt,
                },
            ) => ao == bo && at == bt,
            (FrameTooLarge(a), FrameTooLarge(b)) => a == b,
            (DiscoveryTimeout, DiscoveryTimeout) => true,
            (Closed, Closed) => true,
            (WouldBlock, WouldBlock) => true,
            _ => false,
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::UnknownUnit(u) => write!(f, "unknown function unit {u}"),
            Error::UnknownStage(s) => write!(f, "unknown stage {s}"),
            Error::DuplicateEdge(a, b) => write!(f, "edge {a} -> {b} already exists"),
            Error::CycleDetected(a, b) => {
                write!(
                    f,
                    "edge {a} -> {b} would create a cycle in the dataflow graph"
                )
            }
            Error::InvalidEndpoint(u, why) => write!(f, "invalid endpoint {u}: {why}"),
            Error::InvalidGraph(msg) => write!(f, "invalid application graph: {msg}"),
            Error::MissingField(k) => write!(f, "tuple has no field `{k}`"),
            Error::FieldKindMismatch {
                key,
                requested,
                actual,
            } => write!(
                f,
                "tuple field `{key}` holds {actual}, but {requested} was requested"
            ),
            Error::SchemaViolation(msg) => write!(f, "tuple violates schema: {msg}"),
            Error::NoDownstreams => write!(f, "router has no downstream function units"),
            Error::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            Error::Io(e) => write!(f, "io error: {e}"),
            Error::Malformed(msg) => write!(f, "malformed message: {msg}"),
            Error::VersionMismatch { ours, theirs } => {
                write!(f, "protocol version mismatch: ours {ours}, peer {theirs}")
            }
            Error::FrameTooLarge(n) => write!(f, "frame of {n} bytes exceeds limit"),
            Error::DiscoveryTimeout => write!(f, "no master discovered before timeout"),
            Error::Closed => write!(f, "connection closed by peer"),
            Error::WouldBlock => write!(f, "operation would block; no work ready"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(&**e),
            _ => None,
        }
    }
}

impl From<io::Error> for Error {
    fn from(e: io::Error) -> Self {
        Error::Io(Arc::new(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = Error::UnknownUnit(UnitId(3));
        assert!(e.to_string().contains("u3"));

        let e = Error::FieldKindMismatch {
            key: "value1".into(),
            requested: "bytes",
            actual: "string",
        };
        let msg = e.to_string();
        assert!(msg.contains("value1") && msg.contains("bytes") && msg.contains("string"));

        let e = Error::VersionMismatch { ours: 1, theirs: 9 };
        assert!(e.to_string().contains('9'));
        assert!(Error::FrameTooLarge(123).to_string().contains("123"));
    }

    #[test]
    fn error_implements_std_error() {
        fn takes_err(_e: &dyn std::error::Error) {}
        takes_err(&Error::NoDownstreams);
    }

    #[test]
    fn errors_compare_equal() {
        assert_eq!(Error::NoDownstreams, Error::NoDownstreams);
        assert_ne!(Error::UnknownUnit(UnitId(1)), Error::UnknownUnit(UnitId(2)));
        assert_eq!(
            Error::UnknownStage(StageId(4)),
            Error::UnknownStage(StageId(4))
        );
        assert_ne!(
            Error::UnknownStage(StageId(4)),
            Error::UnknownStage(StageId(5))
        );
        // Stage and unit errors never conflate, even for equal raw ids.
        assert_ne!(
            Error::UnknownStage(StageId(4)),
            Error::UnknownUnit(UnitId(4))
        );
    }

    #[test]
    fn io_errors_convert_chain_and_compare_by_kind() {
        let e: Error = io::Error::new(io::ErrorKind::BrokenPipe, "pipe").into();
        assert!(matches!(e, Error::Io(_)));
        assert!(std::error::Error::source(&e).is_some());
        assert!(std::error::Error::source(&Error::Closed).is_none());
        // Clone shares the same Arc'd io::Error.
        let e2 = e.clone();
        assert_eq!(e, e2);
        // Same kind, different message: equal by design.
        assert_eq!(
            e,
            Error::io(io::Error::new(io::ErrorKind::BrokenPipe, "other"))
        );
        assert_ne!(
            e,
            Error::io(io::Error::new(io::ErrorKind::NotFound, "pipe"))
        );
    }
}
