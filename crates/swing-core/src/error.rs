//! Error type shared by the swing-core APIs.

use crate::UnitId;
use std::fmt;

/// Convenient result alias used across swing-core.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced by graph construction, tuple access and routing.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// An edge refers to a unit id that is not part of the graph.
    UnknownUnit(UnitId),
    /// The same edge was added twice.
    DuplicateEdge(UnitId, UnitId),
    /// Connecting these units would create a cycle; Swing graphs are DAGs.
    CycleDetected(UnitId, UnitId),
    /// A source unit was given an upstream, or a sink a downstream.
    InvalidEndpoint(UnitId, &'static str),
    /// Graph validation failed (message explains which invariant broke).
    InvalidGraph(String),
    /// A tuple field with this key does not exist.
    MissingField(String),
    /// A tuple field exists but holds a different kind of value.
    FieldKindMismatch {
        /// Field key that was accessed.
        key: String,
        /// Kind the caller asked for.
        requested: &'static str,
        /// Kind actually stored.
        actual: &'static str,
    },
    /// A tuple does not match the schema declared for a unit.
    SchemaViolation(String),
    /// The router has no downstream units to send to.
    NoDownstreams,
    /// A configuration value is out of its valid range.
    InvalidConfig(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::UnknownUnit(u) => write!(f, "unknown function unit {u}"),
            Error::DuplicateEdge(a, b) => write!(f, "edge {a} -> {b} already exists"),
            Error::CycleDetected(a, b) => {
                write!(
                    f,
                    "edge {a} -> {b} would create a cycle in the dataflow graph"
                )
            }
            Error::InvalidEndpoint(u, why) => write!(f, "invalid endpoint {u}: {why}"),
            Error::InvalidGraph(msg) => write!(f, "invalid application graph: {msg}"),
            Error::MissingField(k) => write!(f, "tuple has no field `{k}`"),
            Error::FieldKindMismatch {
                key,
                requested,
                actual,
            } => write!(
                f,
                "tuple field `{key}` holds {actual}, but {requested} was requested"
            ),
            Error::SchemaViolation(msg) => write!(f, "tuple violates schema: {msg}"),
            Error::NoDownstreams => write!(f, "router has no downstream function units"),
            Error::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = Error::UnknownUnit(UnitId(3));
        assert!(e.to_string().contains("u3"));

        let e = Error::FieldKindMismatch {
            key: "value1".into(),
            requested: "bytes",
            actual: "string",
        };
        let msg = e.to_string();
        assert!(msg.contains("value1") && msg.contains("bytes") && msg.contains("string"));
    }

    #[test]
    fn error_implements_std_error() {
        fn takes_err(_e: &dyn std::error::Error) {}
        takes_err(&Error::NoDownstreams);
    }

    #[test]
    fn errors_compare_equal() {
        assert_eq!(Error::NoDownstreams, Error::NoDownstreams);
        assert_ne!(Error::UnknownUnit(UnitId(1)), Error::UnknownUnit(UnitId(2)));
    }
}
