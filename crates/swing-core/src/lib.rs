//! # swing-core
//!
//! Core programming model and resource-management algorithms of **Swing**,
//! a framework that aggregates a swarm of co-located mobile devices to
//! perform collaborative computation on sensed data streams
//! (Fan, Salonidis, Lee — *Swing: Swarm Computing for Mobile Sensing*,
//! ICDCS 2018).
//!
//! This crate is deliberately free of I/O: every algorithmic API takes
//! explicit microsecond timestamps so the same code drives both the
//! deterministic discrete-event simulator (`swing-sim`) and the live
//! multi-threaded runtime (`swing-runtime`). Time itself is an injected
//! capability — the [`clock`] module defines the [`Clock`] trait with a
//! monotonic [`RealClock`] and a discrete-event [`VirtualClock`] backed
//! by the shared [`event::EventQueue`], so the *production* executors can
//! be replayed deterministically under virtual time.
//!
//! ## What lives here
//!
//! * **Dataflow programming model** — applications are directed graphs of
//!   *function units* exchanging [`Tuple`]s (see the `graph`, `unit` and
//!   `tuple` modules).
//! * **LRS** — *Latency-based Routing with worker Selection*, the paper's
//!   distributed resource-management algorithm, plus the four baselines it
//!   is evaluated against (RR, PR, LR, PRS) ([`routing`]).
//! * **Latency estimation** — ACK-driven moving-average latency estimates
//!   with periodic round-robin probing of unselected workers
//!   ([`estimator`]).
//! * **Reordering service** — the sink-side buffer that restores tuple
//!   order before playback ([`reorder`]).
//!
//! ## Quick example
//!
//! ```
//! use swing_core::graph::AppGraph;
//! use swing_core::routing::{Policy, Router, RouterConfig};
//! use swing_core::UnitId;
//!
//! // Describe the face-recognition app from the paper: a source that
//! // captures frames, a recognizer stage, and a display sink.
//! let mut g = AppGraph::new("face-recognition");
//! let src = g.add_source("camera");
//! let rec = g.add_operator("recognize");
//! let snk = g.add_sink("display");
//! g.connect(src, rec).unwrap();
//! g.connect(rec, snk).unwrap();
//! g.validate().unwrap();
//!
//! // An upstream unit routes tuples to three replicas of `recognize`
//! // deployed on different devices, using the LRS policy.
//! let mut router = Router::new(RouterConfig::new(Policy::Lrs), 42);
//! for worker in [UnitId(10), UnitId(11), UnitId(12)] {
//!     router.add_downstream(worker, 0);
//! }
//! let dest = router.route(1_000).unwrap();
//! assert!([UnitId(10), UnitId(11), UnitId(12)].contains(&dest));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod clock;
pub mod config;
pub mod dedup;
pub mod error;
pub mod estimator;
pub mod event;
pub mod flow;
pub mod graph;
pub mod payload;
pub mod rate;
pub mod reorder;
pub mod rng;
pub mod routing;
pub mod stateful;
pub mod stats;
pub mod timing;
pub mod tuple;
pub mod unit;

mod id;

pub use clock::{Clock, ClockHandle, RealClock, VirtualClock};
pub use error::{Error, Result};
pub use event::EventQueue;
pub use flow::{FlowConfig, Mailbox, OverloadPolicy};
pub use id::{DeviceId, SeqNo, UnitId};
pub use payload::SharedBytes;
pub use rng::DetRng;
pub use tuple::{FieldKey, Tuple, Value, ValueKind};

/// One-stop imports for building Swing applications.
///
/// Covers the types every example and most integrations need: the
/// dataflow graph, routing policies and configuration, tuples, clocks
/// and the overload-control knobs. The runtime crate re-exports this
/// (extended with its builders) as `swing_runtime::prelude`.
///
/// ```
/// use swing_core::prelude::*;
///
/// let mut g = AppGraph::new("demo");
/// let src = g.add_source("camera");
/// let snk = g.add_sink("display");
/// g.connect(src, snk).unwrap();
/// let router = Router::new(RouterConfig::new(Policy::Lrs), 1);
/// assert_eq!(router.policy(), Policy::Lrs);
/// ```
pub mod prelude {
    pub use crate::clock::{Clock, ClockHandle, RealClock, VirtualClock};
    pub use crate::config::{ReorderConfig, RetryConfig, RouterConfig};
    pub use crate::flow::{FlowConfig, Mailbox, OverloadPolicy};
    pub use crate::graph::{AppGraph, EdgeKind};
    pub use crate::id::{DeviceId, SeqNo, UnitId};
    pub use crate::payload::SharedBytes;
    pub use crate::routing::{
        Metric, Policy, Router, RouterSnapshot, SelectionDecision, SelectionPolicy, WorkerVitals,
    };
    pub use crate::stateful::{Keyed, StatefulUnit, WindowSpec};
    pub use crate::tuple::{FieldKey, Tuple, Value, ValueKind};
    pub use crate::unit::{
        closure_sink, closure_source, closure_unit, Context, FunctionUnit, PassThrough, SinkUnit,
        SourceUnit,
    };
    pub use crate::{Error, Result, MILLISECOND_US, SECOND_US};
}

/// One second expressed in the microsecond timebase used across the crate.
pub const SECOND_US: u64 = 1_000_000;

/// One millisecond expressed in the microsecond timebase.
pub const MILLISECOND_US: u64 = 1_000;

/// Convert a microsecond duration to fractional milliseconds.
#[inline]
pub fn us_to_ms(us: u64) -> f64 {
    us as f64 / MILLISECOND_US as f64
}

/// Convert fractional milliseconds to microseconds (saturating at zero).
#[inline]
pub fn ms_to_us(ms: f64) -> u64 {
    if ms <= 0.0 {
        0
    } else {
        (ms * MILLISECOND_US as f64).round() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_conversions_roundtrip() {
        assert_eq!(us_to_ms(1_500), 1.5);
        assert_eq!(ms_to_us(1.5), 1_500);
        assert_eq!(ms_to_us(-3.0), 0);
        assert_eq!(ms_to_us(us_to_ms(123_456)), 123_456);
    }

    #[test]
    fn constants_are_consistent() {
        assert_eq!(SECOND_US, 1_000 * MILLISECOND_US);
    }
}
