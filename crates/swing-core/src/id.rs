//! Strongly-typed identifiers shared across the Swing crates.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a deployed function-unit *instance*.
///
/// A logical stage of the application graph (e.g. `recognize`) may be
/// replicated on several devices; each replica gets its own `UnitId`.
/// Upstream routing tables are keyed by these instance ids.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct UnitId(pub u32);

impl fmt::Display for UnitId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "u{}", self.0)
    }
}

impl From<u32> for UnitId {
    fn from(v: u32) -> Self {
        UnitId(v)
    }
}

/// Identifier of a physical device participating in the swarm.
///
/// In the paper's testbed these are the phones `A` through `I`; the
/// [`Display`](fmt::Display) impl uses the same letters for the first 26
/// ids to keep experiment output readable.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct DeviceId(pub u32);

impl fmt::Display for DeviceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 26 {
            write!(f, "{}", (b'A' + self.0 as u8) as char)
        } else {
            write!(f, "dev{}", self.0)
        }
    }
}

impl From<u32> for DeviceId {
    fn from(v: u32) -> Self {
        DeviceId(v)
    }
}

/// Monotone per-source sequence number attached to every tuple.
///
/// Used by the sink-side [reordering service](crate::reorder) to restore
/// the order in which tuples were sensed.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct SeqNo(pub u64);

impl SeqNo {
    /// The sequence number following this one.
    #[must_use]
    pub fn next(self) -> SeqNo {
        SeqNo(self.0 + 1)
    }
}

impl fmt::Display for SeqNo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

impl From<u64> for SeqNo {
    fn from(v: u64) -> Self {
        SeqNo(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn device_ids_display_as_testbed_letters() {
        assert_eq!(DeviceId(0).to_string(), "A");
        assert_eq!(DeviceId(4).to_string(), "E");
        assert_eq!(DeviceId(8).to_string(), "I");
        assert_eq!(DeviceId(30).to_string(), "dev30");
    }

    #[test]
    fn unit_id_display() {
        assert_eq!(UnitId(7).to_string(), "u7");
    }

    #[test]
    fn seqno_next_increments() {
        assert_eq!(SeqNo(0).next(), SeqNo(1));
        assert_eq!(SeqNo(41).next().to_string(), "#42");
    }

    #[test]
    fn ids_order_by_numeric_value() {
        assert!(UnitId(2) < UnitId(10));
        assert!(SeqNo(2) < SeqNo(10));
        assert!(DeviceId(0) < DeviceId(1));
    }

    #[test]
    fn from_conversions() {
        assert_eq!(UnitId::from(3), UnitId(3));
        assert_eq!(DeviceId::from(3), DeviceId(3));
        assert_eq!(SeqNo::from(3), SeqNo(3));
    }
}
