//! Keyed, windowed stateful operators.
//!
//! A plain [`FunctionUnit`] is stateless from the runtime's point of
//! view: any replica may process any tuple, which is exactly what
//! `Broadcast` edges exploit. A [`StatefulUnit`] instead declares a
//! *key field* and keeps one state cell per key value, which only works
//! when the upstream edge is
//! [`KeyBy`](crate::graph::EdgeKind::KeyBy)-partitioned on the same
//! field — then every tuple of a key reaches the one replica owning
//! that key's cell, and no state is ever shared across instances.
//!
//! State is scoped to operator-declared **windows** ([`WindowSpec`]):
//! tumbling (disjoint spans) or sliding (overlapping spans on a slide
//! step). Window placement is driven entirely by the context timestamp
//! `ctx.now_us`, which comes from the injected [`Clock`](crate::clock):
//! under [`VirtualClock`](crate::clock::VirtualClock) a SimSwarm replay
//! assigns every tuple to the same window every run, byte-identically.
//!
//! The [`Keyed`] adapter turns any `StatefulUnit` into a
//! [`FunctionUnit`]: it hashes the key field to canonical bytes
//! ([`tuple_key_bytes`]), lazily closes expired windows in
//! deterministic (key, window-start) order, folds the input into every
//! window pane containing `now`, and then lets the operator emit for
//! the input itself with read access to the freshest pane.

use crate::error::{Error, Result};
use crate::routing::partition::tuple_key_bytes;
use crate::tuple::Tuple;
use crate::unit::{Context, FunctionUnit};
use std::collections::BTreeMap;
use std::fmt;

/// Window placement declared by a stateful operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WindowSpec {
    /// Disjoint windows of `span_us`: a timestamp `t` belongs to
    /// exactly the window starting at `t - t % span_us`.
    Tumbling {
        /// Window length in microseconds (must be > 0).
        span_us: u64,
    },
    /// Overlapping windows of `span_us`, a new one starting every
    /// `slide_us`: a timestamp belongs to `span/slide` windows.
    Sliding {
        /// Window length in microseconds (must be > 0).
        span_us: u64,
        /// Start-to-start distance; must divide `span_us` evenly.
        slide_us: u64,
    },
}

impl WindowSpec {
    /// A tumbling window of `span_us`.
    #[must_use]
    pub fn tumbling(span_us: u64) -> Self {
        WindowSpec::Tumbling { span_us }
    }

    /// A sliding window of `span_us`, sliding by `slide_us`.
    #[must_use]
    pub fn sliding(span_us: u64, slide_us: u64) -> Self {
        WindowSpec::Sliding { span_us, slide_us }
    }

    /// Window length in microseconds.
    #[must_use]
    pub fn span_us(&self) -> u64 {
        match *self {
            WindowSpec::Tumbling { span_us } | WindowSpec::Sliding { span_us, .. } => span_us,
        }
    }

    /// Start-to-start distance; equals the span for tumbling windows.
    #[must_use]
    pub fn slide_us(&self) -> u64 {
        match *self {
            WindowSpec::Tumbling { span_us } => span_us,
            WindowSpec::Sliding { slide_us, .. } => slide_us,
        }
    }

    /// Check the invariants: positive span and slide, slide dividing
    /// the span (so window starts form a regular grid and a tumbling
    /// window is exactly a sliding one with `slide == span`).
    pub fn validate(&self) -> Result<()> {
        let (span, slide) = (self.span_us(), self.slide_us());
        if span == 0 || slide == 0 {
            return Err(Error::InvalidConfig(
                "window span and slide must be positive".into(),
            ));
        }
        if !span.is_multiple_of(slide) {
            return Err(Error::InvalidConfig(format!(
                "window slide {slide} µs must divide the span {span} µs"
            )));
        }
        Ok(())
    }

    /// Start timestamps of every window containing `now_us`, ascending.
    #[must_use]
    pub fn window_starts(&self, now_us: u64) -> Vec<u64> {
        let (span, slide) = (self.span_us(), self.slide_us());
        let newest = now_us - now_us % slide;
        let panes = span / slide;
        let mut starts = Vec::with_capacity(panes as usize);
        // Oldest window still containing `now` starts (panes-1) slides
        // before the newest; clamp at the epoch.
        for i in (0..panes).rev() {
            let back = i * slide;
            if back <= newest {
                starts.push(newest - back);
            }
        }
        starts
    }
}

impl fmt::Display for WindowSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            WindowSpec::Tumbling { span_us } => write!(f, "tumbling({span_us}µs)"),
            WindowSpec::Sliding { span_us, slide_us } => {
                write!(f, "sliding({span_us}µs/{slide_us}µs)")
            }
        }
    }
}

/// A keyed, windowed operator: per-key state cells scoped to windows.
///
/// Implementations never see tuples of keys they don't own — the
/// upstream [`KeyBy`](crate::graph::EdgeKind::KeyBy) edge guarantees
/// it — so `State` needs no synchronization and no cross-instance
/// merge during normal operation.
pub trait StatefulUnit: Send {
    /// Per-(key, window) accumulator. `Default` is the empty state a
    /// fresh cell starts from.
    type State: Default + Send;

    /// The tuple field that carries the key. Must match the field
    /// declared on the upstream `KeyBy` edge.
    fn key_field(&self) -> &str;

    /// The window placement for this operator's state.
    fn window(&self) -> WindowSpec;

    /// Fold one input into one (key, window) state cell. For sliding
    /// windows this runs once per window pane containing the input's
    /// timestamp, oldest pane first.
    fn accumulate(&mut self, state: &mut Self::State, data: &Tuple, now_us: u64);

    /// Emit output(s) for the input itself, with read access to the
    /// freshest window's state (already including this input).
    /// Enrichment-style operators (one output per input) do all their
    /// emitting here, which keeps the runtime's sequence accounting
    /// exact.
    fn process(&mut self, state: &Self::State, data: Tuple, ctx: &mut Context<'_>);

    /// A window for `key` closed (time advanced past its end). The
    /// state cell is handed over by value; emit aggregates through
    /// `ctx` or drop them (the default).
    fn on_window_close(
        &mut self,
        key: &[u8],
        window_start_us: u64,
        state: Self::State,
        ctx: &mut Context<'_>,
    ) {
        let _ = (key, window_start_us, state, ctx);
    }
}

/// Adapter running a [`StatefulUnit`] as a plain [`FunctionUnit`].
///
/// Keeps state cells in `BTreeMap`s keyed by canonical key bytes and
/// window start, so iteration — and therefore every close/emit order —
/// is deterministic across runs and hosts.
pub struct Keyed<U: StatefulUnit> {
    inner: U,
    spec: WindowSpec,
    /// key bytes -> window start -> accumulator.
    cells: BTreeMap<Vec<u8>, BTreeMap<u64, U::State>>,
    /// Windows closed so far (diagnostics).
    closed: u64,
}

impl<U: StatefulUnit> fmt::Debug for Keyed<U> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Keyed")
            .field("spec", &self.spec)
            .field("keys", &self.cells.len())
            .field("closed", &self.closed)
            .finish_non_exhaustive()
    }
}

impl<U: StatefulUnit> Keyed<U> {
    /// Wrap `inner`, validating its declared window.
    ///
    /// # Errors
    /// Fails if the operator's [`WindowSpec`] is invalid.
    pub fn new(inner: U) -> Result<Self> {
        let spec = inner.window();
        spec.validate()?;
        Ok(Keyed {
            inner,
            spec,
            cells: BTreeMap::new(),
            closed: 0,
        })
    }

    /// The wrapped operator.
    #[must_use]
    pub fn inner(&self) -> &U {
        &self.inner
    }

    /// Distinct keys that have owned a state cell so far.
    #[must_use]
    pub fn key_count(&self) -> usize {
        self.cells.len()
    }

    /// Currently open (key, window) cells.
    #[must_use]
    pub fn open_windows(&self) -> usize {
        self.cells.values().map(BTreeMap::len).sum()
    }

    /// Windows closed so far.
    #[must_use]
    pub fn closed_windows(&self) -> u64 {
        self.closed
    }

    /// Close every window whose end lies at or before `now_us`,
    /// invoking `on_window_close` in (key, window-start) order.
    fn close_expired(&mut self, now_us: u64, ctx: &mut Context<'_>) {
        let span = self.spec.span_us();
        // Collect first: on_window_close may not re-enter the cell map.
        let mut due: Vec<(Vec<u8>, u64, U::State)> = Vec::new();
        for (key, panes) in &mut self.cells {
            while let Some((&start, _)) = panes.first_key_value() {
                if start + span > now_us {
                    break;
                }
                let state = panes.remove(&start).expect("first key exists");
                due.push((key.clone(), start, state));
            }
        }
        for (key, start, state) in due {
            self.closed += 1;
            self.inner.on_window_close(&key, start, state, ctx);
        }
    }

    /// Flush every still-open window through `on_window_close`, oldest
    /// first — end-of-stream teardown for tests and batch drains.
    /// (`FunctionUnit::on_stop` has no emitter, so the runtime cannot
    /// route flush emissions; call this explicitly where they matter.)
    pub fn flush(&mut self, ctx: &mut Context<'_>) {
        self.close_expired(u64::MAX, ctx);
    }
}

impl<U: StatefulUnit> FunctionUnit for Keyed<U> {
    fn process_data(&mut self, data: Tuple, ctx: &mut Context<'_>) {
        let now = ctx.now_us;
        self.close_expired(now, ctx);
        let key = tuple_key_bytes(&data, self.inner.key_field());
        let starts = self.spec.window_starts(now);
        let panes = self.cells.entry(key).or_default();
        for &start in &starts {
            self.inner
                .accumulate(panes.entry(start).or_default(), &data, now);
        }
        let newest = *starts.last().expect("window_starts is never empty");
        let state = panes.get(&newest).expect("pane was just accumulated");
        self.inner.process(state, data, ctx);
    }

    fn on_start(&mut self) {}

    fn on_stop(&mut self) {
        // Deliberately no implicit flush: there is no emitter here.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SECOND_US;

    /// Per-key running count; emits the input enriched with the count,
    /// and a summary tuple when a window closes.
    struct CountPerKey {
        emit_on_close: bool,
    }

    impl StatefulUnit for CountPerKey {
        type State = i64;

        fn key_field(&self) -> &str {
            "k"
        }

        fn window(&self) -> WindowSpec {
            WindowSpec::tumbling(SECOND_US)
        }

        fn accumulate(&mut self, state: &mut i64, _data: &Tuple, _now_us: u64) {
            *state += 1;
        }

        fn process(&mut self, state: &i64, data: Tuple, ctx: &mut Context<'_>) {
            ctx.send(data.with("count", *state));
        }

        fn on_window_close(
            &mut self,
            key: &[u8],
            window_start_us: u64,
            state: i64,
            ctx: &mut Context<'_>,
        ) {
            if self.emit_on_close {
                ctx.send(
                    Tuple::new()
                        .with("key_len", key.len() as i64)
                        .with("window", window_start_us as i64)
                        .with("total", state),
                );
            }
        }
    }

    fn t(k: i64) -> Tuple {
        Tuple::new().with("k", k)
    }

    #[test]
    fn tumbling_counts_reset_per_window() {
        let mut op = Keyed::new(CountPerKey {
            emit_on_close: false,
        })
        .unwrap();
        let mut out = Vec::new();
        // Three tuples of key 1 and one of key 2 in the first window.
        for (i, key) in [(0u64, 1i64), (1, 1), (2, 2), (3, 1)] {
            let mut ctx = Context::new(i * 1_000, &mut out);
            op.process_data(t(key), &mut ctx);
        }
        let counts: Vec<i64> = out.iter().map(|o| o.i64("count").unwrap()).collect();
        assert_eq!(counts, vec![1, 2, 1, 3], "per-key running counts");
        assert_eq!(op.key_count(), 2);
        assert_eq!(op.open_windows(), 2);

        // Next window: counts restart.
        let mut ctx = Context::new(SECOND_US + 5, &mut out);
        op.process_data(t(1), &mut ctx);
        assert_eq!(out.last().unwrap().i64("count").unwrap(), 1);
        assert_eq!(op.closed_windows(), 2, "both key windows closed");
    }

    #[test]
    fn close_emissions_fire_in_key_order() {
        let mut op = Keyed::new(CountPerKey {
            emit_on_close: true,
        })
        .unwrap();
        let mut out = Vec::new();
        for key in [5i64, 3, 5] {
            let mut ctx = Context::new(0, &mut out);
            op.process_data(t(key), &mut ctx);
        }
        out.clear();
        let mut ctx = Context::new(2 * SECOND_US, &mut out);
        op.process_data(t(9), &mut ctx);
        // Two window-close summaries (keys 3 then 5, canonical byte
        // order) followed by the enriched input itself.
        assert_eq!(out.len(), 3);
        assert_eq!(out[0].i64("total").unwrap(), 1);
        assert_eq!(out[1].i64("total").unwrap(), 2);
        assert!(out[2].i64("count").is_ok());

        // flush() drains the remaining open window.
        let mut ctx = Context::new(2 * SECOND_US, &mut out);
        op.flush(&mut ctx);
        assert_eq!(op.open_windows(), 0);
        assert_eq!(out.last().unwrap().i64("total").unwrap(), 1);
    }

    #[test]
    fn sliding_windows_accumulate_every_pane() {
        struct Sum;
        impl StatefulUnit for Sum {
            type State = i64;
            fn key_field(&self) -> &str {
                "k"
            }
            fn window(&self) -> WindowSpec {
                WindowSpec::sliding(4_000, 1_000)
            }
            fn accumulate(&mut self, state: &mut i64, data: &Tuple, _now: u64) {
                *state += data.i64("v").unwrap_or(0);
            }
            fn process(&mut self, state: &i64, data: Tuple, ctx: &mut Context<'_>) {
                ctx.send(data.with("sum", *state));
            }
        }
        let mut op = Keyed::new(Sum).unwrap();
        let mut out = Vec::new();
        for (now, v) in [(500u64, 1i64), (1_500, 10), (2_500, 100)] {
            let mut ctx = Context::new(now, &mut out);
            op.process_data(Tuple::new().with("k", 1i64).with("v", v), &mut ctx);
        }
        // Freshest pane at t=2500 starts at 2000 and saw only v=100;
        // the pane starting at 0 holds all three.
        assert_eq!(out[2].i64("sum").unwrap(), 100);
        assert!(op.open_windows() >= 3);
        // Window [0, 4000) still open at t=2500; closed after t=4000.
        let mut ctx = Context::new(4_000, &mut out);
        op.process_data(Tuple::new().with("k", 1i64).with("v", 0), &mut ctx);
        assert!(op.closed_windows() >= 1);
    }

    #[test]
    fn window_starts_cover_now_and_respect_epoch() {
        let w = WindowSpec::sliding(3_000, 1_000);
        assert_eq!(w.window_starts(2_500), vec![0, 1_000, 2_000]);
        // Near the epoch there are fewer containing windows.
        assert_eq!(w.window_starts(500), vec![0]);
        let t = WindowSpec::tumbling(1_000);
        assert_eq!(t.window_starts(2_500), vec![2_000]);
        for spec in [w, t] {
            for now in [0u64, 999, 1_000, 123_456] {
                for s in spec.window_starts(now) {
                    assert!(s <= now && now < s + spec.span_us());
                }
            }
        }
    }

    #[test]
    fn invalid_windows_are_rejected() {
        assert!(WindowSpec::tumbling(0).validate().is_err());
        assert!(WindowSpec::sliding(3_000, 2_000).validate().is_err());
        assert!(WindowSpec::sliding(3_000, 0).validate().is_err());
        assert!(WindowSpec::sliding(3_000, 3_000).validate().is_ok());
        struct Bad;
        impl StatefulUnit for Bad {
            type State = ();
            fn key_field(&self) -> &str {
                "k"
            }
            fn window(&self) -> WindowSpec {
                WindowSpec::tumbling(0)
            }
            fn accumulate(&mut self, _: &mut (), _: &Tuple, _: u64) {}
            fn process(&mut self, _: &(), _: Tuple, _: &mut Context<'_>) {}
        }
        assert!(Keyed::new(Bad).is_err());
    }

    #[test]
    fn missing_key_field_lands_in_one_cell() {
        let mut op = Keyed::new(CountPerKey {
            emit_on_close: false,
        })
        .unwrap();
        let mut out = Vec::new();
        for _ in 0..3 {
            let mut ctx = Context::new(0, &mut out);
            op.process_data(Tuple::new().with("other", 1i64), &mut ctx);
        }
        assert_eq!(op.key_count(), 1, "keyless tuples share one cell");
        assert_eq!(out.last().unwrap().i64("count").unwrap(), 3);
    }
}
