//! Receiver-side duplicate suppression for at-least-once delivery.
//!
//! The runtime's retransmission layer (ACK-deadline timers at each
//! upstream) re-sends tuples whose ACK did not arrive in time. A slow —
//! not lost — first copy then produces a *duplicate* at the receiver.
//! Each receiving executor keeps one [`DedupWindow`] per upstream and
//! re-ACKs duplicates without processing them, turning at-least-once
//! delivery into at-most-once *execution* per stage.
//!
//! The window is bounded: it remembers the last `capacity` distinct
//! sequence numbers seen from one upstream. A duplicate older than the
//! window can in principle slip through, but the retransmission layer
//! bounds how far behind a copy can arrive (max_retries × deadline
//! ceiling), so sizing the window above the upstream's in-flight budget
//! makes misses practically impossible — and the sink's reorder buffer
//! still drops anything behind its playback frontier.

use crate::SeqNo;
use std::collections::{HashSet, VecDeque};

/// Bounded memory of recently seen sequence numbers from one upstream.
#[derive(Debug, Clone)]
pub struct DedupWindow {
    capacity: usize,
    /// Insertion order, oldest first; evicted when over capacity.
    order: VecDeque<SeqNo>,
    seen: HashSet<SeqNo>,
}

impl DedupWindow {
    /// Create a window remembering the last `capacity` distinct sequence
    /// numbers (minimum 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        DedupWindow {
            capacity,
            order: VecDeque::with_capacity(capacity),
            seen: HashSet::with_capacity(capacity),
        }
    }

    /// Record `seq`; returns `true` if it is fresh (process it) and
    /// `false` if it was already in the window (duplicate — re-ACK and
    /// drop). Fresh insertions evict the oldest remembered entry once the
    /// window is full; duplicates do not change the window.
    pub fn observe(&mut self, seq: SeqNo) -> bool {
        if self.seen.contains(&seq) {
            return false;
        }
        if self.order.len() == self.capacity {
            if let Some(old) = self.order.pop_front() {
                self.seen.remove(&old);
            }
        }
        self.order.push_back(seq);
        self.seen.insert(seq);
        true
    }

    /// Whether `seq` is currently remembered.
    #[must_use]
    pub fn contains(&self, seq: SeqNo) -> bool {
        self.seen.contains(&seq)
    }

    /// Number of sequence numbers currently remembered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Whether the window is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// The configured capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_then_duplicate() {
        let mut w = DedupWindow::new(4);
        assert!(w.observe(SeqNo(1)));
        assert!(!w.observe(SeqNo(1)));
        assert!(w.observe(SeqNo(2)));
        assert!(!w.observe(SeqNo(1)));
        assert_eq!(w.len(), 2);
    }

    #[test]
    fn eviction_is_fifo_and_bounded() {
        let mut w = DedupWindow::new(3);
        for i in 0..3 {
            assert!(w.observe(SeqNo(i)));
        }
        assert_eq!(w.len(), 3);
        // Inserting a fourth evicts the oldest (0), nothing else.
        assert!(w.observe(SeqNo(3)));
        assert_eq!(w.len(), 3);
        assert!(!w.contains(SeqNo(0)));
        assert!(w.contains(SeqNo(1)));
        // The evicted seq is treated as fresh again (out-of-window).
        assert!(w.observe(SeqNo(0)));
    }

    #[test]
    fn duplicates_do_not_evict() {
        let mut w = DedupWindow::new(2);
        w.observe(SeqNo(10));
        w.observe(SeqNo(11));
        // Re-observing 11 must not push 10 out.
        assert!(!w.observe(SeqNo(11)));
        assert!(w.contains(SeqNo(10)));
        assert_eq!(w.len(), 2);
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let mut w = DedupWindow::new(0);
        assert_eq!(w.capacity(), 1);
        assert!(w.observe(SeqNo(5)));
        assert!(!w.observe(SeqNo(5)));
        assert!(w.observe(SeqNo(6)));
        assert_eq!(w.len(), 1);
    }

    #[test]
    fn within_window_duplicates_always_caught() {
        // Any seq re-observed while among the last `capacity` distinct
        // inserts must be flagged — the invariant the property test in
        // tests/props.rs exercises with random interleavings.
        let mut w = DedupWindow::new(8);
        for i in 0..100u64 {
            assert!(w.observe(SeqNo(i)));
            for back in 0..8.min(i + 1) {
                assert!(
                    !w.observe(SeqNo(i - back)),
                    "seq {} within window",
                    i - back
                );
            }
        }
    }
}
