//! The sink-side reordering service (paper §IV-C, evaluated in Fig. 8).
//!
//! "Performance heterogeneity and dynamism cause each tuple's end-to-end
//! delay to differ — tuples that are dispatched earlier may arrive later,
//! and vice versa. To solve this problem, we buffer results as they arrive
//! at the sink and sort them in-order before playback. A large buffer
//! ensures better ordering but delays the display of the results."
//!
//! [`ReorderBuffer`] releases items strictly in sequence order. An item
//! whose predecessors are still missing is held until either they arrive
//! or the item has waited longer than the configured span, at which point
//! the missing predecessors are skipped (counted as gaps) and playback
//! resumes.

use crate::config::ReorderConfig;
use crate::SeqNo;
use std::collections::BTreeMap;

/// An item released by the buffer together with its playback metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct Played<T> {
    /// Source sequence number.
    pub seq: SeqNo,
    /// Arrival time at the sink, microseconds.
    pub arrived_us: u64,
    /// Time the buffer released it for playback, microseconds.
    pub played_us: u64,
    /// The payload.
    pub item: T,
}

/// Sink-side buffer that restores source order before playback.
#[derive(Debug)]
pub struct ReorderBuffer<T> {
    span_us: u64,
    /// Next sequence number owed to playback.
    next_seq: SeqNo,
    pending: BTreeMap<SeqNo, (u64, T)>,
    skipped: u64,
    played: u64,
    duplicates: u64,
    stale: u64,
}

impl<T> ReorderBuffer<T> {
    /// Create a buffer with the given configuration; playback starts at
    /// sequence number 0.
    #[must_use]
    pub fn new(config: ReorderConfig) -> Self {
        ReorderBuffer {
            span_us: config.span_us,
            next_seq: SeqNo(0),
            pending: BTreeMap::new(),
            skipped: 0,
            played: 0,
            duplicates: 0,
            stale: 0,
        }
    }

    /// Create a buffer whose playback starts at `first`.
    #[must_use]
    pub fn starting_at(config: ReorderConfig, first: SeqNo) -> Self {
        let mut b = ReorderBuffer::new(config);
        b.next_seq = first;
        b
    }

    /// Offer an arrived item and collect everything that becomes playable.
    ///
    /// Returns items in strictly increasing sequence order. Duplicates and
    /// items older than the playback frontier are dropped (counted in
    /// [`duplicates`](Self::duplicates) / [`stale`](Self::stale)).
    pub fn push(&mut self, seq: SeqNo, item: T, now_us: u64) -> Vec<Played<T>> {
        if seq < self.next_seq {
            self.stale += 1;
            return self.drain(now_us);
        }
        if self.pending.contains_key(&seq) {
            self.duplicates += 1;
            return self.drain(now_us);
        }
        self.pending.insert(seq, (now_us, item));
        self.drain(now_us)
    }

    /// Release playable items without inserting anything: call this
    /// periodically so gaps time out even when no new tuples arrive.
    pub fn poll(&mut self, now_us: u64) -> Vec<Played<T>> {
        self.drain(now_us)
    }

    /// Flush everything still buffered, in order, skipping all gaps.
    pub fn flush(&mut self, now_us: u64) -> Vec<Played<T>> {
        let mut out = Vec::with_capacity(self.pending.len());
        let pending = std::mem::take(&mut self.pending);
        for (seq, (arrived_us, item)) in pending {
            if seq > self.next_seq {
                self.skipped += seq.0 - self.next_seq.0;
            }
            self.next_seq = seq.next();
            self.played += 1;
            out.push(Played {
                seq,
                arrived_us,
                played_us: now_us.max(arrived_us),
                item,
            });
        }
        out
    }

    fn drain(&mut self, now_us: u64) -> Vec<Played<T>> {
        let mut out = Vec::new();
        while let Some((&seq, &(arrived_us, _))) = self.pending.iter().next() {
            let in_order = seq == self.next_seq;
            let timed_out = now_us.saturating_sub(arrived_us) >= self.span_us;
            if !in_order && !timed_out {
                break;
            }
            if !in_order {
                // Give up on the gap: everything between next_seq and seq
                // is lost or too late.
                self.skipped += seq.0 - self.next_seq.0;
            }
            let (arrived_us, item) = self.pending.remove(&seq).expect("peeked key exists");
            self.next_seq = seq.next();
            self.played += 1;
            out.push(Played {
                seq,
                arrived_us,
                played_us: now_us,
                item,
            });
        }
        out
    }

    /// Sequence number playback is currently waiting for.
    #[must_use]
    pub fn next_seq(&self) -> SeqNo {
        self.next_seq
    }

    /// Items currently held in the buffer.
    #[must_use]
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Sequence numbers skipped because they never arrived in time.
    #[must_use]
    pub fn skipped(&self) -> u64 {
        self.skipped
    }

    /// Items released for playback so far.
    #[must_use]
    pub fn played(&self) -> u64 {
        self.played
    }

    /// Duplicate arrivals dropped.
    #[must_use]
    pub fn duplicates(&self) -> u64 {
        self.duplicates
    }

    /// Arrivals dropped because playback had already passed them.
    #[must_use]
    pub fn stale(&self) -> u64 {
        self.stale
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SECOND_US;

    fn buf() -> ReorderBuffer<&'static str> {
        ReorderBuffer::new(ReorderConfig::one_second())
    }

    fn seqs<T>(played: &[Played<T>]) -> Vec<u64> {
        played.iter().map(|p| p.seq.0).collect()
    }

    #[test]
    fn in_order_arrivals_play_immediately() {
        let mut b = buf();
        assert_eq!(seqs(&b.push(SeqNo(0), "a", 10)), vec![0]);
        assert_eq!(seqs(&b.push(SeqNo(1), "b", 20)), vec![1]);
        assert_eq!(b.played(), 2);
        assert_eq!(b.pending_len(), 0);
    }

    #[test]
    fn out_of_order_arrival_is_held_until_gap_fills() {
        let mut b = buf();
        assert!(b.push(SeqNo(1), "b", 10).is_empty());
        assert_eq!(b.pending_len(), 1);
        let out = b.push(SeqNo(0), "a", 20);
        assert_eq!(seqs(&out), vec![0, 1]);
        assert_eq!(out[0].item, "a");
        assert_eq!(out[1].item, "b");
        assert_eq!(out[1].arrived_us, 10);
        assert_eq!(out[1].played_us, 20);
    }

    #[test]
    fn gap_times_out_after_span() {
        let mut b = buf();
        assert!(b.push(SeqNo(1), "b", 0).is_empty());
        // Before the 1 s span elapses nothing plays.
        assert!(b.poll(SECOND_US - 1).is_empty());
        // At the deadline seq 0 is skipped and 1 plays.
        let out = b.poll(SECOND_US);
        assert_eq!(seqs(&out), vec![1]);
        assert_eq!(b.skipped(), 1);
        assert_eq!(b.next_seq(), SeqNo(2));
    }

    #[test]
    fn late_arrival_after_skip_is_dropped_as_stale() {
        let mut b = buf();
        b.push(SeqNo(1), "b", 0);
        b.poll(SECOND_US); // skips 0
        let out = b.push(SeqNo(0), "a", SECOND_US + 1);
        assert!(out.is_empty());
        assert_eq!(b.stale(), 1);
    }

    #[test]
    fn duplicates_are_counted_and_dropped() {
        let mut b = buf();
        b.push(SeqNo(2), "x", 0);
        b.push(SeqNo(2), "x", 1);
        assert_eq!(b.duplicates(), 1);
        assert_eq!(b.pending_len(), 1);
    }

    #[test]
    fn playback_is_strictly_increasing_under_shuffle() {
        let mut b = ReorderBuffer::new(ReorderConfig { span_us: 100_000 });
        // Arrival order shuffled within a window smaller than the span.
        let arrivals = [3u64, 0, 2, 1, 5, 4, 7, 6, 9, 8];
        let mut played = Vec::new();
        for (i, &s) in arrivals.iter().enumerate() {
            played.extend(seqs(&b.push(SeqNo(s), "t", i as u64 * 1_000)));
        }
        played.extend(seqs(&b.flush(20_000)));
        assert_eq!(played, (0..10).collect::<Vec<_>>());
        assert_eq!(b.skipped(), 0);
    }

    #[test]
    fn flush_releases_everything_in_order() {
        let mut b = buf();
        b.push(SeqNo(5), "f", 0);
        b.push(SeqNo(2), "c", 0);
        let out = b.flush(10);
        assert_eq!(seqs(&out), vec![2, 5]);
        assert_eq!(b.skipped(), 4); // 0,1 then 3,4
        assert_eq!(b.pending_len(), 0);
    }

    #[test]
    fn starting_at_sets_playback_frontier() {
        let mut b = ReorderBuffer::starting_at(ReorderConfig::one_second(), SeqNo(10));
        assert!(b.push(SeqNo(9), "old", 0).is_empty());
        assert_eq!(b.stale(), 1);
        assert_eq!(seqs(&b.push(SeqNo(10), "now", 0)), vec![10]);
    }

    #[test]
    fn larger_span_waits_longer_for_stragglers() {
        let short = ReorderConfig { span_us: 10_000 };
        let long = ReorderConfig { span_us: 500_000 };
        let mut a = ReorderBuffer::new(short);
        let mut b = ReorderBuffer::new(long);
        a.push(SeqNo(1), "x", 0);
        b.push(SeqNo(1), "x", 0);
        // After 20 ms the short buffer gives up on seq 0, the long one
        // keeps waiting — the paper's buffering/latency trade-off.
        assert_eq!(seqs(&a.poll(20_000)), vec![1]);
        assert!(b.poll(20_000).is_empty());
    }

    #[test]
    fn zero_span_degenerates_to_immediate_playback() {
        let mut b: ReorderBuffer<&str> = ReorderBuffer::new(ReorderConfig { span_us: 0 });
        assert_eq!(seqs(&b.push(SeqNo(3), "d", 5)), vec![3]);
        assert_eq!(b.skipped(), 3);
    }
}
