//! ACK-driven latency estimation (paper §V-B).
//!
//! "The upstream attaches a timestamp to each tuple. Each downstream,
//! after processing the tuple, sends back an ACK with the original
//! timestamp. Upon receiving the ACK, the upstream calculates "a" latency
//! estimate for this tuple by subtracting the timestamp from the current
//! time." The estimate therefore covers network transmission, queuing and
//! processing delay at the downstream.
//!
//! ACKs additionally carry the downstream's *processing* delay so the
//! processing-delay-based baselines (PR / PRS) can be driven from the same
//! mechanism.

use crate::stats::TimedAvg;
use crate::{SeqNo, UnitId};
use std::collections::{BTreeMap, HashMap};

/// Per-downstream view exported by the estimator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyView {
    /// Downstream function-unit instance.
    pub unit: UnitId,
    /// Mean end-to-end latency in microseconds (transmission + queuing +
    /// processing + ACK), or the configured initial estimate if no sample
    /// has arrived yet.
    pub latency_us: f64,
    /// Mean processing delay in microseconds, reported by the downstream
    /// in its ACKs.
    pub processing_us: f64,
    /// Whether at least one ACK has been observed.
    pub measured: bool,
    /// Tuples sent to this downstream so far.
    pub sent: u64,
    /// ACKs received from this downstream so far.
    pub acked: u64,
    /// Tuples written off as lost (no ACK within the loss timeout).
    pub lost: u64,
}

impl LatencyView {
    /// Service rate `μ = 1/L` in tuples per second.
    #[must_use]
    pub fn service_rate(&self) -> f64 {
        if self.latency_us <= 0.0 {
            0.0
        } else {
            1_000_000.0 / self.latency_us
        }
    }

    /// Processing-capacity rate `1/W` in tuples per second.
    #[must_use]
    pub fn processing_rate(&self) -> f64 {
        if self.processing_us <= 0.0 {
            0.0
        } else {
            1_000_000.0 / self.processing_us
        }
    }
}

#[derive(Debug)]
struct DownstreamStats {
    latency: TimedAvg,
    processing: TimedAvg,
    sent: u64,
    acked: u64,
    lost: u64,
}

/// Tracks in-flight tuples and per-downstream latency statistics for one
/// upstream function unit.
#[derive(Debug)]
pub struct LatencyEstimator {
    window: usize,
    sample_max_age_us: u64,
    initial_latency_us: f64,
    loss_timeout_us: u64,
    pending_age_floor: bool,
    /// seq -> (destination, dispatch time)
    inflight: HashMap<SeqNo, (UnitId, u64)>,
    stats: BTreeMap<UnitId, DownstreamStats>,
}

impl LatencyEstimator {
    /// Create an estimator.
    ///
    /// * `window` — number of samples in each per-downstream moving average.
    /// * `initial_latency_us` — optimistic estimate used for downstreams
    ///   that have not produced a sample yet, so that fresh devices are
    ///   attractive until measured (the paper bootstraps them via
    ///   round-robin probing).
    /// * `loss_timeout_us` — tuples unacknowledged for this long are
    ///   counted as lost and dropped from the in-flight table.
    #[must_use]
    pub fn new(window: usize, initial_latency_us: f64, loss_timeout_us: u64) -> Self {
        LatencyEstimator {
            window: window.max(1),
            sample_max_age_us: 10_000_000,
            initial_latency_us,
            loss_timeout_us,
            pending_age_floor: true,
            inflight: HashMap::new(),
            stats: BTreeMap::new(),
        }
    }

    /// Change how long samples stay relevant (default 10 s). Applies to
    /// downstreams registered afterwards.
    pub fn set_sample_max_age(&mut self, max_age_us: u64) {
        self.sample_max_age_us = max_age_us.max(1);
    }

    /// Enable/disable the pending-age latency floor (see
    /// [`view`](Self::view)); on by default.
    pub fn set_pending_age_floor(&mut self, enabled: bool) {
        self.pending_age_floor = enabled;
    }

    /// Register a downstream. No-op if already tracked.
    pub fn add_unit(&mut self, unit: UnitId) {
        let window = self.window;
        let max_age = self.sample_max_age_us;
        self.stats.entry(unit).or_insert_with(|| DownstreamStats {
            latency: TimedAvg::new(window, max_age),
            processing: TimedAvg::new(window, max_age),
            sent: 0,
            acked: 0,
            lost: 0,
        });
    }

    /// Forget a downstream (device left). In-flight tuples addressed to it
    /// are discarded and returned so callers can count them as lost.
    pub fn remove_unit(&mut self, unit: UnitId) -> Vec<SeqNo> {
        self.stats.remove(&unit);
        let mut orphaned: Vec<SeqNo> = self
            .inflight
            .iter()
            .filter(|(_, (u, _))| *u == unit)
            .map(|(s, _)| *s)
            .collect();
        orphaned.sort_unstable();
        for s in &orphaned {
            self.inflight.remove(s);
        }
        orphaned
    }

    /// Whether this downstream is tracked.
    #[must_use]
    pub fn contains(&self, unit: UnitId) -> bool {
        self.stats.contains_key(&unit)
    }

    /// Record that `seq` was dispatched to `unit` at `now_us`.
    pub fn on_send(&mut self, seq: SeqNo, unit: UnitId, now_us: u64) {
        self.add_unit(unit);
        if let Some(s) = self.stats.get_mut(&unit) {
            s.sent += 1;
        }
        self.inflight.insert(seq, (unit, now_us));
    }

    /// Process an ACK for `seq` carrying the downstream's processing delay.
    ///
    /// Returns the end-to-end latency sample in microseconds, or `None` if
    /// the tuple was unknown (already timed out, or duplicate ACK).
    pub fn on_ack(&mut self, seq: SeqNo, now_us: u64, processing_us: u64) -> Option<u64> {
        let (unit, sent_at) = self.inflight.remove(&seq)?;
        let latency = now_us.saturating_sub(sent_at);
        if let Some(s) = self.stats.get_mut(&unit) {
            s.acked += 1;
            s.latency.update(now_us, latency as f64);
            s.processing.update(now_us, processing_us as f64);
        }
        Some(latency)
    }

    /// Expire in-flight tuples older than the loss timeout, charging them
    /// as lost to their destination and penalising its latency estimate
    /// with the timeout value (a lost tuple is at least that slow).
    ///
    /// Returns the expired sequence numbers.
    pub fn prune_lost(&mut self, now_us: u64) -> Vec<SeqNo> {
        let timeout = self.loss_timeout_us;
        let mut expired: Vec<(SeqNo, UnitId)> = self
            .inflight
            .iter()
            .filter(|(_, (_, sent))| now_us.saturating_sub(*sent) > timeout)
            .map(|(s, (u, _))| (*s, *u))
            .collect();
        expired.sort_unstable();
        let mut seqs = Vec::with_capacity(expired.len());
        for (seq, unit) in expired {
            self.inflight.remove(&seq);
            if let Some(s) = self.stats.get_mut(&unit) {
                s.lost += 1;
                s.latency.update(now_us, timeout as f64);
            }
            seqs.push(seq);
        }
        seqs
    }

    /// Number of tuples currently awaiting an ACK.
    #[must_use]
    pub fn inflight_len(&self) -> usize {
        self.inflight.len()
    }

    /// Per-downstream view for one unit at time `now_us`.
    ///
    /// The latency estimate is the moving average of ACKed samples, but
    /// never less than the age of the oldest still-unacknowledged tuple
    /// addressed to the unit: if a tuple has been in flight for three
    /// seconds, the link is *at least* three seconds slow right now, no
    /// matter what past ACKs said. This RTO-like floor is what lets LRS
    /// react within one control round when a link suddenly collapses
    /// (the paper's Fig. 10 mobility events).
    #[must_use]
    pub fn view(&mut self, unit: UnitId, now_us: u64) -> Option<LatencyView> {
        let s = self.stats.get_mut(&unit)?;
        let measured = !s.latency.is_empty(now_us);
        let mut latency = s.latency.value(now_us).unwrap_or(self.initial_latency_us);
        let processing = s
            .processing
            .value(now_us)
            .unwrap_or(self.initial_latency_us);
        if self.pending_age_floor {
            let oldest_pending = self
                .inflight
                .values()
                .filter(|(u, _)| *u == unit)
                .map(|(_, sent)| now_us.saturating_sub(*sent))
                .max();
            if let Some(age) = oldest_pending {
                latency = latency.max(age as f64);
            }
        }
        let (sent, acked, lost) = (s.sent, s.acked, s.lost);
        Some(LatencyView {
            unit,
            latency_us: latency,
            processing_us: processing,
            measured,
            sent,
            acked,
            lost,
        })
    }

    /// Snapshot of every tracked downstream, ordered by unit id.
    #[must_use]
    pub fn snapshot(&mut self, now_us: u64) -> Vec<LatencyView> {
        let units: Vec<UnitId> = self.stats.keys().copied().collect();
        units
            .into_iter()
            .filter_map(|u| self.view(u, now_us))
            .collect()
    }

    /// Tracked downstream unit ids, in order.
    pub fn units(&self) -> impl Iterator<Item = UnitId> + '_ {
        self.stats.keys().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn est() -> LatencyEstimator {
        LatencyEstimator::new(8, 100_000.0, 5_000_000)
    }

    #[test]
    fn ack_produces_latency_sample() {
        let mut e = est();
        e.on_send(SeqNo(1), UnitId(10), 1_000);
        let lat = e.on_ack(SeqNo(1), 51_000, 30_000).unwrap();
        assert_eq!(lat, 50_000);
        let v = e.view(UnitId(10), 51_000).unwrap();
        assert!(v.measured);
        assert_eq!(v.latency_us, 50_000.0);
        assert_eq!(v.processing_us, 30_000.0);
        assert_eq!(v.sent, 1);
        assert_eq!(v.acked, 1);
    }

    #[test]
    fn unknown_or_duplicate_ack_is_ignored() {
        let mut e = est();
        assert_eq!(e.on_ack(SeqNo(9), 100, 10), None);
        e.on_send(SeqNo(1), UnitId(10), 0);
        assert!(e.on_ack(SeqNo(1), 10, 5).is_some());
        assert_eq!(e.on_ack(SeqNo(1), 20, 5), None);
    }

    #[test]
    fn unmeasured_unit_uses_initial_estimate() {
        let mut e = est();
        e.add_unit(UnitId(3));
        let v = e.view(UnitId(3), 0).unwrap();
        assert!(!v.measured);
        assert_eq!(v.latency_us, 100_000.0);
        assert!((v.service_rate() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn moving_average_over_samples() {
        let mut e = est();
        for (i, lat) in [10_000u64, 20_000, 30_000].iter().enumerate() {
            let seq = SeqNo(i as u64);
            e.on_send(seq, UnitId(1), 0);
            e.on_ack(seq, *lat, 1_000);
        }
        let v = e.view(UnitId(1), 30_000).unwrap();
        assert!((v.latency_us - 20_000.0).abs() < 1e-9);
    }

    #[test]
    fn prune_counts_losses_and_penalizes() {
        let mut e = est();
        e.on_send(SeqNo(1), UnitId(5), 0);
        e.on_send(SeqNo(2), UnitId(5), 1_000_000);
        let expired = e.prune_lost(6_000_000); // timeout 5 s: only seq 1 is stale
        assert_eq!(expired, vec![SeqNo(1)]);
        let v = e.view(UnitId(5), 6_000_000).unwrap();
        assert_eq!(v.lost, 1);
        assert_eq!(v.latency_us, 5_000_000.0); // penalised with the timeout
        assert_eq!(e.inflight_len(), 1);
    }

    #[test]
    fn remove_unit_discards_inflight() {
        let mut e = est();
        e.on_send(SeqNo(1), UnitId(5), 0);
        e.on_send(SeqNo(2), UnitId(6), 0);
        let orphaned = e.remove_unit(UnitId(5));
        assert_eq!(orphaned, vec![SeqNo(1)]);
        assert!(!e.contains(UnitId(5)));
        assert!(e.contains(UnitId(6)));
        assert_eq!(e.on_ack(SeqNo(1), 10, 1), None);
    }

    #[test]
    fn service_rates_invert_latency() {
        let v = LatencyView {
            unit: UnitId(0),
            latency_us: 50_000.0, // 50 ms -> 20 tuples/s
            processing_us: 100_000.0,
            measured: true,
            sent: 0,
            acked: 0,
            lost: 0,
        };
        assert!((v.service_rate() - 20.0).abs() < 1e-9);
        assert!((v.processing_rate() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn snapshot_is_ordered_by_unit() {
        let mut e = est();
        e.add_unit(UnitId(9));
        e.add_unit(UnitId(2));
        e.add_unit(UnitId(5));
        let units: Vec<UnitId> = e.snapshot(0).iter().map(|v| v.unit).collect();
        assert_eq!(units, vec![UnitId(2), UnitId(5), UnitId(9)]);
    }
}
