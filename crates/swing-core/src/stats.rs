//! Online statistics used by the resource-management layer: moving
//! averages for latency estimates and a sliding-window rate estimator for
//! the incoming tuple rate `Λ`.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Exponentially-weighted moving average.
///
/// `alpha` is the weight of the newest sample; `alpha = 1.0` tracks the
/// last sample exactly, small alphas smooth heavily.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
}

impl Ewma {
    /// Create an EWMA with the given smoothing factor in `(0, 1]`.
    ///
    /// # Panics
    /// Panics if `alpha` is outside `(0, 1]`.
    #[must_use]
    pub fn new(alpha: f64) -> Self {
        assert!(
            alpha > 0.0 && alpha <= 1.0,
            "EWMA alpha must be in (0, 1], got {alpha}"
        );
        Ewma { alpha, value: None }
    }

    /// Fold in one sample.
    pub fn update(&mut self, sample: f64) {
        self.value = Some(match self.value {
            None => sample,
            Some(v) => v + self.alpha * (sample - v),
        });
    }

    /// Current average, or `None` before the first sample.
    #[must_use]
    pub fn value(&self) -> Option<f64> {
        self.value
    }

    /// Forget all history.
    pub fn reset(&mut self) {
        self.value = None;
    }
}

/// Arithmetic mean over the last `capacity` samples.
///
/// The paper estimates `L_i` "as a moving average of latency estimates"
/// (§V-B); a bounded window makes the estimate track mobility-induced
/// changes within a few samples.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MovingAvg {
    capacity: usize,
    window: VecDeque<f64>,
    sum: f64,
}

impl MovingAvg {
    /// Create a moving average over the last `capacity` samples.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "moving average window must be non-empty");
        MovingAvg {
            capacity,
            window: VecDeque::with_capacity(capacity),
            sum: 0.0,
        }
    }

    /// Fold in one sample, evicting the oldest when full.
    pub fn update(&mut self, sample: f64) {
        if self.window.len() == self.capacity {
            if let Some(old) = self.window.pop_front() {
                self.sum -= old;
            }
        }
        self.window.push_back(sample);
        self.sum += sample;
    }

    /// Current mean, or `None` before the first sample.
    #[must_use]
    pub fn value(&self) -> Option<f64> {
        if self.window.is_empty() {
            None
        } else {
            // Recompute on demand to avoid drift from incremental updates.
            Some(self.window.iter().sum::<f64>() / self.window.len() as f64)
        }
    }

    /// Number of samples currently in the window.
    #[must_use]
    pub fn len(&self) -> usize {
        self.window.len()
    }

    /// Whether no samples have been observed yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.window.is_empty()
    }

    /// Forget all history.
    pub fn reset(&mut self) {
        self.window.clear();
        self.sum = 0.0;
    }
}

/// Arithmetic mean over recent samples, bounded both by count and by
/// age: samples older than `max_age_us` no longer influence the
/// estimate.
///
/// Latency estimates must forget the past on the timescale links
/// actually change: a device that spent a minute behind a wall leaves a
/// window full of multi-second samples, and a count-bounded average
/// would keep it unattractive long after its link recovered. Aging the
/// samples caps that memory.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimedAvg {
    capacity: usize,
    max_age_us: u64,
    window: VecDeque<(u64, f64)>,
}

impl TimedAvg {
    /// An average over at most `capacity` samples no older than
    /// `max_age_us`.
    ///
    /// # Panics
    /// Panics if `capacity` or `max_age_us` is zero.
    #[must_use]
    pub fn new(capacity: usize, max_age_us: u64) -> Self {
        assert!(capacity > 0, "timed average window must be non-empty");
        assert!(max_age_us > 0, "timed average max age must be positive");
        TimedAvg {
            capacity,
            max_age_us,
            window: VecDeque::with_capacity(capacity),
        }
    }

    fn evict(&mut self, now_us: u64) {
        let cutoff = now_us.saturating_sub(self.max_age_us);
        while let Some(&(t, _)) = self.window.front() {
            if t < cutoff {
                self.window.pop_front();
            } else {
                break;
            }
        }
    }

    /// Fold in one sample observed at `now_us`.
    pub fn update(&mut self, now_us: u64, sample: f64) {
        self.evict(now_us);
        if self.window.len() == self.capacity {
            self.window.pop_front();
        }
        self.window.push_back((now_us, sample));
    }

    /// Mean of the samples still in the window at `now_us`, or `None`
    /// if every sample has aged out (or none was ever observed).
    pub fn value(&mut self, now_us: u64) -> Option<f64> {
        self.evict(now_us);
        if self.window.is_empty() {
            None
        } else {
            Some(self.window.iter().map(|&(_, v)| v).sum::<f64>() / self.window.len() as f64)
        }
    }

    /// Whether no sample is currently in the window.
    pub fn is_empty(&mut self, now_us: u64) -> bool {
        self.evict(now_us);
        self.window.is_empty()
    }
}

/// Sliding-window event-rate estimator: rate = events in window / window.
///
/// Used by each upstream unit to measure "the total rate of its incoming
/// data tuples Λ" (§V-A).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RateEstimator {
    window_us: u64,
    events: VecDeque<u64>,
}

impl RateEstimator {
    /// Create an estimator over the given window (microseconds).
    ///
    /// # Panics
    /// Panics if `window_us` is zero.
    #[must_use]
    pub fn new(window_us: u64) -> Self {
        assert!(window_us > 0, "rate window must be positive");
        RateEstimator {
            window_us,
            events: VecDeque::new(),
        }
    }

    /// Record one event at `now_us`.
    pub fn record(&mut self, now_us: u64) {
        self.prune(now_us);
        self.events.push_back(now_us);
    }

    /// Events per second over the window ending at `now_us`.
    pub fn rate_per_sec(&mut self, now_us: u64) -> f64 {
        self.prune(now_us);
        self.events.len() as f64 * 1_000_000.0 / self.window_us as f64
    }

    /// Number of events currently inside the window.
    pub fn count(&mut self, now_us: u64) -> usize {
        self.prune(now_us);
        self.events.len()
    }

    fn prune(&mut self, now_us: u64) {
        let cutoff = now_us.saturating_sub(self.window_us);
        while let Some(&t) = self.events.front() {
            if t < cutoff {
                self.events.pop_front();
            } else {
                break;
            }
        }
    }
}

/// Running summary (min / max / mean / variance) over a stream of samples,
/// used to report the latency statistics shown in the paper's Figure 4.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Create an empty summary.
    #[must_use]
    pub fn new() -> Self {
        Summary::default()
    }

    /// Fold in one sample (Welford's online algorithm).
    pub fn update(&mut self, sample: f64) {
        self.count += 1;
        if self.count == 1 {
            self.min = sample;
            self.max = sample;
        } else {
            self.min = self.min.min(sample);
            self.max = self.max.max(sample);
        }
        let delta = sample - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (sample - self.mean);
    }

    /// Number of samples observed.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean (0 if empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (0 if fewer than two samples).
    #[must_use]
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Standard deviation.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample (0 if empty).
    #[must_use]
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest sample (0 if empty).
    #[must_use]
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Merge another summary into this one.
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.count as f64 / total as f64;
        let m2 = self.m2
            + other.m2
            + delta * delta * self.count as f64 * other.count as f64 / total as f64;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.count = total;
        self.mean = mean;
        self.m2 = m2;
    }
}

/// Percentile estimator over a bounded reservoir of samples.
///
/// Keeps an unbiased uniform sample of the stream (reservoir sampling
/// with a deterministic internal counter-based PRNG, so identical
/// streams give identical percentiles). Suitable for the latency
/// distributions reported alongside [`Summary`] statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Reservoir {
    capacity: usize,
    seen: u64,
    samples: Vec<f64>,
    /// xorshift state for replacement decisions.
    state: u64,
}

impl Default for Reservoir {
    /// A 4096-sample reservoir.
    fn default() -> Self {
        Reservoir::new(4_096)
    }
}

impl Reservoir {
    /// A reservoir holding at most `capacity` samples.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "reservoir capacity must be positive");
        Reservoir {
            capacity,
            seen: 0,
            samples: Vec::with_capacity(capacity.min(4_096)),
            state: 0x853C_49E6_748F_EA9B,
        }
    }

    fn next_u64(&mut self) -> u64 {
        // xorshift64*: cheap, deterministic, good enough for sampling.
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Offer one sample.
    pub fn update(&mut self, sample: f64) {
        self.seen += 1;
        if self.samples.len() < self.capacity {
            self.samples.push(sample);
        } else {
            let j = self.next_u64() % self.seen;
            if (j as usize) < self.capacity {
                self.samples[j as usize] = sample;
            }
        }
    }

    /// The currently retained samples (unordered).
    #[must_use]
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Number of samples offered so far.
    #[must_use]
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// The `p`-quantile (0 ≤ p ≤ 1) of the retained sample, by the
    /// nearest-rank method; `None` before the first sample.
    #[must_use]
    pub fn quantile(&self, p: f64) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(f64::total_cmp);
        let p = p.clamp(0.0, 1.0);
        let rank = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        Some(sorted[rank - 1])
    }

    /// Median shorthand.
    #[must_use]
    pub fn median(&self) -> Option<f64> {
        self.quantile(0.5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ewma_first_sample_is_exact() {
        let mut e = Ewma::new(0.2);
        assert_eq!(e.value(), None);
        e.update(10.0);
        assert_eq!(e.value(), Some(10.0));
    }

    #[test]
    fn ewma_converges_toward_constant_input() {
        let mut e = Ewma::new(0.5);
        e.update(0.0);
        for _ in 0..30 {
            e.update(100.0);
        }
        assert!((e.value().unwrap() - 100.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn ewma_rejects_zero_alpha() {
        let _ = Ewma::new(0.0);
    }

    #[test]
    fn moving_avg_evicts_oldest() {
        let mut m = MovingAvg::new(3);
        for v in [1.0, 2.0, 3.0, 4.0] {
            m.update(v);
        }
        assert_eq!(m.len(), 3);
        assert!((m.value().unwrap() - 3.0).abs() < 1e-12); // (2+3+4)/3
    }

    #[test]
    fn moving_avg_empty_and_reset() {
        let mut m = MovingAvg::new(2);
        assert!(m.is_empty());
        assert_eq!(m.value(), None);
        m.update(5.0);
        assert_eq!(m.value(), Some(5.0));
        m.reset();
        assert_eq!(m.value(), None);
    }

    #[test]
    fn timed_avg_evicts_by_count_and_age() {
        let mut t = TimedAvg::new(3, 1_000_000);
        t.update(0, 10.0);
        t.update(100, 20.0);
        assert_eq!(t.value(100), Some(15.0));
        // Count eviction: four samples in a 3-slot window.
        t.update(200, 30.0);
        t.update(300, 40.0);
        assert_eq!(t.value(300), Some(30.0)); // (20+30+40)/3
                                              // Age eviction: 1 s later everything is stale.
        assert_eq!(t.value(1_400_000), None);
        assert!(t.is_empty(1_400_000));
    }

    #[test]
    fn timed_avg_recovers_quickly_after_bad_period() {
        // The motivating case: a window full of 5 s penalties must not
        // dominate once fresh fast samples arrive and the old ones age.
        let mut t = TimedAvg::new(16, 10_000_000);
        for i in 0..16u64 {
            t.update(i * 1_000_000, 5_000_000.0);
        }
        // 12 s later the link recovered; two probes come back fast.
        t.update(27_000_000, 100_000.0);
        t.update(28_000_000, 90_000.0);
        let v = t.value(28_000_000).unwrap();
        assert!(v < 200_000.0, "stale penalties still dominate: {v}");
    }

    #[test]
    #[should_panic(expected = "max age")]
    fn timed_avg_rejects_zero_age() {
        let _ = TimedAvg::new(4, 0);
    }

    #[test]
    fn rate_estimator_counts_window_events() {
        let mut r = RateEstimator::new(1_000_000); // 1 s window
        for i in 0..24 {
            r.record(i * 41_666); // ~24 events within 1 s
        }
        let rate = r.rate_per_sec(1_000_000);
        assert!((rate - 24.0).abs() < 1.0, "rate was {rate}");
    }

    #[test]
    fn rate_estimator_forgets_old_events() {
        let mut r = RateEstimator::new(1_000_000);
        r.record(0);
        r.record(100);
        assert_eq!(r.count(500_000), 2);
        assert_eq!(r.count(2_000_000), 0);
        assert_eq!(r.rate_per_sec(2_000_000), 0.0);
    }

    #[test]
    fn summary_tracks_min_max_mean() {
        let mut s = Summary::new();
        for v in [4.0, 2.0, 6.0] {
            s.update(v);
        }
        assert_eq!(s.count(), 3);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 6.0);
        assert!((s.mean() - 4.0).abs() < 1e-12);
        let var = s.variance();
        assert!((var - 8.0 / 3.0).abs() < 1e-9, "variance {var}");
    }

    #[test]
    fn summary_empty_is_zeroed() {
        let s = Summary::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
        assert_eq!(s.variance(), 0.0);
    }

    #[test]
    fn summary_merge_matches_sequential_updates() {
        let samples = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let mut all = Summary::new();
        for &v in &samples {
            all.update(v);
        }
        let mut left = Summary::new();
        let mut right = Summary::new();
        for &v in &samples[..3] {
            left.update(v);
        }
        for &v in &samples[3..] {
            right.update(v);
        }
        left.merge(&right);
        assert_eq!(left.count(), all.count());
        assert!((left.mean() - all.mean()).abs() < 1e-9);
        assert!((left.variance() - all.variance()).abs() < 1e-9);
        assert_eq!(left.min(), all.min());
        assert_eq!(left.max(), all.max());
    }

    #[test]
    fn reservoir_small_stream_keeps_everything() {
        let mut r = Reservoir::new(100);
        for v in [5.0, 1.0, 9.0, 3.0] {
            r.update(v);
        }
        assert_eq!(r.seen(), 4);
        assert_eq!(r.quantile(0.0), Some(1.0));
        assert_eq!(r.quantile(1.0), Some(9.0));
        assert_eq!(r.median(), Some(3.0));
    }

    #[test]
    fn reservoir_quantiles_track_large_uniform_stream() {
        let mut r = Reservoir::new(1_000);
        for i in 0..100_000u64 {
            // A permuted uniform ramp over [0, 1000).
            r.update(((i * 7_919) % 100_000) as f64 / 100.0);
        }
        let p50 = r.quantile(0.5).unwrap();
        let p95 = r.quantile(0.95).unwrap();
        assert!((p50 - 500.0).abs() < 50.0, "p50 {p50}");
        assert!((p95 - 950.0).abs() < 30.0, "p95 {p95}");
    }

    #[test]
    fn reservoir_is_deterministic() {
        let run = || {
            let mut r = Reservoir::new(64);
            for i in 0..10_000u64 {
                r.update(i as f64);
            }
            r.quantile(0.9)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn reservoir_empty_returns_none() {
        let r = Reservoir::new(8);
        assert_eq!(r.quantile(0.5), None);
        assert_eq!(r.median(), None);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn reservoir_zero_capacity_panics() {
        let _ = Reservoir::new(0);
    }

    #[test]
    fn summary_merge_with_empty_sides() {
        let mut a = Summary::new();
        let mut b = Summary::new();
        b.update(7.0);
        a.merge(&b);
        assert_eq!(a.count(), 1);
        assert_eq!(a.mean(), 7.0);
        let empty = Summary::new();
        a.merge(&empty);
        assert_eq!(a.count(), 1);
    }
}
