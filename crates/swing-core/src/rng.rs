//! First-party deterministic PRNG for every seeded code path.
//!
//! FoundationDB-style deterministic simulation only works if a printed
//! seed reproduces the *same byte-for-byte run on any build of any
//! version of this workspace*. External PRNGs cannot promise that:
//! `rand`'s `StdRng` is explicitly documented as non-portable — its
//! algorithm may change between `rand` releases — so a seed logged by
//! CI last month could become unreproducible after a dependency bump.
//! Owning the generator removes that risk and removes `rand` from the
//! dependency tree entirely.
//!
//! [`DetRng`] is splitmix64 (Steele, Lea & Flood, *Fast Splittable
//! Pseudorandom Number Generators*, OOPSLA 2014): one 64-bit state
//! word, an additive Weyl sequence and a 3-round mix. It is fast
//! (~1 ns/draw), equidistributed over 64-bit outputs, and trivially
//! seedable — ample for delay/loss sampling, weighted routing draws and
//! synthetic workload generation. It is **not** cryptographic.
//!
//! ## Stability contract
//!
//! The output sequence for a given seed is part of this crate's public
//! API: changing it invalidates every recorded scenario seed, so any
//! algorithm change must be treated as a breaking change and called out
//! loudly in release notes.

/// Deterministic splitmix64 generator. The same seed always yields the
/// same sequence, on every platform and every build of this workspace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetRng {
    state: u64,
}

/// The splitmix64 Weyl increment (golden ratio * 2^64).
const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

impl DetRng {
    /// Create a generator from a 64-bit seed.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        DetRng {
            state: seed.wrapping_add(GOLDEN_GAMMA),
        }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN_GAMMA);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value from an integer or float range (half-open `a..b`
    /// or inclusive `a..=b`). Panics on an empty range.
    #[inline]
    pub fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw: `true` with probability `p`. Panics unless
    /// `0.0 <= p <= 1.0`.
    #[inline]
    pub fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        self.unit_f64() < p
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Derive an independent generator for a sub-stream (per link, per
    /// worker, ...) so adding one consumer never perturbs the draws of
    /// another — the property that keeps seeded scenarios stable as the
    /// topology changes.
    #[must_use]
    pub fn fork(&mut self, stream: u64) -> DetRng {
        // Mix the stream tag through one splitmix round so adjacent
        // tags yield uncorrelated states.
        let mut tag = stream ^ self.next_u64();
        tag = (tag ^ (tag >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        DetRng { state: tag }
    }
}

/// Types drawable uniformly from a range by [`DetRng::random_range`].
pub trait SampleUniform: Copy {
    /// Uniform draw from `[lo, hi)` (or `[lo, hi]` when `inclusive`).
    fn sample_uniform(lo: Self, hi: Self, inclusive: bool, rng: &mut DetRng) -> Self;
}

macro_rules! int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_uniform(lo: Self, hi: Self, inclusive: bool, rng: &mut DetRng) -> Self {
                let span = (hi as i128 - lo as i128) + if inclusive { 1 } else { 0 };
                assert!(span > 0, "empty range in random_range");
                let off = (rng.next_u64() as u128) % span as u128;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

int_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    #[inline]
    fn sample_uniform(lo: Self, hi: Self, inclusive: bool, rng: &mut DetRng) -> Self {
        if !inclusive {
            assert!(lo < hi, "empty range in random_range");
        }
        lo + (hi - lo) * rng.unit_f64()
    }
}

/// Range shapes accepted by [`DetRng::random_range`].
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_from(self, rng: &mut DetRng) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    #[inline]
    fn sample_from(self, rng: &mut DetRng) -> T {
        T::sample_uniform(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    #[inline]
    fn sample_from(self, rng: &mut DetRng) -> T {
        T::sample_uniform(*self.start(), *self.end(), true, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The sequence for a fixed seed is frozen: these values are the
    /// crate's cross-build reproducibility contract (splitmix64 test
    /// vectors for state 1234567 + k*gamma). If this test ever needs
    /// updating, every recorded scenario seed in CI logs, bug reports
    /// and BENCH baselines is invalidated — treat as a breaking change.
    #[test]
    fn sequence_is_frozen() {
        let mut rng = DetRng::seed_from_u64(1234567);
        let expected = [
            0x2c73_f084_5854_0fa5u64,
            0x883e_bce5_a3f2_7c77,
            0x3fbe_f740_e917_7b3f,
        ];
        for e in expected {
            assert_eq!(rng.next_u64(), e);
        }
    }

    #[test]
    fn same_seed_same_sequence() {
        let mut a = DetRng::seed_from_u64(42);
        let mut b = DetRng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = DetRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.random_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.random_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.random_range(-0.5f64..0.5);
            assert!((-0.5..0.5).contains(&f));
        }
    }

    #[test]
    fn random_bool_extremes() {
        let mut rng = DetRng::seed_from_u64(9);
        for _ in 0..100 {
            assert!(!rng.random_bool(0.0));
            assert!(rng.random_bool(1.0));
        }
    }

    #[test]
    fn unit_f64_stays_in_unit_interval() {
        let mut rng = DetRng::seed_from_u64(3);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let u = rng.unit_f64();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        // Mean of 10k uniforms is within a few std errors of 0.5.
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02);
    }

    #[test]
    fn forked_streams_are_independent_of_sibling_count() {
        let mut parent_a = DetRng::seed_from_u64(1);
        let fork_a = parent_a.fork(77);
        let mut parent_b = DetRng::seed_from_u64(1);
        let fork_b = parent_b.fork(77);
        assert_eq!(fork_a, fork_b);
    }
}
