//! The swarm simulator: a deterministic discrete-event model of the
//! paper's evaluation topology — one source/master device (`A`) streaming
//! sensed frames to worker devices over a shared Wi-Fi AP, workers
//! computing and returning results to a sink co-located with the source.
//!
//! The dispatch layer is *not* simulated: the simulator embeds the real
//! [`Dispatcher`] from `swing-runtime` — the same routing / pending-queue
//! / orphan-reclaim state machine the live executors run — driving it
//! under a [`VirtualClock`] with simulated ACKs, so the exact production
//! LRS/RR/PR/LR/PRS code paths are measured. The simulator contributes
//! only what the runtime cannot know: the physics (radio link queues,
//! CPU service times, mobility, energy) and the per-frame lifecycle
//! records behind the paper's figures.
//!
//! ## Transport model
//!
//! Two mechanisms dominate the paper's measurements and are modeled
//! explicitly:
//!
//! 1. **Per-destination link queues** ([`SenderRadio`]): Wi-Fi
//!    interleaves packets across flows, so each destination has an
//!    independent queue whose rate collapses with weak signal (§VI-B1's
//!    TCP/Wi-Fi rate-adaptation effect). A poor-signal destination can
//!    absorb only ~1 video frame per second.
//! 2. **Per-destination byte windows** with head-of-line blocking: like a
//!    TCP socket buffer, each destination accepts a bounded number of
//!    in-flight bytes; when the chosen destination's window is full the
//!    dispatcher *waits* (this is what lets stragglers stall round
//!    robin — "stragglers can slow down the entire computation", §III —
//!    and collapses RR throughput to roughly `n × min_i rate_i`).
//!    The source's sensing buffer is bounded, so a stalled dispatcher
//!    drops frames exactly like a camera missing frames.
//!
//! The windows map onto the dispatcher's link gates
//! ([`Dispatcher::set_link_up`]) in *paced* mode: the simulator
//! transmits one tuple per [`Dispatcher::flush_one`] call and refreshes
//! the gates between sends, so the shared state machine observes the
//! same flow control a TCP socket buffer would impose.

use crate::metrics::{FrameRecord, SwarmReport, TimelinePoint, WorkerStats};
use crossbeam::channel::{unbounded, Receiver};
use std::collections::VecDeque;
use std::sync::Arc;
use swing_core::clock::VirtualClock;
use swing_core::config::{ReorderConfig, RetryConfig, RouterConfig};
use swing_core::event::EventQueue;
use swing_core::rate::Pacer;
use swing_core::reorder::ReorderBuffer;
use swing_core::rng::DetRng;
use swing_core::stats::{Reservoir, Summary};
use swing_core::{timing, SeqNo, Tuple, UnitId, SECOND_US};
use swing_device::cpu::CpuModel;
use swing_device::mobility::{MobilityTrace, SignalZone};
use swing_device::power::{EnergyLedger, PowerModel};
use swing_device::profile::{DeviceProfile, Workload};
use swing_device::radio::{link_quality, LinkQuality};
use swing_device::Battery;
use swing_net::link::SenderRadio;
use swing_net::Message;
use swing_runtime::{Dispatcher, NodeConfig};

/// ACK deadline used when `resend_orphans` is on: pushed past any
/// plausible run length so departure reclaim is the *only*
/// retransmission trigger — the reliability extension re-dispatches
/// orphans of departed devices, it does not add timer-based
/// retransmission on top of the paper's prototype.
const ORPHAN_RECLAIM_DEADLINE_US: u64 = 3_600 * SECOND_US;

/// Static description of one worker device in a scenario.
#[derive(Debug, Clone)]
pub struct WorkerSpec {
    /// Hardware profile (usually one of [`swing_device::testbed`]).
    pub profile: DeviceProfile,
    /// Signal-strength trace (mobility).
    pub mobility: MobilityTrace,
    /// Background CPU-load schedule: `(time_us, load)` steps.
    pub background: Vec<(u64, f64)>,
    /// When the device joins the swarm (0 = present from the start).
    pub join_at_us: u64,
    /// When the device abruptly leaves, if ever.
    pub leave_at_us: Option<u64>,
    /// Battery capacity override in joules (`None` uses the profile's
    /// full pack). Tournament traces use small packs so battery cliffs
    /// land inside a one-minute run.
    pub battery_j: Option<f64>,
}

impl WorkerSpec {
    /// A stationary, unloaded worker present for the whole run.
    #[must_use]
    pub fn new(profile: DeviceProfile) -> Self {
        WorkerSpec {
            profile,
            mobility: MobilityTrace::in_zone(SignalZone::Good),
            background: Vec::new(),
            join_at_us: 0,
            leave_at_us: None,
            battery_j: None,
        }
    }

    /// Place the worker in a fixed signal zone.
    #[must_use]
    pub fn in_zone(mut self, zone: SignalZone) -> Self {
        self.mobility = MobilityTrace::in_zone(zone);
        self
    }

    /// Use an arbitrary mobility trace.
    #[must_use]
    pub fn with_mobility(mut self, trace: MobilityTrace) -> Self {
        self.mobility = trace;
        self
    }

    /// Run a constant background CPU load for the whole run.
    #[must_use]
    pub fn with_background(mut self, load: f64) -> Self {
        self.background = vec![(0, load)];
        self
    }

    /// Join the swarm mid-run.
    #[must_use]
    pub fn joining_at(mut self, t_us: u64) -> Self {
        self.join_at_us = t_us;
        self
    }

    /// Leave the swarm abruptly mid-run.
    #[must_use]
    pub fn leaving_at(mut self, t_us: u64) -> Self {
        self.leave_at_us = Some(t_us);
        self
    }

    /// Start the run with a partially-sized battery pack (joules)
    /// instead of the profile's full pack, so battery cliffs are
    /// reachable within a short simulated run.
    ///
    /// # Panics
    /// Panics if the capacity is not strictly positive.
    #[must_use]
    pub fn with_battery_j(mut self, capacity_j: f64) -> Self {
        assert!(capacity_j > 0.0, "battery capacity must be positive");
        self.battery_j = Some(capacity_j);
        self
    }
}

/// Simulation parameters.
#[derive(Debug, Clone)]
pub struct SwarmConfig {
    /// The sensing workload (sets frame size and per-device service times).
    pub workload: Workload,
    /// Router configuration, including the policy under test.
    pub router: RouterConfig,
    /// Source sensing rate, frames per second (the paper uses 24).
    pub input_fps: f64,
    /// Run length in microseconds.
    pub duration_us: u64,
    /// RNG seed; equal seeds give bit-identical reports.
    pub seed: u64,
    /// Sink reorder-buffer configuration.
    pub reorder: ReorderConfig,
    /// Source sensing-buffer capacity in frames; when full, new frames
    /// are dropped (a camera missing frames).
    pub source_buffer_frames: usize,
    /// Per-destination in-flight window in bytes (TCP socket buffering).
    pub dest_window_bytes: usize,
    /// Advertise the input rate to the router as a demand floor.
    pub demand_hint: bool,
    /// Keep per-frame records in the report (cheap; on by default).
    pub record_frames: bool,
    /// A single transmission taking longer than this is treated as a
    /// broken link: the frame is lost and the destination is removed
    /// from the swarm — the paper's "when a network link is broken, due
    /// to poor wireless signal [...], the affected upstream units
    /// automatically remove the corresponding downstream" (§IV-C).
    /// Matters for large frames on collapsed links (a 72 kB voice frame
    /// on a poor link takes ~10 s; any real TCP stack times out).
    pub link_break_us: u64,
    /// Re-dispatch frames orphaned by a departing device instead of
    /// losing them — the reliability extension MobiStreams explores (the
    /// paper's prototype loses them: "13 frames are lost"). Maps onto
    /// the dispatcher's retry machinery with the ACK deadline pushed
    /// past the run length, so eviction reclaim is the only resend path.
    pub resend_orphans: bool,
    /// Input-rate schedule: at each `(time_us, fps)` step the source
    /// changes its sensing rate. Applied on top of `input_fps`.
    pub rate_schedule: Vec<(u64, f64)>,
    /// Battery fraction below which a worker reports a low-power event
    /// (once per run). Matches the CROWDio "dying" threshold by default.
    pub low_power_frac: f64,
}

impl SwarmConfig {
    /// Paper-style defaults for the given workload and router config:
    /// 24 FPS input, 60 s run, 1 s reorder span.
    #[must_use]
    pub fn new(workload: Workload, router: RouterConfig) -> Self {
        SwarmConfig {
            workload,
            router,
            input_fps: 24.0,
            duration_us: 60 * SECOND_US,
            seed: 42,
            reorder: ReorderConfig::one_second(),
            source_buffer_frames: 24,
            dest_window_bytes: 26_000,
            demand_hint: false,
            record_frames: true,
            link_break_us: 8 * SECOND_US,
            resend_orphans: false,
            rate_schedule: Vec::new(),
            low_power_frac: 0.15,
        }
    }
}

/// Events driving the simulation.
#[derive(Debug, Clone)]
enum Ev {
    /// The source senses its next frame.
    Generate,
    /// Frame `seq` fully arrived at worker `w`.
    Arrive { w: usize, seq: u64 },
    /// Worker `w` finished processing frame `seq`.
    EndService { w: usize, seq: u64 },
    /// ACK for `seq` (processing delay attached) reached the source.
    AckArrive { seq: u64, processing_us: u64 },
    /// The result of `seq` reached the sink.
    ResultArrive { seq: u64 },
    /// Worker `w` joins the swarm.
    Join { w: usize },
    /// Worker `w` leaves abruptly.
    Leave { w: usize },
    /// Worker `w`'s background load becomes `load`.
    Background { w: usize, load: f64 },
    /// Re-evaluate worker `w`'s connectivity after a mobility step.
    MobilityCheck { w: usize },
    /// The source's sensing rate changes (rate schedule step).
    RateChange { fps: f64 },
    /// Per-second metrics sampling.
    MetricsTick,
}

struct WorkerState {
    spec: WorkerSpec,
    cpu: CpuModel,
    power: PowerModel,
    active: bool,
    /// The receiving end of the dispatcher's link toward this worker:
    /// tuples the shared dispatch state machine put "on the wire",
    /// awaiting the radio physics.
    wire: Option<Receiver<Message>>,
    /// Frames waiting for the CPU (seq numbers).
    queue: VecDeque<u64>,
    busy: bool,
    /// Sender-side in-flight bytes toward this worker.
    window_bytes: usize,
    /// Downlink queue from the AP toward this worker. Wi-Fi interleaves
    /// packets across flows, so per-destination queues are independent —
    /// a collapsed link to one device does not stall frames to others
    /// (the dispatcher's bounded windows are what couple destinations).
    downlink: SenderRadio,
    /// Radio used for ACK/result uplink.
    radio: SenderRadio,
    // Per-run counters.
    received: u64,
    completed: u64,
    bytes_rx: u64,
    // Per-tick window counters.
    busy_us_window: u64,
    bytes_window: u64,
    completed_window: u64,
    // Accumulated averages.
    util_sum: f64,
    util_ticks: u64,
    energy: EnergyLedger,
    /// The device's energy store, drained each metrics tick by exactly
    /// the joules the ledger charged — the live counterpart of Fig. 6's
    /// post-hoc accounting.
    battery: Battery,
    /// Ledger total at the previous tick (drain-rate estimation).
    last_total_j: f64,
    /// App power draw over the last tick, watts.
    drain_w: f64,
    /// The one-shot low-power report has fired.
    low_power_reported: bool,
}

impl WorkerState {
    fn new(spec: WorkerSpec, workload: Workload) -> Self {
        let cpu = CpuModel::new(&spec.profile, workload);
        let power = PowerModel::new(&spec.profile);
        let battery = Battery::new(spec.battery_j.unwrap_or(spec.profile.battery_j));
        let active = spec.join_at_us == 0;
        WorkerState {
            spec,
            cpu,
            power,
            active,
            wire: None,
            queue: VecDeque::new(),
            busy: false,
            window_bytes: 0,
            downlink: SenderRadio::new(),
            radio: SenderRadio::new(),
            received: 0,
            completed: 0,
            bytes_rx: 0,
            busy_us_window: 0,
            bytes_window: 0,
            completed_window: 0,
            util_sum: 0.0,
            util_ticks: 0,
            energy: EnergyLedger::default(),
            battery,
            last_total_j: 0.0,
            drain_w: 0.0,
            low_power_reported: false,
        }
    }

    fn quality_at(&self, t_us: u64) -> LinkQuality {
        link_quality(self.spec.mobility.rssi_at(t_us))
    }

    /// Remaining charge fraction; infinite packs (cloudlet-class
    /// profiles) always read full.
    fn battery_frac(&self) -> f64 {
        if self.battery.capacity_j().is_infinite() {
            1.0
        } else {
            self.battery.level().clamp(0.0, 1.0)
        }
    }
}

/// The swarm simulator. Build with a config and worker specs, then call
/// [`run`](Swarm::run).
pub struct Swarm {
    config: SwarmConfig,
    workers: Vec<WorkerState>,
    /// The production dispatch state machine (routing, pending queue,
    /// committed destinations, orphan reclaim), driven in paced mode
    /// under the simulator's virtual clock.
    disp: Dispatcher,
    clock: Arc<VirtualClock>,
    queue: EventQueue<Ev>,
    rng: DetRng,
    pacer: Pacer,
    reorder: ReorderBuffer<u64>,
    frames: Vec<FrameRecord>,
    frame_bytes: usize,
    // Counters.
    generated: u64,
    dropped: u64,
    lost: u64,
    completed: u64,
    completed_window: u64,
    latency_ms: Summary,
    latency_dist: Reservoir,
    timeline: Vec<TimelinePoint>,
    /// Workers whose battery hit empty mid-run, in death order.
    battery_deaths: Vec<(u64, String)>,
    /// One-shot low-power crossings, in report order.
    low_power_events: Vec<(u64, String)>,
    /// Every permanent removal (battery cliff, scripted leave, mobility
    /// disconnect, broken link), in removal order.
    departures: Vec<(u64, String)>,
}

impl std::fmt::Debug for Swarm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Swarm")
            .field("workers", &self.workers.len())
            .field("now_us", &self.queue.now_us())
            .finish_non_exhaustive()
    }
}

impl Swarm {
    /// Create a simulator for the given scenario.
    ///
    /// # Panics
    /// Panics if `workers` is empty or the router config is invalid.
    #[must_use]
    pub fn new(config: SwarmConfig, workers: Vec<WorkerSpec>) -> Self {
        assert!(!workers.is_empty(), "a swarm needs at least one worker");
        let clock = VirtualClock::shared();
        let retry = if config.resend_orphans {
            RetryConfig {
                deadline_floor_us: ORPHAN_RECLAIM_DEADLINE_US,
                deadline_ceiling_us: ORPHAN_RECLAIM_DEADLINE_US,
                ..RetryConfig::default()
            }
        } else {
            // Paper-prototype behavior: fire and forget; orphans of a
            // departed device are counted lost.
            RetryConfig::disabled()
        };
        let node = NodeConfig {
            router: config.router.clone(),
            input_fps: config.input_fps,
            reorder: config.reorder,
            retry,
            worker_label: "sim-source".to_string(),
            clock: clock.clone(),
            ..NodeConfig::default()
        };
        // The source's dispatcher: unit 0; workers are units 1..=N.
        let mut disp = Dispatcher::new(UnitId(0), &node);
        disp.set_paced(true);
        disp.enable_loss_log();
        if config.demand_hint {
            disp.router_mut().set_demand_hint(Some(config.input_fps));
        }
        let mut queue = EventQueue::new();
        let workload = config.workload;
        let mut states: Vec<WorkerState> = workers
            .into_iter()
            .map(|spec| WorkerState::new(spec, workload))
            .collect();
        // Register initially-present workers; schedule joins/leaves and
        // background/mobility steps.
        for (w, st) in states.iter_mut().enumerate() {
            if st.active {
                let (tx, rx) = unbounded();
                st.wire = Some(rx);
                disp.add_downstream(unit_of(w), tx);
            } else {
                queue.schedule(st.spec.join_at_us, Ev::Join { w });
            }
            if let Some(t) = st.spec.leave_at_us {
                queue.schedule(t, Ev::Leave { w });
            }
            for &(t, load) in &st.spec.background {
                queue.schedule(t, Ev::Background { w, load });
            }
            for t in st.spec.mobility.transition_times() {
                queue.schedule(t, Ev::MobilityCheck { w });
            }
        }
        for &(t, fps) in &config.rate_schedule {
            queue.schedule(t, Ev::RateChange { fps });
        }
        queue.schedule(0, Ev::Generate);
        queue.schedule(SECOND_US, Ev::MetricsTick);
        let frame_bytes = workload.frame_bytes() + timing::TUPLE_OVERHEAD_BYTES as usize;
        Swarm {
            pacer: Pacer::new(config.input_fps, 0),
            rng: DetRng::seed_from_u64(config.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            reorder: ReorderBuffer::new(config.reorder),
            disp,
            clock,
            queue,
            workers: states,
            frames: Vec::new(),
            frame_bytes,
            generated: 0,
            dropped: 0,
            lost: 0,
            completed: 0,
            completed_window: 0,
            latency_ms: Summary::new(),
            latency_dist: Reservoir::default(),
            timeline: Vec::new(),
            battery_deaths: Vec::new(),
            low_power_events: Vec::new(),
            departures: Vec::new(),
            config,
        }
    }

    /// Run to completion and produce the measurement report.
    #[must_use]
    pub fn run(mut self) -> SwarmReport {
        let end = self.config.duration_us;
        while let Some(t) = self.queue.peek_time() {
            if t > end {
                break;
            }
            let (now, ev) = self.queue.pop().expect("peeked event exists");
            self.handle(now, ev);
        }
        self.finish()
    }

    fn handle(&mut self, now: u64, ev: Ev) {
        // The dispatcher reads time through its injected clock; keep it
        // in lockstep with the event loop.
        self.clock.advance_to(now);
        match ev {
            Ev::Generate => self.on_generate(now),
            Ev::Arrive { w, seq } => self.on_arrive(now, w, seq),
            Ev::EndService { w, seq } => self.on_end_service(now, w, seq),
            Ev::AckArrive { seq, processing_us } => {
                self.disp.on_ack(SeqNo(seq), processing_us);
            }
            Ev::ResultArrive { seq } => self.on_result(now, seq),
            Ev::Join { w } => self.on_join(w),
            Ev::Leave { w } => self.on_leave(now, w),
            Ev::Background { w, load } => self.workers[w].cpu.set_background_load(load),
            Ev::MobilityCheck { w } => {
                if self.workers[w].active && !self.workers[w].quality_at(now).connected {
                    self.on_leave(now, w);
                }
            }
            Ev::RateChange { fps } => self.pacer.set_rate(fps),
            Ev::MetricsTick => self.on_metrics_tick(now),
        }
        self.pump(now);
    }

    fn on_generate(&mut self, now: u64) {
        let seq = self.generated;
        self.generated += 1;
        // The offered load Λ is what the sensor produces, independent of
        // whether the network can currently absorb it.
        self.disp.router_mut().note_arrival(now);
        self.frames.push(FrameRecord {
            seq,
            created_us: now,
            ..FrameRecord::default()
        });
        // The dispatcher's pending queue *is* the sensing buffer: every
        // queued tuple is a sensed frame the network has not absorbed.
        if self.disp.pending_len() >= self.config.source_buffer_frames {
            // Sensing buffer full: the camera drops this frame.
            self.frames[seq as usize].dropped = true;
            self.dropped += 1;
        } else {
            let mut tuple = Tuple::new();
            tuple.set_seq(SeqNo(seq));
            self.disp.dispatch(tuple);
        }
        let next = self.pacer.consume_next().max(now + 1);
        self.queue.schedule(next, Ev::Generate);
    }

    /// Push the dispatcher's output onto the simulated air until it
    /// blocks (full window, no route) or runs dry: one tuple per flush,
    /// radio physics applied on observation, byte-window gates refreshed
    /// between consecutive sends.
    fn pump(&mut self, now: u64) {
        loop {
            self.drain_wire(now);
            self.settle_losses();
            if !self.disp.flush_one() {
                break;
            }
        }
    }

    /// Observe every tuple the dispatcher transmitted and run the radio
    /// physics for it.
    fn drain_wire(&mut self, now: u64) {
        for w in 0..self.workers.len() {
            let Some(rx) = self.workers[w].wire.clone() else {
                continue;
            };
            while let Ok(msg) = rx.try_recv() {
                if let Message::Data { tuple, .. } = msg {
                    self.on_wire_data(now, w, tuple.seq().0);
                }
            }
        }
    }

    /// Settle per-frame records for tuples the dispatcher wrote off
    /// (no downstream left, or orphaned with retries disabled).
    fn settle_losses(&mut self) {
        for seq in self.disp.take_lost_seqs() {
            self.mark_lost(seq.0);
        }
    }

    /// Mirror worker `w`'s in-flight byte window onto the dispatcher's
    /// link gate. An empty window always admits a frame, so frames
    /// larger than the window (72 kB voice frames vs a 32 kB window)
    /// still flow — one at a time, exactly like TCP with a small socket
    /// buffer.
    fn sync_gate(&mut self, w: usize) {
        if !self.workers[w].active {
            return; // eviction dropped the gate along with the route
        }
        let used = self.workers[w].window_bytes;
        let admits = used == 0 || used + self.frame_bytes <= self.config.dest_window_bytes;
        self.disp.set_link_up(unit_of(w), admits);
    }

    /// The dispatcher put frame `seq` on the wire toward worker `w`:
    /// model the transmission.
    fn on_wire_data(&mut self, now: u64, w: usize, seq: u64) {
        if !self.workers[w].active {
            // Stale: the eviction that killed the worker already
            // reclaimed (or wrote off) this tuple.
            return;
        }
        if self.frames[seq as usize].completed() {
            // A reclaim re-sent a frame whose result was already on the
            // air when its worker left; the receiver would dedup it.
            return;
        }
        let quality = self.workers[w].quality_at(now);
        let frame_bytes = self.frame_bytes;
        let Some(tx) = self.workers[w]
            .downlink
            .enqueue(now, frame_bytes, quality, &mut self.rng)
        else {
            // Link broke between routing and transmission: drop the
            // worker; the eviction reclaims (or writes off) everything
            // unACKed toward it, this frame included.
            self.on_leave(now, w);
            return;
        };
        if tx.end_us - tx.start_us > self.config.link_break_us {
            // The transfer would out-live any TCP timeout: declare the
            // link broken and drop the worker.
            self.on_leave(now, w);
            return;
        }
        let fr = &mut self.frames[seq as usize];
        if fr.dispatched_us.is_some() {
            // A re-dispatch after its previous worker departed.
            fr.retries += 1;
            fr.arrived_us = None;
            fr.started_us = None;
            fr.finished_us = None;
        }
        fr.worker = Some(w);
        fr.dispatched_us = Some(now);
        self.workers[w].window_bytes += frame_bytes;
        self.sync_gate(w);
        self.queue.schedule(tx.end_us, Ev::Arrive { w, seq });
    }

    fn on_arrive(&mut self, now: u64, w: usize, seq: u64) {
        if !self.workers[w].active || self.frames[seq as usize].worker != Some(w) {
            // The destination died while the frame was on the air (its
            // eviction settled the frame), or the frame was re-assigned.
            return;
        }
        if !self.frames[seq as usize].completed() {
            self.frames[seq as usize].arrived_us = Some(now);
        }
        let st = &mut self.workers[w];
        st.received += 1;
        st.bytes_rx += self.frame_bytes as u64;
        st.bytes_window += self.frame_bytes as u64;
        st.queue.push_back(seq);
        if !st.busy {
            self.start_service(now, w);
        }
    }

    fn start_service(&mut self, now: u64, w: usize) {
        let Some(seq) = self.workers[w].queue.pop_front() else {
            self.workers[w].busy = false;
            return;
        };
        self.workers[w].busy = true;
        // The worker read the frame out of its socket buffer: the
        // sender-side window space is released (the gate reopens and
        // the pump pushes the pending queue after this event).
        self.workers[w].window_bytes = self.workers[w]
            .window_bytes
            .saturating_sub(self.frame_bytes);
        self.sync_gate(w);
        let service = self.workers[w].cpu.sample_service_us(&mut self.rng);
        self.workers[w].busy_us_window += service;
        if !self.frames[seq as usize].completed() {
            self.frames[seq as usize].started_us = Some(now);
        }
        self.queue
            .schedule(now + service, Ev::EndService { w, seq });
    }

    fn on_end_service(&mut self, now: u64, w: usize, seq: u64) {
        if !self.workers[w].active || self.frames[seq as usize].worker != Some(w) {
            // Stale event: the worker left mid-service (its eviction
            // settled the frame) or the frame was re-assigned elsewhere.
            return;
        }
        if !self.frames[seq as usize].completed() {
            self.frames[seq as usize].finished_us = Some(now);
        }
        let processing_us = now - self.frames[seq as usize].started_us.unwrap_or(now);
        // Send the result to the sink and the ACK to the upstream over
        // the worker's own radio (small payloads).
        let quality = self.workers[w].quality_at(now);
        if let Some(tx) =
            self.workers[w]
                .radio
                .enqueue(now, timing::ACK_BYTES as usize, quality, &mut self.rng)
        {
            self.workers[w].completed += 1;
            self.workers[w].completed_window += 1;
            self.workers[w].bytes_window += timing::ACK_BYTES;
            self.queue
                .schedule(tx.end_us, Ev::AckArrive { seq, processing_us });
            self.queue.schedule(tx.end_us, Ev::ResultArrive { seq });
            self.start_service(now, w);
        } else {
            // The uplink broke: drop the worker; its eviction reclaims
            // (or writes off) every unACKed frame, this one included.
            self.on_leave(now, w);
        }
    }

    fn on_result(&mut self, now: u64, seq: u64) {
        if self.frames[seq as usize].sink_us.is_some() {
            // Duplicate: in resend mode the original's result can still
            // be on the air while the re-sent copy also completes.
            return;
        }
        if self.frames[seq as usize].lost {
            // The frame was conservatively written off (its worker left
            // before the ACK arrived) but the result was already on the
            // air. The arrival proves it survived.
            self.frames[seq as usize].lost = false;
            self.lost -= 1;
        }
        self.frames[seq as usize].sink_us = Some(now);
        self.completed += 1;
        self.completed_window += 1;
        if let Some(e2e) = self.frames[seq as usize].e2e_us() {
            let ms = e2e as f64 / 1_000.0;
            self.latency_ms.update(ms);
            self.latency_dist.update(ms);
        }
        for played in self.reorder.push(SeqNo(seq), seq, now) {
            self.frames[played.item as usize].played_us = Some(played.played_us);
        }
    }

    fn on_join(&mut self, w: usize) {
        if self.workers[w].active {
            return;
        }
        self.workers[w].active = true;
        let (tx, rx) = unbounded();
        self.workers[w].wire = Some(rx);
        self.disp.add_downstream(unit_of(w), tx);
        self.sync_gate(w);
    }

    fn on_leave(&mut self, now: u64, w: usize) {
        if !self.workers[w].active {
            return;
        }
        self.departures
            .push((now, self.workers[w].spec.profile.name.clone()));
        self.workers[w].active = false;
        self.workers[w].busy = false;
        self.workers[w].window_bytes = 0;
        // Frames queued on the device die with it; none of them (nor
        // the frames still on the air) have been ACKed, so the
        // dispatcher's eviction reclaims them all: re-queued for
        // re-dispatch with `resend_orphans` (reliability extension),
        // counted lost without — the paper's prototype loses them
        // ("13 frames are lost", §VI-C).
        self.workers[w].queue.clear();
        self.workers[w].wire = None;
        let _ = self.disp.remove_downstream(unit_of(w));
    }

    fn mark_lost(&mut self, seq: u64) {
        let fr = &mut self.frames[seq as usize];
        if fr.sink_us.is_none() && !fr.lost {
            fr.lost = true;
            self.lost += 1;
        }
    }

    fn on_metrics_tick(&mut self, now: u64) {
        let period_s = 1.0;
        let mut point = TimelinePoint {
            t_s: now as f64 / SECOND_US as f64,
            total_fps: self.completed_window as f64 / period_s,
            per_worker_fps: Vec::with_capacity(self.workers.len()),
            per_worker_rssi: Vec::with_capacity(self.workers.len()),
        };
        self.completed_window = 0;
        // Vitals snapshot and battery events, settled after the borrow
        // on `workers` ends (deaths re-enter the dispatcher).
        let mut vitals: Vec<(usize, f64, f64, f64)> = Vec::new();
        let mut newly_low: Vec<usize> = Vec::new();
        let mut newly_dead: Vec<usize> = Vec::new();
        let low_power_frac = self.config.low_power_frac;
        for (w, st) in self.workers.iter_mut().enumerate() {
            let busy_frac = (st.busy_us_window as f64 / SECOND_US as f64).min(1.0);
            let overhead = if st.active { 0.14 } else { 0.0 };
            let total_util = (busy_frac + overhead + st.cpu.background_load()).min(1.0);
            let app_util = (busy_frac + overhead).min(1.0);
            let rate_bps = st.bytes_window as f64 / period_s;
            st.energy.charge(&st.power, app_util, rate_bps, period_s);
            // Drain the battery by exactly what the ledger charged this
            // tick, so the live store and the post-hoc accounting agree.
            let tick_j = st.energy.total_j() - st.last_total_j;
            st.last_total_j = st.energy.total_j();
            st.drain_w = tick_j / period_s;
            st.battery.drain(st.drain_w, period_s);
            if st.active {
                if !st.low_power_reported && st.battery_frac() <= low_power_frac {
                    st.low_power_reported = true;
                    newly_low.push(w);
                }
                if st.battery.is_empty() {
                    newly_dead.push(w);
                } else {
                    vitals.push((
                        w,
                        st.battery_frac(),
                        st.drain_w,
                        st.spec.mobility.rssi_at(now),
                    ));
                }
            }
            st.util_sum += total_util;
            st.util_ticks += 1;
            point
                .per_worker_fps
                .push(st.completed_window as f64 / period_s);
            point.per_worker_rssi.push(st.spec.mobility.rssi_at(now));
            st.busy_us_window = 0;
            st.bytes_window = 0;
            st.completed_window = 0;
        }
        self.timeline.push(point);
        // Feed the dispatcher's router the energy vitals the
        // lifetime-aware policies (ELRS / RSS / CROWDIO) select on.
        for &(w, frac, drain, rssi) in &vitals {
            self.disp.note_worker_vitals(unit_of(w), frac, drain, rssi);
        }
        for &w in &newly_low {
            self.low_power_events
                .push((now, self.workers[w].spec.profile.name.clone()));
        }
        for &w in &newly_dead {
            // The battery cliff: the device dies mid-swarm exactly like
            // an abrupt departure — the upstream evicts it and reclaims
            // (or writes off) its in-flight frames.
            self.battery_deaths
                .push((now, self.workers[w].spec.profile.name.clone()));
            self.on_leave(now, w);
        }
        // Let reorder gaps time out even in quiet periods.
        for played in self.reorder.poll(now) {
            self.frames[played.item as usize].played_us = Some(played.played_us);
        }
        self.queue.schedule(now + SECOND_US, Ev::MetricsTick);
    }

    fn finish(self) -> SwarmReport {
        let duration_s = self.config.duration_us as f64 / SECOND_US as f64;
        let workers = self
            .workers
            .iter()
            .map(|st| WorkerStats {
                name: st.spec.profile.name.clone(),
                received: st.received,
                completed: st.completed,
                input_fps: st.received as f64 / duration_s,
                cpu_util: if st.util_ticks > 0 {
                    st.util_sum / st.util_ticks as f64
                } else {
                    0.0
                },
                cpu_power_w: st.energy.mean_cpu_w(),
                wifi_power_w: st.energy.mean_wifi_w(),
                bytes_rx: st.bytes_rx,
                energy: st.energy,
                battery_frac: st.battery_frac(),
            })
            .collect();
        let to_s = |events: &[(u64, String)]| {
            events
                .iter()
                .map(|(t, n)| (*t as f64 / SECOND_US as f64, n.clone()))
                .collect()
        };
        SwarmReport {
            duration_s,
            generated: self.generated,
            dropped_at_source: self.dropped,
            lost: self.lost,
            completed: self.completed,
            throughput_fps: self.completed as f64 / duration_s,
            latency_ms: self.latency_ms,
            latency_dist: self.latency_dist,
            workers,
            timeline: self.timeline,
            frames: if self.config.record_frames {
                self.frames
            } else {
                Vec::new()
            },
            reorder_skipped: self.reorder.skipped(),
            battery_deaths: to_s(&self.battery_deaths),
            low_power_events: to_s(&self.low_power_events),
            departures: to_s(&self.departures),
        }
    }
}

/// Unit id of worker index `w` (the source unit is id 0).
#[must_use]
pub fn unit_of(w: usize) -> UnitId {
    UnitId(w as u32 + 1)
}

/// Worker index of a unit id.
#[must_use]
pub fn worker_of(unit: UnitId) -> usize {
    (unit.0 - 1) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use swing_core::routing::Policy;
    use swing_device::testbed;

    fn profile(name: &str) -> DeviceProfile {
        testbed().into_iter().find(|p| p.name == name).unwrap()
    }

    fn short_config(policy: Policy) -> SwarmConfig {
        let mut c = SwarmConfig::new(Workload::FaceRecognition, RouterConfig::new(policy));
        c.duration_us = 20 * SECOND_US;
        c
    }

    #[test]
    fn single_fast_worker_handles_low_rate() {
        let mut c = short_config(Policy::Rr);
        c.input_fps = 5.0; // H can do ~14 FPS
        let report = Swarm::new(c, vec![WorkerSpec::new(profile("H"))]).run();
        assert_eq!(report.dropped_at_source, 0);
        assert!(report.lost == 0, "lost {}", report.lost);
        assert!(
            (report.throughput_fps - 5.0).abs() < 0.5,
            "throughput {}",
            report.throughput_fps
        );
        // Latency ~ tx + service: well under 200 ms.
        assert!(
            report.latency_ms.mean() < 200.0,
            "{}",
            report.latency_ms.mean()
        );
    }

    #[test]
    fn single_slow_worker_saturates_at_capacity() {
        // Fig 1: a single device cannot keep pace with 24 FPS.
        let c = short_config(Policy::Rr);
        let report = Swarm::new(c, vec![WorkerSpec::new(profile("E"))]).run();
        // E processes ~2.2 FPS.
        assert!(report.throughput_fps < 3.5, "{}", report.throughput_fps);
        assert!(report.dropped_at_source > 0);
        // Delays build to seconds (bounded by buffers, not unbounded).
        assert!(report.latency_ms.mean() > 1_000.0);
    }

    #[test]
    fn swarm_of_fast_workers_reaches_real_time() {
        let c = short_config(Policy::Lrs);
        let workers = ["G", "H", "I"]
            .iter()
            .map(|n| WorkerSpec::new(profile(n)))
            .collect();
        let report = Swarm::new(c, workers).run();
        assert!(
            report.throughput_fps > 20.0,
            "throughput {}",
            report.throughput_fps
        );
        assert!(
            report.latency_ms.mean() < 1_000.0,
            "{}",
            report.latency_ms.mean()
        );
    }

    #[test]
    fn lrs_beats_rr_with_straggler_and_bad_links() {
        let workers = |_p: Policy| -> Vec<WorkerSpec> {
            vec![
                WorkerSpec::new(profile("B")).in_zone(SignalZone::Poor),
                WorkerSpec::new(profile("E")), // compute straggler
                WorkerSpec::new(profile("G")),
                WorkerSpec::new(profile("H")),
                WorkerSpec::new(profile("I")),
            ]
        };
        let rr = Swarm::new(short_config(Policy::Rr), workers(Policy::Rr)).run();
        let lrs = Swarm::new(short_config(Policy::Lrs), workers(Policy::Lrs)).run();
        assert!(
            lrs.throughput_fps > 1.5 * rr.throughput_fps,
            "lrs {} vs rr {}",
            lrs.throughput_fps,
            rr.throughput_fps
        );
        assert!(
            lrs.latency_ms.mean() < rr.latency_ms.mean() / 2.0,
            "lrs {} vs rr {}",
            lrs.latency_ms.mean(),
            rr.latency_ms.mean()
        );
    }

    #[test]
    fn joining_worker_raises_throughput() {
        // Fig 9 (left): B, D computing; G joins at t=10 s.
        let mut c = short_config(Policy::Lrs);
        c.duration_us = 30 * SECOND_US;
        let workers = vec![
            WorkerSpec::new(profile("B")),
            WorkerSpec::new(profile("D")),
            WorkerSpec::new(profile("G")).joining_at(10 * SECOND_US),
        ];
        let report = Swarm::new(c, workers).run();
        let before: f64 = report.timeline[..9]
            .iter()
            .map(|p| p.total_fps)
            .sum::<f64>()
            / 9.0;
        let after: f64 = report.timeline[15..]
            .iter()
            .map(|p| p.total_fps)
            .sum::<f64>()
            / (report.timeline.len() - 15) as f64;
        assert!(after > before + 3.0, "before {before:.1} after {after:.1}");
    }

    #[test]
    fn leaving_worker_drops_then_recovers() {
        // Fig 9 (right): B, G, H computing; G leaves at t=10 s. Whether
        // any frame is in flight on G at that instant depends on the RNG
        // draw sequence, so scan a few seeds for a run that catches some
        // ("13 frames are lost" in the paper's run) instead of pinning
        // one seed's behaviour.
        let run = |seed: u64| {
            let mut c = short_config(Policy::Lrs);
            c.duration_us = 30 * SECOND_US;
            c.seed = seed;
            let workers = vec![
                WorkerSpec::new(profile("B")),
                WorkerSpec::new(profile("G")).leaving_at(10 * SECOND_US),
                WorkerSpec::new(profile("H")),
            ];
            Swarm::new(c, workers).run()
        };
        let report = (1..=16)
            .map(run)
            .find(|r| r.lost > 0)
            .expect("no seed in 1..=16 lost frames on leave");
        // Only a handful of in-flight frames are lost at departure.
        assert!(report.lost < 60, "too many frames lost: {}", report.lost);
        // Every generated frame is accounted for — lost, not wedged.
        assert!(
            report.generated >= report.completed + report.lost + report.dropped_at_source,
            "frame accounting leak: generated {} completed {} lost {} dropped {}",
            report.generated,
            report.completed,
            report.lost,
            report.dropped_at_source
        );
        // Throughput afterwards is what B+H can sustain, well above zero.
        let tail: f64 = report.timeline[20..]
            .iter()
            .map(|p| p.total_fps)
            .sum::<f64>()
            / (report.timeline.len() - 20) as f64;
        assert!(tail > 10.0, "tail throughput {tail}");
    }

    #[test]
    fn all_workers_leaving_loses_everything_gracefully() {
        let mut c = short_config(Policy::Lrs);
        c.duration_us = 10 * SECOND_US;
        let workers = vec![WorkerSpec::new(profile("H")).leaving_at(3 * SECOND_US)];
        let report = Swarm::new(c, workers).run();
        assert!(report.completed > 0);
        assert!(report.lost > 0);
        // After the only worker leaves, frames are lost, not wedged.
        assert_eq!(
            report.generated,
            report.completed
                + report.lost
                + report.dropped_at_source
                + report
                    .frames
                    .iter()
                    .filter(|f| !f.completed() && !f.lost && !f.dropped)
                    .count() as u64
        );
    }

    #[test]
    fn mobility_to_poor_zone_shifts_load_away() {
        // Fig 10: G walks good -> weak -> poor; LRS re-routes to B, H.
        let mut c = short_config(Policy::Lrs);
        c.duration_us = 45 * SECOND_US;
        let walk = MobilityTrace::fig10_walk(15 * SECOND_US);
        let workers = vec![
            WorkerSpec::new(profile("B")),
            WorkerSpec::new(profile("G")).with_mobility(walk),
            WorkerSpec::new(profile("H")),
        ];
        let report = Swarm::new(c, workers).run();
        // G's share in the first 10 s vs the last 10 s.
        let early: f64 = report.timeline[..10]
            .iter()
            .map(|p| p.per_worker_fps[1])
            .sum();
        let late: f64 = report.timeline[report.timeline.len() - 10..]
            .iter()
            .map(|p| p.per_worker_fps[1])
            .sum();
        assert!(
            late < early * 0.7,
            "G's load should fall after moving: early {early:.0} late {late:.0}"
        );
        // System keeps most of its throughput.
        let tail: f64 = report.timeline[report.timeline.len() - 5..]
            .iter()
            .map(|p| p.total_fps)
            .sum::<f64>()
            / 5.0;
        assert!(tail > 10.0, "tail {tail}");
    }

    #[test]
    fn background_load_reduces_worker_capacity() {
        let mut c = short_config(Policy::Rr);
        c.input_fps = 10.0;
        let unloaded = Swarm::new(c.clone(), vec![WorkerSpec::new(profile("B"))]).run();
        let loaded = Swarm::new(c, vec![WorkerSpec::new(profile("B")).with_background(1.0)]).run();
        assert!(loaded.throughput_fps < unloaded.throughput_fps);
        let unloaded_proc = unloaded.mean_component_ms(FrameRecord::processing_us);
        let loaded_proc = loaded.mean_component_ms(FrameRecord::processing_us);
        assert!(
            loaded_proc > 2.0 * unloaded_proc,
            "processing {unloaded_proc:.0} -> {loaded_proc:.0}"
        );
    }

    #[test]
    fn identical_seeds_give_identical_reports() {
        let mk = || {
            let workers = vec![
                WorkerSpec::new(profile("B")).in_zone(SignalZone::Weak),
                WorkerSpec::new(profile("H")),
            ];
            Swarm::new(short_config(Policy::Lrs), workers).run()
        };
        let a = mk();
        let b = mk();
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.lost, b.lost);
        assert_eq!(a.latency_ms, b.latency_ms);
        assert_eq!(a.frames.len(), b.frames.len());
        for (x, y) in a.frames.iter().zip(&b.frames) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn frame_accounting_balances() {
        let c = short_config(Policy::Lrs);
        let workers = vec![WorkerSpec::new(profile("E")), WorkerSpec::new(profile("H"))];
        let report = Swarm::new(c, workers).run();
        // Every generated frame is either completed, dropped, lost, or
        // still in flight at the end of the run.
        let in_flight = report
            .frames
            .iter()
            .filter(|f| !f.completed() && !f.dropped && !f.lost)
            .count() as u64;
        assert_eq!(
            report.generated,
            report.completed + report.dropped_at_source + report.lost + in_flight
        );
    }

    #[test]
    fn resent_orphans_survive_a_departure() {
        // The reliability extension: frames stranded on a departing
        // device are reclaimed by the shared dispatcher's eviction path
        // and re-routed to the survivors instead of being lost.
        let mut c = short_config(Policy::Lrs);
        c.duration_us = 30 * SECOND_US;
        c.resend_orphans = true;
        let workers = vec![
            WorkerSpec::new(profile("B")),
            WorkerSpec::new(profile("G")).leaving_at(10 * SECOND_US),
            WorkerSpec::new(profile("H")),
        ];
        let report = Swarm::new(c, workers).run();
        assert_eq!(report.lost, 0, "orphans must be re-dispatched, not lost");
        assert!(
            report.frames.iter().any(|f| f.retries > 0),
            "some frames were in flight on G and must show re-dispatches"
        );
    }

    #[test]
    fn unit_ids_map_to_worker_indices() {
        assert_eq!(worker_of(unit_of(0)), 0);
        assert_eq!(worker_of(unit_of(7)), 7);
        assert_eq!(unit_of(2), UnitId(3));
    }
}
