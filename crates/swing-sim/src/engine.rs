//! Deterministic discrete-event core.
//!
//! The [`EventQueue`] itself was promoted into `swing-core` (so the
//! virtual-time runtime harness can share it); this module re-exports it
//! under its historical path for the simulator's callers.

pub use swing_core::event::EventQueue;
