//! Seeded policy tournaments: the lifetime-aware selection policies
//! against the paper's LRS, under churn.
//!
//! The paper's §VI evaluates five latency-driven policies but defers the
//! energy question. This harness produces the first result the paper
//! doesn't have: a policy × churn-trace × seed grid on the [`Swarm`]
//! simulator (real dispatcher, modeled physics, live [`Battery`] packs),
//! where each cell reports
//!
//! * **frames played** — results that reached the sink,
//! * **p99** — end-to-end latency 99th percentile (ms),
//! * **time-to-first-death** — first battery cliff (s),
//! * **time-to-half-swarm** — when half the swarm was permanently gone,
//!   any cause (s),
//!
//! and every cell runs *twice* to prove the whole tournament is a pure
//! function of its seed (byte-identical replay). The summary serializes
//! to `tournament_summary.json` for CI artifacts, including a
//! challenger-vs-LRS comparison table with explicit lifetime margins.
//!
//! [`Battery`]: swing_device::Battery

use crate::metrics::SwarmReport;
use crate::swarm::{Swarm, SwarmConfig, WorkerSpec};
use swing_core::config::RouterConfig;
use swing_core::routing::Policy;
use swing_core::SECOND_US;
use swing_device::mobility::MobilityTrace;
use swing_device::profile::{testbed, DeviceProfile, Workload};

/// One churn archetype of the tournament grid. Every trace runs five
/// workers; the energy-aware policies win by steering load toward the
/// two big-pack devices (`B`, `C`) and sparing the fast-but-small packs
/// (`G`, `H`, `I`) that pure LRS burns through.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChurnTrace {
    /// Demand spike plus a join wave: the run starts at a gentle rate on
    /// the two big-pack workers, then the input rate triples while three
    /// small-pack devices join in quick succession.
    FlashCrowd,
    /// Asymmetric packs under steady overload: the fast workers start
    /// with small batteries, the slow ones with effectively full packs.
    BatteryCliff,
    /// Mobility-driven RSSI sweep: one worker walks out of range
    /// mid-run (a policy-independent departure) while the small packs
    /// decide who else survives.
    RssiSweep,
}

impl ChurnTrace {
    /// Every trace, in grid order.
    pub const ALL: [ChurnTrace; 3] = [
        ChurnTrace::FlashCrowd,
        ChurnTrace::BatteryCliff,
        ChurnTrace::RssiSweep,
    ];

    /// Stable snake_case name used in the JSON summary.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ChurnTrace::FlashCrowd => "flash_crowd",
            ChurnTrace::BatteryCliff => "battery_cliff",
            ChurnTrace::RssiSweep => "rssi_sweep",
        }
    }

    /// Build the trace's scenario for one `(policy, seed)` cell.
    fn scenario(
        self,
        policy: Policy,
        seed: u64,
        duration_us: u64,
    ) -> (SwarmConfig, Vec<WorkerSpec>) {
        let p = |name: &str| -> DeviceProfile {
            testbed()
                .into_iter()
                .find(|d| d.name == name)
                .expect("testbed profile")
        };
        // Big packs: drain so slowly (in charge-fraction terms) that the
        // battery-ranked policies treat them as always healthy. Small
        // packs: die after ~30 s of sustained full-rate computing.
        let big = 3_000.0;
        let mut config = SwarmConfig::new(Workload::FaceRecognition, RouterConfig::new(policy));
        config.seed = seed;
        config.duration_us = duration_us;
        config.input_fps = 24.0;
        let workers = match self {
            ChurnTrace::FlashCrowd => {
                // Gentle 8 FPS on B+C, then the crowd arrives: rate
                // triples at t=10 s as G, H, I join.
                config.input_fps = 8.0;
                config.rate_schedule = vec![(10 * SECOND_US, 24.0)];
                vec![
                    WorkerSpec::new(p("B")).with_battery_j(big),
                    WorkerSpec::new(p("C")).with_battery_j(big),
                    WorkerSpec::new(p("G"))
                        .with_battery_j(24.0)
                        .joining_at(10 * SECOND_US),
                    WorkerSpec::new(p("H"))
                        .with_battery_j(28.0)
                        .joining_at(12 * SECOND_US),
                    WorkerSpec::new(p("I"))
                        .with_battery_j(32.0)
                        .joining_at(14 * SECOND_US),
                ]
            }
            ChurnTrace::BatteryCliff => vec![
                WorkerSpec::new(p("B")).with_battery_j(big),
                WorkerSpec::new(p("C")).with_battery_j(big),
                WorkerSpec::new(p("G")).with_battery_j(35.0),
                WorkerSpec::new(p("H")).with_battery_j(40.0),
                WorkerSpec::new(p("I")).with_battery_j(45.0),
            ],
            ChurnTrace::RssiSweep => {
                // G walks good -> weak -> out of range and disconnects
                // at t=24 s under every policy; the batteries decide the
                // rest of the attrition order.
                use swing_device::mobility::SignalZone;
                let walk = MobilityTrace::from_steps(vec![
                    (0, SignalZone::Good.rssi_dbm()),
                    (12 * SECOND_US, SignalZone::Weak.rssi_dbm()),
                    (24 * SECOND_US, SignalZone::OutOfRange.rssi_dbm()),
                ]);
                vec![
                    WorkerSpec::new(p("B")).with_battery_j(big),
                    WorkerSpec::new(p("C")).with_battery_j(big),
                    WorkerSpec::new(p("G"))
                        .with_battery_j(60.0)
                        .with_mobility(walk),
                    WorkerSpec::new(p("H")).with_battery_j(40.0),
                    WorkerSpec::new(p("I")).with_battery_j(45.0),
                ]
            }
        };
        (config, workers)
    }
}

/// Tournament shape: which policies, which traces, which seeds.
#[derive(Debug, Clone)]
pub struct TournamentConfig {
    /// Policies to sweep. LRS must be present — it is the baseline every
    /// energy-aware challenger is compared against.
    pub policies: Vec<Policy>,
    /// Churn traces to sweep.
    pub traces: Vec<ChurnTrace>,
    /// Seeds per `(policy, trace)` cell.
    pub seeds: Vec<u64>,
    /// Run length of every cell, microseconds.
    pub duration_us: u64,
}

impl Default for TournamentConfig {
    /// The acceptance grid: RR and LRS baselines plus the three
    /// energy-aware policies, all three churn traces, two seeds.
    fn default() -> Self {
        TournamentConfig {
            policies: vec![
                Policy::Rr,
                Policy::Lrs,
                Policy::EnergyLrs,
                Policy::Rss,
                Policy::Crowdio,
            ],
            traces: ChurnTrace::ALL.to_vec(),
            seeds: vec![42, 7],
            duration_us: 60 * SECOND_US,
        }
    }
}

/// Outcome of one `(trace, policy, seed)` cell.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Churn trace name.
    pub trace: String,
    /// Policy under test.
    pub policy: Policy,
    /// Seed of the run.
    pub seed: u64,
    /// Results that reached the sink.
    pub frames_played: u64,
    /// End-to-end latency p99, milliseconds.
    pub p99_ms: f64,
    /// First battery cliff, seconds (`None`: no pack emptied).
    pub time_to_first_death_s: Option<f64>,
    /// Half the swarm permanently gone, seconds (`None`: more than half
    /// survived the whole run).
    pub time_to_half_swarm_s: Option<f64>,
    /// Battery cliffs over the run.
    pub battery_deaths: usize,
    /// Workers still alive at the end of the run.
    pub survivors: usize,
    /// A second run of the same seed produced a byte-identical report.
    pub replay_identical: bool,
}

impl Cell {
    fn to_json(&self) -> String {
        format!(
            "{{\"trace\":\"{}\",\"policy\":\"{}\",\"seed\":{},\
             \"frames_played\":{},\"p99_ms\":{:.3},\
             \"time_to_first_death_s\":{},\"time_to_half_swarm_s\":{},\
             \"battery_deaths\":{},\"survivors\":{},\"replay_identical\":{}}}",
            self.trace,
            self.policy.name(),
            self.seed,
            self.frames_played,
            self.p99_ms,
            json_opt(self.time_to_first_death_s),
            json_opt(self.time_to_half_swarm_s),
            self.battery_deaths,
            self.survivors,
            self.replay_identical
        )
    }
}

/// One challenger-vs-LRS row of the comparison table: same trace, same
/// seed, lifetime margin and the p99 guard.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// Churn trace name.
    pub trace: String,
    /// Seed of the pair of runs.
    pub seed: u64,
    /// The energy-aware challenger.
    pub policy: Policy,
    /// Challenger's effective time-to-half-swarm, seconds (survival to
    /// the end of the run counts as the full duration).
    pub half_s: f64,
    /// LRS's effective time-to-half-swarm, seconds.
    pub lrs_half_s: f64,
    /// `half_s - lrs_half_s`: positive means the challenger kept half
    /// the swarm alive longer.
    pub margin_s: f64,
    /// Challenger's latency p99, ms.
    pub p99_ms: f64,
    /// LRS's latency p99, ms.
    pub lrs_p99_ms: f64,
    /// Margin positive and p99 within 110% of LRS.
    pub win: bool,
}

impl Comparison {
    fn to_json(&self) -> String {
        format!(
            "{{\"trace\":\"{}\",\"seed\":{},\"policy\":\"{}\",\
             \"half_s\":{:.3},\"lrs_half_s\":{:.3},\"margin_s\":{:.3},\
             \"p99_ms\":{:.3},\"lrs_p99_ms\":{:.3},\"win\":{}}}",
            self.trace,
            self.seed,
            self.policy.name(),
            self.half_s,
            self.lrs_half_s,
            self.margin_s,
            self.p99_ms,
            self.lrs_p99_ms,
            self.win
        )
    }
}

/// The whole tournament's outcome.
#[derive(Debug, Clone)]
pub struct TournamentSummary {
    /// One entry per `(trace, policy, seed)` cell, in sweep order.
    pub cells: Vec<Cell>,
    /// Challenger-vs-LRS rows for every energy-aware cell.
    pub comparisons: Vec<Comparison>,
    /// Run length of every cell, seconds.
    pub duration_s: f64,
}

impl TournamentSummary {
    /// Every cell reproduced byte-identically on its second run.
    #[must_use]
    pub fn all_replays_identical(&self) -> bool {
        self.cells.iter().all(|c| c.replay_identical)
    }

    /// Traces where `challenger` beat LRS on time-to-half-swarm (with
    /// the p99 guard) on **every** seed.
    #[must_use]
    pub fn traces_won(&self, challenger: Policy) -> usize {
        let mut won = 0;
        let mut traces: Vec<&str> = self.comparisons.iter().map(|c| c.trace.as_str()).collect();
        traces.sort_unstable();
        traces.dedup();
        for trace in traces {
            let rows: Vec<&Comparison> = self
                .comparisons
                .iter()
                .filter(|c| c.policy == challenger && c.trace == trace)
                .collect();
            if !rows.is_empty() && rows.iter().all(|c| c.win) {
                won += 1;
            }
        }
        won
    }

    /// The PR's acceptance bar: every replay byte-identical, and at
    /// least one energy-aware policy beating LRS on time-to-half-swarm
    /// on at least two of the three churn traces without regressing p99
    /// by more than 10%.
    #[must_use]
    pub fn acceptance_passed(&self) -> bool {
        self.all_replays_identical()
            && Policy::ENERGY_AWARE
                .iter()
                .any(|&p| self.traces_won(p) >= 2)
    }

    /// Serialize as one JSON document (the `tournament_summary.json` CI
    /// artifact).
    #[must_use]
    pub fn to_json(&self) -> String {
        let winners: Vec<String> = Policy::ENERGY_AWARE
            .iter()
            .map(|&p| {
                format!(
                    "{{\"policy\":\"{}\",\"traces_won\":{}}}",
                    p.name(),
                    self.traces_won(p)
                )
            })
            .collect();
        let cells: Vec<String> = self.cells.iter().map(Cell::to_json).collect();
        let comparisons: Vec<String> = self.comparisons.iter().map(Comparison::to_json).collect();
        format!(
            "{{\"cells\":{},\"duration_s\":{:.0},\"all_replays_identical\":{},\
             \"acceptance_passed\":{},\"winners\":[{}],\"comparisons\":[{}],\
             \"grid\":[{}]}}",
            self.cells.len(),
            self.duration_s,
            self.all_replays_identical(),
            self.acceptance_passed(),
            winners.join(","),
            comparisons.join(","),
            cells.join(",")
        )
    }

    /// Write the JSON summary to `path`.
    ///
    /// # Errors
    /// Propagates the underlying filesystem error.
    pub fn write(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

fn json_opt(v: Option<f64>) -> String {
    match v {
        Some(x) => format!("{x:.3}"),
        None => "null".to_string(),
    }
}

/// FNV-1a over the report's full observable surface: per-frame records,
/// per-worker stats, latency samples (bit-exact), and the lifetime event
/// logs. Two runs fingerprinting equal are byte-identical in everything
/// the tournament reports.
fn fingerprint(report: &SwarmReport) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    eat(report.frames_tsv().as_bytes());
    eat(report.workers_tsv().as_bytes());
    eat(format!("{:?}", report.battery_deaths).as_bytes());
    eat(format!("{:?}", report.low_power_events).as_bytes());
    eat(format!("{:?}", report.departures).as_bytes());
    for ms in report.latency_dist.samples() {
        eat(&ms.to_bits().to_le_bytes());
    }
    eat(&report.generated.to_le_bytes());
    eat(&report.completed.to_le_bytes());
    eat(&report.lost.to_le_bytes());
    eat(&report.dropped_at_source.to_le_bytes());
    h
}

fn run_once(trace: ChurnTrace, policy: Policy, seed: u64, duration_us: u64) -> SwarmReport {
    let (config, workers) = trace.scenario(policy, seed, duration_us);
    Swarm::new(config, workers).run()
}

/// Run one `(trace, policy, seed)` cell: the scenario once for the
/// metrics, once more for the byte-identical replay check.
#[must_use]
pub fn run_cell(trace: ChurnTrace, policy: Policy, seed: u64, duration_us: u64) -> Cell {
    let a = run_once(trace, policy, seed, duration_us);
    let b = run_once(trace, policy, seed, duration_us);
    let n = a.workers.len();
    Cell {
        trace: trace.name().to_string(),
        policy,
        seed,
        frames_played: a.completed,
        p99_ms: a.latency_percentile_ms(0.99),
        time_to_first_death_s: a.time_to_first_death_s(),
        time_to_half_swarm_s: a.time_to_half_swarm_s(),
        battery_deaths: a.battery_deaths.len(),
        survivors: n - a.departures.len(),
        replay_identical: fingerprint(&a) == fingerprint(&b),
    }
}

/// Sweep the whole tournament grid and build the comparison table.
///
/// # Panics
/// Panics if `config.policies` does not include [`Policy::Lrs`] — the
/// baseline every challenger is measured against.
#[must_use]
pub fn run_tournament(config: &TournamentConfig) -> TournamentSummary {
    assert!(
        config.policies.contains(&Policy::Lrs),
        "the tournament needs the LRS baseline"
    );
    let duration_s = config.duration_us as f64 / SECOND_US as f64;
    let mut cells = Vec::new();
    for &trace in &config.traces {
        for &policy in &config.policies {
            for &seed in &config.seeds {
                cells.push(run_cell(trace, policy, seed, config.duration_us));
            }
        }
    }
    let mut comparisons = Vec::new();
    for cell in &cells {
        if !Policy::ENERGY_AWARE.contains(&cell.policy) {
            continue;
        }
        let Some(lrs) = cells
            .iter()
            .find(|c| c.policy == Policy::Lrs && c.trace == cell.trace && c.seed == cell.seed)
        else {
            continue;
        };
        // Surviving past the end of the run is a lower bound: score it
        // as the full duration so "never lost half the swarm" beats any
        // finite collapse time.
        let half_s = cell.time_to_half_swarm_s.unwrap_or(duration_s);
        let lrs_half_s = lrs.time_to_half_swarm_s.unwrap_or(duration_s);
        let margin_s = half_s - lrs_half_s;
        comparisons.push(Comparison {
            trace: cell.trace.clone(),
            seed: cell.seed,
            policy: cell.policy,
            half_s,
            lrs_half_s,
            margin_s,
            p99_ms: cell.p99_ms,
            lrs_p99_ms: lrs.p99_ms,
            win: margin_s > 0.0 && cell.p99_ms <= lrs.p99_ms * 1.1,
        });
    }
    TournamentSummary {
        cells,
        comparisons,
        duration_s,
    }
}
