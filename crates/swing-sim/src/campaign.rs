//! Seeded chaos campaign over the self-healing runtime.
//!
//! A campaign sweeps a fault grid — crash mid-stream, crash during a
//! deploy wave, cascading crashes, a master outage, an asymmetric
//! partition, a join/leave storm — across seeds, running each scenario
//! on the deterministic [`SimSwarm`] (the real dispatchers under
//! virtual time). Every grid point checks the PR's robustness
//! invariants:
//!
//! 1. **Conservation**: the shed-accounting identity
//!    `sensed = (played + stale) + shed_at_source + shed_in_queue + lost`
//!    holds exactly, with `lost == 0` — retransmission plus unit
//!    re-placement must account for every sensed frame.
//! 2. **Bounded recovery**: crash-to-re-placement latency stays within
//!    the failure-detection bound of the scenario.
//! 3. **Replay**: the same seed reproduces a byte-identical telemetry
//!    export — the whole chaos scenario is a pure function of its seed.
//!
//! The result is a [`CampaignSummary`] that serializes to JSON for CI
//! artifacts (`campaign_summary.json`).

use std::sync::atomic::{AtomicU64, Ordering};
use swing_core::config::{ReorderConfig, RetryConfig};
use swing_core::graph::AppGraph;
use swing_core::timing::CONTROL_PERIOD_US;
use swing_core::unit::{closure_sink, closure_source, PassThrough};
use swing_core::{Tuple, SECOND_US};
use swing_runtime::registry::UnitRegistry;
use swing_runtime::sim::{SimSwarm, SimSwarmConfig};
use swing_telemetry::{names as tn, Telemetry};

/// One fault archetype of the campaign grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// An operator host crashes while frames stream.
    CrashMidStream,
    /// A worker crashes at the same instant a join wave deploys units.
    CrashDuringDeploy,
    /// Both operator hosts die in quick succession; the endpoint host
    /// becomes the sole survivor and must absorb the whole pipeline.
    CascadingCrashes,
    /// The master goes dark across a worker crash: eviction and
    /// re-placement defer until it returns.
    MasterOutage,
    /// All traffic toward one worker blackholes for a window, then
    /// heals — no crash, retransmission carries the gap.
    Partition,
    /// Interleaved leaves and rejoins: two crashes, two replacements.
    JoinLeaveStorm,
}

impl FaultKind {
    /// Every archetype, in grid order.
    pub const ALL: [FaultKind; 6] = [
        FaultKind::CrashMidStream,
        FaultKind::CrashDuringDeploy,
        FaultKind::CascadingCrashes,
        FaultKind::MasterOutage,
        FaultKind::Partition,
        FaultKind::JoinLeaveStorm,
    ];

    /// Stable snake_case name used in the JSON summary.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::CrashMidStream => "crash_mid_stream",
            FaultKind::CrashDuringDeploy => "crash_during_deploy",
            FaultKind::CascadingCrashes => "cascading_crashes",
            FaultKind::MasterOutage => "master_outage",
            FaultKind::Partition => "partition",
            FaultKind::JoinLeaveStorm => "join_leave_storm",
        }
    }

    /// Upper bound on crash-to-re-placement latency for this scenario,
    /// microseconds. The sim's failure-detection delay is one control
    /// period; a master outage adds its own dark window.
    #[must_use]
    pub fn recovery_bound_us(self) -> u64 {
        match self {
            FaultKind::MasterOutage => 8 * SECOND_US,
            _ => 2 * CONTROL_PERIOD_US,
        }
    }
}

/// Campaign shape: which faults, which seeds, how much traffic.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Fault archetypes to sweep.
    pub kinds: Vec<FaultKind>,
    /// Seeds per archetype (the grid is `kinds × seeds`).
    pub seeds: Vec<u64>,
    /// Frames the source senses per run.
    pub frames: u64,
}

impl Default for CampaignConfig {
    /// The full 6-archetype grid over two seeds: 12 grid points.
    fn default() -> Self {
        CampaignConfig {
            kinds: FaultKind::ALL.to_vec(),
            seeds: vec![11, 23],
            frames: 300,
        }
    }
}

/// Outcome of one `(fault, seed)` grid point.
#[derive(Debug, Clone)]
pub struct GridPoint {
    /// Fault archetype name.
    pub fault: String,
    /// Seed of the run.
    pub seed: u64,
    /// Frames the source sensed.
    pub sensed: u64,
    /// Frames the sink played.
    pub played: u64,
    /// Frames that arrived after playback passed them.
    pub stale: u64,
    /// Frames shed at the source admission gate.
    pub shed_source: u64,
    /// Frames shed from operator mailboxes.
    pub shed_queue: u64,
    /// Frames abandoned by the retransmission layer.
    pub lost: u64,
    /// Final deployment epoch.
    pub epoch: u64,
    /// Units re-placed onto survivors.
    pub replaced_units: u64,
    /// Worst crash-to-re-placement latency observed, microseconds.
    pub recovery_max_us: u64,
    /// Invariant 1: the conservation identity held with zero loss.
    pub conserved: bool,
    /// Invariant 2: recovery stayed within the scenario's bound.
    pub recovery_bounded: bool,
    /// Invariant 3: a second run of the same seed exported
    /// byte-identical telemetry.
    pub replay_identical: bool,
}

impl GridPoint {
    /// All three invariants held.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.conserved && self.recovery_bounded && self.replay_identical
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"fault\":\"{}\",\"seed\":{},\"sensed\":{},\"played\":{},\
             \"stale\":{},\"shed_source\":{},\"shed_queue\":{},\"lost\":{},\
             \"epoch\":{},\"replaced_units\":{},\"recovery_max_us\":{},\
             \"conserved\":{},\"recovery_bounded\":{},\"replay_identical\":{},\
             \"passed\":{}}}",
            self.fault,
            self.seed,
            self.sensed,
            self.played,
            self.stale,
            self.shed_source,
            self.shed_queue,
            self.lost,
            self.epoch,
            self.replaced_units,
            self.recovery_max_us,
            self.conserved,
            self.recovery_bounded,
            self.replay_identical,
            self.passed()
        )
    }
}

/// The whole campaign's outcome.
#[derive(Debug, Clone)]
pub struct CampaignSummary {
    /// One entry per `(fault, seed)` grid point, in sweep order.
    pub points: Vec<GridPoint>,
    /// Federated re-run section (the archetypes applied inside members
    /// of a swarm-of-swarms), when the campaign ran one. Attached by
    /// the caller via [`run_federated_chaos`].
    pub federation: Option<FederatedChaosSummary>,
}

impl CampaignSummary {
    /// Grid points whose invariants all held.
    #[must_use]
    pub fn passed(&self) -> usize {
        self.points.iter().filter(|p| p.passed()).count()
    }

    /// Grid points with at least one violated invariant.
    #[must_use]
    pub fn failed(&self) -> usize {
        self.points.len() - self.passed()
    }

    /// Serialize the summary as a single JSON document (the
    /// `campaign_summary.json` CI artifact).
    #[must_use]
    pub fn to_json(&self) -> String {
        let points: Vec<String> = self.points.iter().map(GridPoint::to_json).collect();
        let federation = match &self.federation {
            Some(f) => format!(",\"federation\":{}", f.to_json()),
            None => String::new(),
        };
        format!(
            "{{\"grid_points\":{},\"passed\":{},\"failed\":{},\"points\":[{}]{}}}",
            self.points.len(),
            self.passed(),
            self.failed(),
            points.join(","),
            federation
        )
    }

    /// Write the JSON summary to `path`.
    ///
    /// # Errors
    /// Propagates the underlying filesystem error.
    pub fn write(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

fn graph() -> AppGraph {
    let mut g = AppGraph::new("campaign-app");
    let s = g.add_source("cam");
    let o = g.add_operator("work");
    let k = g.add_sink("out");
    g.connect(s, o).expect("valid edge");
    g.connect(o, k).expect("valid edge");
    g
}

fn registry(frames: u64) -> UnitRegistry {
    let mut r = UnitRegistry::new();
    r.register_source("cam", move || {
        let count = AtomicU64::new(0);
        closure_source(move |_now| {
            if count.fetch_add(1, Ordering::Relaxed) < frames {
                Some(Tuple::new().with("v", 1i64))
            } else {
                None
            }
        })
    });
    r.register_operator("work", || PassThrough);
    r.register_sink("out", || closure_sink(|_, _| ()));
    r
}

fn sim_config(seed: u64) -> SimSwarmConfig {
    let mut c = SimSwarmConfig {
        seed,
        ..SimSwarmConfig::default()
    };
    c.node.input_fps = 30.0;
    c.node.retry = RetryConfig {
        enabled: true,
        deadline_factor: 3.0,
        deadline_floor_us: 50_000,
        deadline_ceiling_us: 400_000,
        backoff_factor: 1.5,
        max_retries: 20,
        dedup_window: 8192,
    };
    c.node.reorder = ReorderConfig {
        span_us: 10 * SECOND_US,
    };
    c.node.telemetry = Telemetry::new();
    c
}

/// One scenario run; returns the final counters plus the telemetry
/// export for the replay comparison.
struct RunOutcome {
    sensed: u64,
    played: u64,
    stale: u64,
    shed_source: u64,
    shed_queue: u64,
    lost: u64,
    epoch: u64,
    replaced_units: u64,
    recovery_count: u64,
    recovery_max_us: u64,
    export: String,
}

fn run_once(kind: FaultKind, seed: u64, frames: u64) -> RunOutcome {
    // Workers A (source + sink host) plus operator hosts. Faults never
    // touch A directly, so the endpoints survive every scenario.
    // CrashMidStream runs with a single operator host to make the crash
    // a *sole-host* loss — the archetype that forces re-placement.
    let mut workers = vec![
        ("A".to_string(), registry(frames)),
        ("B".to_string(), registry(0)),
    ];
    if kind != FaultKind::CrashMidStream {
        workers.push(("C".to_string(), registry(0)));
    }
    let mut swarm =
        SimSwarm::start(graph(), workers, sim_config(seed)).expect("campaign swarm starts");
    let telemetry = swarm.telemetry().clone();

    match kind {
        FaultKind::CrashMidStream => {
            swarm.crash_worker_at("B", 5 * SECOND_US);
        }
        FaultKind::CrashDuringDeploy => {
            // The join wave and the crash land on the same virtual
            // instant: reconcile deploys while a roster entry dies.
            swarm.add_worker_at("D", registry(0), 3 * SECOND_US);
            swarm.crash_worker_at("C", 3 * SECOND_US);
        }
        FaultKind::CascadingCrashes => {
            swarm.crash_worker_at("B", 4 * SECOND_US);
            swarm.crash_worker_at("C", 4 * SECOND_US + SECOND_US / 2);
        }
        FaultKind::MasterOutage => {
            swarm.master_outage(2 * SECOND_US, 8 * SECOND_US);
            swarm.crash_worker_at("C", 3 * SECOND_US);
        }
        FaultKind::Partition => {
            swarm.partition_worker("C", 3 * SECOND_US, 6 * SECOND_US);
        }
        FaultKind::JoinLeaveStorm => {
            swarm.crash_worker_at("C", 2 * SECOND_US);
            swarm.add_worker_at("C2", registry(0), 4 * SECOND_US);
            swarm.crash_worker_at("B", 5 * SECOND_US);
            swarm.add_worker_at("B2", registry(0), 7 * SECOND_US);
        }
    }

    swarm.run_for(60 * SECOND_US);
    let epoch = swarm.epoch();
    let _ = swarm.finish();

    let snap = telemetry.snapshot();
    let recovery = snap.histogram_total(tn::FAILOVER_RECOVERY_US);
    RunOutcome {
        sensed: snap.counter_total(tn::SOURCE_SENSED),
        played: snap.counter_total(tn::SINK_PLAYED),
        stale: snap.counter_total(tn::SINK_STALE),
        shed_source: snap.counter_total(tn::SOURCE_SHED),
        shed_queue: snap.counter_total(tn::EXEC_SHED_IN_QUEUE),
        lost: snap.counter_total(tn::EXEC_LOST),
        epoch,
        replaced_units: snap.counter_total(tn::FAILOVER_REPLACED_UNITS),
        recovery_count: recovery.count,
        recovery_max_us: recovery.max,
        export: telemetry.to_json(),
    }
}

/// Run one `(fault, seed)` grid point: the scenario once for the
/// invariants, once more for the replay comparison.
#[must_use]
pub fn run_grid_point(kind: FaultKind, seed: u64, frames: u64) -> GridPoint {
    let a = run_once(kind, seed, frames);
    let b = run_once(kind, seed, frames);
    let conserved = a.sensed == frames
        && a.lost == 0
        && a.sensed == (a.played + a.stale) + a.shed_source + a.shed_queue + a.lost;
    let recovery_bounded = a.recovery_count == 0 || a.recovery_max_us <= kind.recovery_bound_us();
    GridPoint {
        fault: kind.name().to_string(),
        seed,
        sensed: a.sensed,
        played: a.played,
        stale: a.stale,
        shed_source: a.shed_source,
        shed_queue: a.shed_queue,
        lost: a.lost,
        epoch: a.epoch,
        replaced_units: a.replaced_units,
        recovery_max_us: a.recovery_max_us,
        conserved,
        recovery_bounded,
        replay_identical: a.export == b.export,
    }
}

/// Sweep the whole campaign grid.
#[must_use]
pub fn run_campaign(config: &CampaignConfig) -> CampaignSummary {
    let mut points = Vec::new();
    for &kind in &config.kinds {
        for &seed in &config.seeds {
            points.push(run_grid_point(kind, seed, config.frames));
        }
    }
    CampaignSummary {
        points,
        federation: None,
    }
}

// ---------------------------------------------------------------------------
// Federated chaos re-run: the same archetypes at swarm-of-swarms scale.
// ---------------------------------------------------------------------------

/// Shape of the federated chaos re-run: one federation on the sharded
/// parallel engine, with a fault archetype applied round-robin inside
/// every member swarm.
#[derive(Debug, Clone)]
pub struct FederatedChaosConfig {
    /// Member swarms. The default re-runs the campaign at 100-swarm
    /// scale.
    pub swarms: usize,
    /// Devices per member; at least 4 so every archetype has operator
    /// hosts to kill and a survivor to re-place onto.
    pub workers_per_swarm: usize,
    /// Frames each member's source senses.
    pub frames: u64,
    /// Master seed of the federation.
    pub seed: u64,
    /// Engine worker threads (any value reproduces the same schedule).
    pub threads: usize,
}

impl Default for FederatedChaosConfig {
    fn default() -> Self {
        FederatedChaosConfig {
            swarms: 100,
            workers_per_swarm: 4,
            frames: 150,
            seed: 17,
            threads: std::thread::available_parallelism().map_or(1, std::num::NonZero::get),
        }
    }
}

/// One member's outcome in the federated re-run: which archetype hit
/// it, plus its master-status row (epoch, roster, counters).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FederatedMember {
    /// Fault archetype applied inside this member.
    pub fault: String,
    /// The member's post-run status.
    pub status: crate::federation::SwarmStatus,
}

/// Outcome of the federated chaos re-run.
#[derive(Debug, Clone)]
pub struct FederatedChaosSummary {
    /// Total devices simulated.
    pub devices: usize,
    /// Synchronization windows the engine executed.
    pub windows: u64,
    /// Engine threads used.
    pub threads: usize,
    /// Gateway frames routed over inter-swarm links.
    pub routed: u64,
    /// Gateway frames consumed by peers.
    pub ingress: u64,
    /// Per-member rows, in shard order.
    pub members: Vec<FederatedMember>,
    /// A second run of the same seed exported a byte-identical
    /// federated telemetry rollup.
    pub replay_identical: bool,
}

impl FederatedChaosSummary {
    /// Members whose shed-accounting identity held with zero loss.
    #[must_use]
    pub fn conserved_members(&self) -> usize {
        self.members.iter().filter(|m| m.status.conserved).count()
    }

    /// Every member conserved and the replay matched.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.replay_identical && self.conserved_members() == self.members.len()
    }

    /// Serialize as one JSON object (the `federation` section of
    /// `campaign_summary.json`).
    #[must_use]
    pub fn to_json(&self) -> String {
        let members: Vec<String> = self
            .members
            .iter()
            .map(|m| {
                format!(
                    "{{\"fault\":\"{}\",\"status\":{}}}",
                    m.fault,
                    m.status.to_json()
                )
            })
            .collect();
        format!(
            "{{\"swarms\":{},\"devices\":{},\"windows\":{},\"threads\":{},\
             \"routed\":{},\"ingress\":{},\"conserved_members\":{},\
             \"replay_identical\":{},\"passed\":{},\"members\":[{}]}}",
            self.members.len(),
            self.devices,
            self.windows,
            self.threads,
            self.routed,
            self.ingress,
            self.conserved_members(),
            self.replay_identical,
            self.passed(),
            members.join(",")
        )
    }
}

/// Apply one archetype inside a member swarm. Worker `w0` hosts the
/// endpoints and is never touched; the single-swarm campaign's timings
/// are kept so the federated run stresses the same recovery paths.
fn apply_member_fault(swarm: &mut SimSwarm, kind: FaultKind) {
    use crate::federation::member_registry;
    match kind {
        FaultKind::CrashMidStream => {
            swarm.crash_worker_at("w1", 5 * SECOND_US);
        }
        FaultKind::CrashDuringDeploy => {
            swarm.add_worker_at("wj", member_registry(0), 3 * SECOND_US);
            swarm.crash_worker_at("w2", 3 * SECOND_US);
        }
        FaultKind::CascadingCrashes => {
            swarm.crash_worker_at("w1", 4 * SECOND_US);
            swarm.crash_worker_at("w2", 4 * SECOND_US + SECOND_US / 2);
        }
        FaultKind::MasterOutage => {
            swarm.master_outage(2 * SECOND_US, 8 * SECOND_US);
            swarm.crash_worker_at("w2", 3 * SECOND_US);
        }
        FaultKind::Partition => {
            swarm.partition_worker("w1", 3 * SECOND_US, 6 * SECOND_US);
        }
        FaultKind::JoinLeaveStorm => {
            swarm.crash_worker_at("w2", 2 * SECOND_US);
            swarm.add_worker_at("wj", member_registry(0), 4 * SECOND_US);
            swarm.crash_worker_at("w1", 5 * SECOND_US);
            swarm.add_worker_at("wk", member_registry(0), 7 * SECOND_US);
        }
    }
}

fn run_federated_once(config: &FederatedChaosConfig) -> crate::federation::FederationReport {
    let mut fed = crate::federation::Federation::build(crate::federation::FederationConfig {
        swarms: config.swarms,
        workers_per_swarm: config.workers_per_swarm,
        frames_per_source: config.frames,
        seed: config.seed,
        threads: config.threads,
        ..crate::federation::FederationConfig::default()
    })
    .expect("federated campaign builds");
    for i in 0..config.swarms {
        apply_member_fault(fed.swarm_mut(i), FaultKind::ALL[i % FaultKind::ALL.len()]);
    }
    fed.run()
}

/// Re-run the chaos archetypes at federation scale: every member swarm
/// takes a fault from the grid (round-robin), the sharded engine runs
/// them in parallel, and the run repeats once to check that the whole
/// federated schedule is a pure function of its seed. Attach the
/// result to a [`CampaignSummary`] to land it in
/// `campaign_summary.json`.
///
/// # Panics
/// If `workers_per_swarm < 4` — the archetypes need two operator
/// hosts to fault and a survivor.
#[must_use]
pub fn run_federated_chaos(config: &FederatedChaosConfig) -> FederatedChaosSummary {
    assert!(
        config.workers_per_swarm >= 4,
        "federated archetypes need at least 4 workers per swarm"
    );
    let a = run_federated_once(config);
    let b = run_federated_once(config);
    let members = a
        .swarms
        .iter()
        .map(|s| FederatedMember {
            fault: FaultKind::ALL[s.id % FaultKind::ALL.len()]
                .name()
                .to_string(),
            status: s.clone(),
        })
        .collect();
    FederatedChaosSummary {
        devices: a.devices,
        windows: a.windows,
        threads: a.threads,
        routed: a.routed,
        ingress: a.federated_ingress(),
        members,
        replay_identical: a.federated_json == b.federated_json && a.swarms == b.swarms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_single_grid_point_passes_and_serializes() {
        let p = run_grid_point(FaultKind::CrashMidStream, 7, 150);
        assert!(p.conserved, "conservation violated: {p:?}");
        assert!(p.recovery_bounded, "recovery unbounded: {p:?}");
        assert!(p.replay_identical, "replay diverged: {p:?}");
        let json = p.to_json();
        assert!(json.contains("\"fault\":\"crash_mid_stream\""));
        assert!(json.contains("\"passed\":true"));
    }

    #[test]
    fn federated_chaos_conserves_replays_and_reports_member_status() {
        let cfg = FederatedChaosConfig {
            swarms: 12, // two full passes over the archetype grid
            workers_per_swarm: 4,
            frames: 90,
            seed: 5,
            threads: 2,
        };
        let fed = run_federated_chaos(&cfg);
        assert!(fed.passed(), "federated chaos failed: {fed:?}");
        assert_eq!(fed.devices, 48);
        // Crash archetypes moved their member's epoch; rosters reflect
        // the churn (a lone crash leaves 3, cascading leaves 2, the
        // join/leave storm restores 4).
        for m in &fed.members {
            match m.fault.as_str() {
                "crash_mid_stream" => assert_eq!(m.status.alive_workers, 3),
                "cascading_crashes" => {
                    assert_eq!(m.status.alive_workers, 2);
                    assert!(m.status.epoch > 1);
                }
                "join_leave_storm" => assert_eq!(m.status.alive_workers, 4),
                _ => {}
            }
        }
        // The section lands in the campaign summary JSON with the
        // MasterStatus-style per-member fields.
        let summary = CampaignSummary {
            points: Vec::new(),
            federation: Some(fed),
        };
        let json = summary.to_json();
        assert!(json.contains("\"federation\":{\"swarms\":12"));
        assert!(json.contains("\"epoch\":"));
        assert!(json.contains("\"alive_workers\":"));
    }

    #[test]
    fn summary_json_counts_pass_and_fail() {
        let config = CampaignConfig {
            kinds: vec![FaultKind::Partition],
            seeds: vec![3],
            frames: 120,
        };
        let summary = run_campaign(&config);
        assert_eq!(summary.points.len(), 1);
        assert_eq!(summary.failed(), 0, "{:?}", summary.points);
        let json = summary.to_json();
        assert!(json.starts_with("{\"grid_points\":1"));
        assert!(json.contains("\"points\":["));
    }
}
