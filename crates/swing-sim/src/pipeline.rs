//! Multi-stage pipeline simulation: the full dataflow-graph programming
//! model with *distributed* routing.
//!
//! The paper's apps are graphs of four function units, and "Swing
//! enables programmers to express a single compute-intensive operation
//! as separate function units, e.g., detect() and recognize()"
//! (§IV-A) with LRS "executed at each upstream function unit in the
//! application dataflow graph" (§V-A). This simulator runs an arbitrary
//! [`AppGraph`] under a [`Deployment`] of stage replicas to devices:
//! every instance with downstreams owns its own [`Router`], measures its
//! own per-downstream latencies from ACKs, and makes its own selection
//! and weighting decisions — nothing is coordinated centrally.
//!
//! The network model is per-device-pair link queues (quality from the
//! *receiving* device's signal zone, as in the single-stage swarm
//! simulator); instances co-located on one device exchange tuples
//! through memory at negligible cost, so placement decisions — split a
//! pipeline across devices or fuse stages onto one — have the latency
//! consequences the paper's design discussion implies.

use std::collections::{BTreeMap, HashMap, VecDeque};
use swing_core::config::RouterConfig;
use swing_core::event::EventQueue;
use swing_core::graph::{AppGraph, Deployment, Role, StageId};
use swing_core::rate::Pacer;
use swing_core::rng::DetRng;
use swing_core::routing::Router;
use swing_core::stats::Summary;
use swing_core::timing::{ACK_DELAY_US, LOCAL_HOP_US};
use swing_core::{DeviceId, SeqNo, UnitId, SECOND_US};
use swing_device::mobility::SignalZone;
use swing_device::profile::DeviceProfile;
use swing_device::radio::link_quality;
use swing_net::link::SenderRadio;

/// Per-stage compute cost: milliseconds on the reference device (`H`);
/// other devices scale by their speed factor. Stages not listed cost 0
/// (sources and sinks usually).
#[derive(Debug, Clone, Default)]
pub struct StageCosts {
    costs: BTreeMap<StageId, f64>,
}

impl StageCosts {
    /// No stage costs anything yet.
    #[must_use]
    pub fn new() -> Self {
        StageCosts::default()
    }

    /// Set `stage`'s per-tuple cost on the reference device.
    #[must_use]
    pub fn with(mut self, stage: StageId, reference_ms: f64) -> Self {
        self.costs.insert(stage, reference_ms);
        self
    }

    fn cost_ms(&self, stage: StageId) -> f64 {
        self.costs.get(&stage).copied().unwrap_or(0.0)
    }
}

/// A device participating in the pipeline.
#[derive(Debug, Clone)]
pub struct PipelineNode {
    /// Hardware profile.
    pub profile: DeviceProfile,
    /// Static signal zone (no mobility in this simulator).
    pub zone: SignalZone,
}

impl PipelineNode {
    /// A device in the good-signal zone.
    #[must_use]
    pub fn new(profile: DeviceProfile) -> Self {
        PipelineNode {
            profile,
            zone: SignalZone::Good,
        }
    }

    /// Place the device in a zone.
    #[must_use]
    pub fn in_zone(mut self, zone: SignalZone) -> Self {
        self.zone = zone;
        self
    }
}

/// Pipeline simulation parameters.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Router configuration used by every upstream instance.
    pub router: RouterConfig,
    /// Source rate, tuples per second.
    pub input_fps: f64,
    /// Run length, microseconds.
    pub duration_us: u64,
    /// RNG seed.
    pub seed: u64,
    /// Tuple payload size per edge hop, bytes.
    pub tuple_bytes: usize,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            router: RouterConfig::default(),
            input_fps: 24.0,
            duration_us: 30 * SECOND_US,
            seed: 7,
            tuple_bytes: 6_040,
        }
    }
}

/// Result of a pipeline run.
#[derive(Debug, Clone, Default)]
pub struct PipelineReport {
    /// Tuples emitted by the source.
    pub generated: u64,
    /// Tuples that reached a sink.
    pub completed: u64,
    /// Mean delivered rate, tuples per second.
    pub throughput: f64,
    /// End-to-end latency, milliseconds.
    pub latency_ms: Summary,
    /// Tuples processed per instance.
    pub per_instance: BTreeMap<UnitId, u64>,
    /// Mean queue + service time per stage, milliseconds.
    pub per_stage_ms: BTreeMap<StageId, f64>,
}

impl PipelineReport {
    /// Tuples processed by each instance of `stage`, in instance order.
    #[must_use]
    pub fn stage_shares(&self, deployment: &Deployment, stage: StageId) -> Vec<(UnitId, u64)> {
        deployment
            .instances_of(stage)
            .map(|u| (u, self.per_instance.get(&u).copied().unwrap_or(0)))
            .collect()
    }
}

/// A tuple waiting at / being processed by an instance.
#[derive(Debug, Clone, Copy)]
struct Job {
    seq: u64,
    created: u64,
    arrived: u64,
    /// Who to ACK after processing: `(upstream instance, its ack seq)`.
    upstream: Option<(UnitId, u64)>,
}

#[derive(Debug, Clone)]
enum Ev {
    Emit,
    Arrive {
        inst: UnitId,
        job: Job,
    },
    EndService {
        inst: UnitId,
    },
    AckArrive {
        upstream: UnitId,
        ack_seq: u64,
        processing_us: u64,
    },
}

struct Instance {
    stage: StageId,
    device: DeviceId,
    role: Role,
    service_us: u64,
    router: Option<Router>,
    queue: VecDeque<Job>,
    current: Option<Job>,
    processed: u64,
    stage_time_sum_us: u64,
    next_ack_seq: u64,
}

struct Sim<'a> {
    nodes: &'a [PipelineNode],
    config: &'a PipelineConfig,
    instances: BTreeMap<UnitId, Instance>,
    links: HashMap<(DeviceId, DeviceId), SenderRadio>,
    queue: EventQueue<Ev>,
    rng: DetRng,
    report: PipelineReport,
}

impl Sim<'_> {
    /// Route a job out of `from` toward one of its downstream instances.
    fn dispatch(&mut self, from: UnitId, seq: u64, created: u64, now: u64) {
        let (dest, ack_seq, src_dev) = {
            let inst = self.instances.get_mut(&from).expect("instance exists");
            let Some(router) = inst.router.as_mut() else {
                return; // sink: nothing downstream
            };
            router.note_arrival(now);
            let Ok(dest) = router.route(now) else {
                return; // no downstream left: tuple dropped
            };
            let ack_seq = inst.next_ack_seq;
            inst.next_ack_seq += 1;
            router.on_send(SeqNo(ack_seq), dest, now);
            (dest, ack_seq, inst.device)
        };
        let dst_dev = self.instances[&dest].device;
        let arrive_at = if src_dev == dst_dev {
            now + LOCAL_HOP_US
        } else {
            let quality = link_quality(self.nodes[dst_dev.0 as usize].zone.rssi_dbm());
            let radio = self.links.entry((src_dev, dst_dev)).or_default();
            match radio.enqueue(now, self.config.tuple_bytes, quality, &mut self.rng) {
                Some(tx) => tx.end_us,
                None => return, // disconnected: tuple lost
            }
        };
        self.queue.schedule(
            arrive_at,
            Ev::Arrive {
                inst: dest,
                job: Job {
                    seq,
                    created,
                    arrived: arrive_at,
                    upstream: Some((from, ack_seq)),
                },
            },
        );
    }

    /// Begin serving the next queued job on an idle instance.
    fn maybe_start(&mut self, inst_id: UnitId, now: u64) {
        let inst = self.instances.get_mut(&inst_id).expect("instance exists");
        if inst.current.is_some() {
            return;
        }
        let Some(job) = inst.queue.pop_front() else {
            return;
        };
        inst.current = Some(job);
        let jitter = 1.0 + 0.08 * self.rng.random_range(-1.0..1.0);
        let service = (inst.service_us as f64 * jitter) as u64;
        self.queue
            .schedule(now + service, Ev::EndService { inst: inst_id });
    }

    fn handle(&mut self, now: u64, ev: Ev, pacer: &mut Pacer) {
        match ev {
            Ev::Emit => {
                let seq = self.report.generated;
                self.report.generated += 1;
                // Sources cost nothing: emit and dispatch immediately
                // from every source instance (normally one).
                let source_ids: Vec<UnitId> = self
                    .instances
                    .iter()
                    .filter(|(_, i)| i.role == Role::Source)
                    .map(|(u, _)| *u)
                    .collect();
                for src in source_ids {
                    if let Some(i) = self.instances.get_mut(&src) {
                        i.processed += 1;
                    }
                    self.dispatch(src, seq, now, now);
                }
                let next = pacer.consume_next().max(now + 1);
                self.queue.schedule(next, Ev::Emit);
            }
            Ev::Arrive { inst, job } => {
                self.instances
                    .get_mut(&inst)
                    .expect("instance exists")
                    .queue
                    .push_back(job);
                self.maybe_start(inst, now);
            }
            Ev::EndService { inst } => {
                let (job, role, processing) = {
                    let i = self.instances.get_mut(&inst).expect("instance exists");
                    let job = i.current.take().expect("a job was being served");
                    i.processed += 1;
                    let stage_time = now.saturating_sub(job.arrived);
                    i.stage_time_sum_us += stage_time;
                    (job, i.role, now.saturating_sub(job.arrived))
                };
                if let Some((upstream, ack_seq)) = job.upstream {
                    self.queue.schedule(
                        now + ACK_DELAY_US,
                        Ev::AckArrive {
                            upstream,
                            ack_seq,
                            processing_us: processing,
                        },
                    );
                }
                if role == Role::Sink {
                    self.report.completed += 1;
                    self.report
                        .latency_ms
                        .update(now.saturating_sub(job.created) as f64 / 1_000.0);
                } else {
                    self.dispatch(inst, job.seq, job.created, now);
                }
                self.maybe_start(inst, now);
            }
            Ev::AckArrive {
                upstream,
                ack_seq,
                processing_us,
            } => {
                if let Some(router) = self
                    .instances
                    .get_mut(&upstream)
                    .and_then(|i| i.router.as_mut())
                {
                    router.on_ack(SeqNo(ack_seq), now, processing_us);
                }
            }
        }
    }
}

/// Simulate `graph` deployed per `deployment` over `nodes`.
///
/// # Panics
/// Panics if the graph is invalid, the deployment references unknown
/// devices, or a non-sink stage instance has no deployed downstreams.
#[must_use]
pub fn run_pipeline(
    graph: &AppGraph,
    deployment: &Deployment,
    nodes: &[PipelineNode],
    costs: &StageCosts,
    config: &PipelineConfig,
) -> PipelineReport {
    graph.validate().expect("valid graph");
    let mut instances: BTreeMap<UnitId, Instance> = BTreeMap::new();
    for (unit, stage, device) in deployment.iter() {
        let node = nodes
            .get(device.0 as usize)
            .unwrap_or_else(|| panic!("deployment references unknown device {device}"));
        let role = graph.stage(stage).expect("stage exists").role;
        let service_ms = costs.cost_ms(stage) / node.profile.speed_factor();
        let downstream = deployment
            .downstream_instances(graph, unit)
            .expect("deployed unit");
        let router = if role == Role::Sink {
            None
        } else {
            assert!(
                !downstream.is_empty(),
                "stage {stage} instance {unit} has no deployed downstreams"
            );
            let mut r = Router::new(config.router.clone(), config.seed ^ u64::from(unit.0));
            for d in downstream {
                r.add_downstream(d, 0);
            }
            Some(r)
        };
        instances.insert(
            unit,
            Instance {
                stage,
                device,
                role,
                service_us: (service_ms * 1_000.0) as u64,
                router,
                queue: VecDeque::new(),
                current: None,
                processed: 0,
                stage_time_sum_us: 0,
                next_ack_seq: 0,
            },
        );
    }
    assert!(
        instances.values().any(|i| i.role == Role::Source),
        "no deployed source instance"
    );

    let mut sim = Sim {
        nodes,
        config,
        instances,
        links: HashMap::new(),
        queue: EventQueue::new(),
        rng: DetRng::seed_from_u64(config.seed ^ 0xA5A5_5A5A),
        report: PipelineReport::default(),
    };
    let mut pacer = Pacer::new(config.input_fps, 0);
    sim.queue.schedule(0, Ev::Emit);
    while let Some(t) = sim.queue.peek_time() {
        if t > config.duration_us {
            break;
        }
        let (now, ev) = sim.queue.pop().expect("peeked event");
        sim.handle(now, ev, &mut pacer);
    }

    let mut report = sim.report;
    report.throughput = report.completed as f64 / (config.duration_us as f64 / 1e6);
    let mut stage_sum: BTreeMap<StageId, (u64, u64)> = BTreeMap::new();
    for inst in sim.instances.values() {
        let e = stage_sum.entry(inst.stage).or_insert((0, 0));
        e.0 += inst.stage_time_sum_us;
        e.1 += inst.processed;
    }
    report.per_instance = sim
        .instances
        .iter()
        .map(|(u, i)| (*u, i.processed))
        .collect();
    report.per_stage_ms = stage_sum
        .into_iter()
        .map(|(s, (sum, n))| {
            (
                s,
                if n > 0 {
                    sum as f64 / n as f64 / 1_000.0
                } else {
                    0.0
                },
            )
        })
        .collect();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use swing_core::routing::Policy;
    use swing_device::profile::testbed;

    /// The paper's four-stage face app: camera -> detect -> recognize ->
    /// display, with detect and recognize replicated across workers.
    fn face_like() -> (AppGraph, StageId, StageId, StageId, StageId) {
        let mut g = AppGraph::new("pipeline-face");
        let cam = g.add_source("camera");
        let det = g.add_operator("detect");
        let rec = g.add_operator("recognize");
        let dsp = g.add_sink("display");
        g.connect(cam, det).unwrap();
        g.connect(det, rec).unwrap();
        g.connect(rec, dsp).unwrap();
        (g, cam, det, rec, dsp)
    }

    fn good_nodes(letters: &[&str]) -> Vec<PipelineNode> {
        let tb = testbed();
        letters
            .iter()
            .map(|l| PipelineNode::new(tb.iter().find(|p| p.name == *l).unwrap().clone()))
            .collect()
    }

    fn config(policy: Policy) -> PipelineConfig {
        PipelineConfig {
            router: RouterConfig::new(policy),
            ..PipelineConfig::default()
        }
    }

    #[test]
    fn four_stage_pipeline_sustains_target_rate() {
        let (g, cam, det, rec, dsp) = face_like();
        // A: camera+display; G,H: detect; I,B: recognize.
        let nodes = good_nodes(&["A", "G", "H", "I", "B"]);
        let mut d = Deployment::new();
        d.place(cam, DeviceId(0));
        d.place(det, DeviceId(1));
        d.place(det, DeviceId(2));
        d.place(rec, DeviceId(3));
        d.place(rec, DeviceId(4));
        d.place(dsp, DeviceId(0));
        // Detect ~40 ms, recognize ~31 ms on the reference device: two
        // replicas of each cover 24 FPS.
        let costs = StageCosts::new().with(det, 40.0).with(rec, 31.0);
        let report = run_pipeline(&g, &d, &nodes, &costs, &config(Policy::Lrs));
        assert!(
            report.throughput > 21.0,
            "throughput {:.1}",
            report.throughput
        );
        // End-to-end ≈ hops + detect + recognize, well under a second.
        assert!(
            report.latency_ms.mean() < 400.0,
            "latency {:.0} ms",
            report.latency_ms.mean()
        );
        // Both stages did real work.
        assert!(report.per_stage_ms[&det] > 20.0);
        assert!(report.per_stage_ms[&rec] > 15.0);
    }

    #[test]
    fn each_upstream_routes_around_its_own_slow_downstream() {
        // Distributed routing: the detect instances each discover that
        // one recognize replica runs on the slow E and shift their
        // traffic to the fast replica — with no central coordinator.
        let (g, cam, det, rec, dsp) = face_like();
        let nodes = good_nodes(&["A", "G", "H", "I", "E"]);
        let mut d = Deployment::new();
        d.place(cam, DeviceId(0));
        d.place(det, DeviceId(1));
        d.place(det, DeviceId(2));
        let fast_rec = d.place(rec, DeviceId(3)); // I
        let slow_rec = d.place(rec, DeviceId(4)); // E (6.5x slower)
        d.place(dsp, DeviceId(0));
        let costs = StageCosts::new().with(det, 30.0).with(rec, 40.0);
        let report = run_pipeline(&g, &d, &nodes, &costs, &config(Policy::Lrs));
        let fast = report.per_instance[&fast_rec];
        let slow = report.per_instance[&slow_rec];
        assert!(
            fast > 2 * slow,
            "fast recognize got {fast}, slow got {slow}"
        );
        assert!(report.throughput > 18.0, "{:.1}", report.throughput);
    }

    #[test]
    fn fusing_stages_on_one_device_cuts_transmission_latency() {
        let (g, cam, det, rec, dsp) = face_like();
        let costs = StageCosts::new().with(det, 20.0).with(rec, 15.0);
        let cfg = PipelineConfig {
            input_fps: 10.0,
            ..config(Policy::Lrs)
        };

        // Split: every stage on its own device (3 radio hops).
        let nodes = good_nodes(&["A", "H", "I"]);
        let mut split = Deployment::new();
        split.place(cam, DeviceId(0));
        split.place(det, DeviceId(1));
        split.place(rec, DeviceId(2));
        split.place(dsp, DeviceId(0));
        let split_report = run_pipeline(&g, &split, &nodes, &costs, &cfg);

        // Fused: detect+recognize co-located on H (1 radio hop there,
        // in-memory hand-off, 1 hop back).
        let mut fused = Deployment::new();
        fused.place(cam, DeviceId(0));
        fused.place(det, DeviceId(1));
        fused.place(rec, DeviceId(1));
        fused.place(dsp, DeviceId(0));
        let fused_report = run_pipeline(&g, &fused, &nodes, &costs, &cfg);

        assert!(
            fused_report.latency_ms.mean() < split_report.latency_ms.mean(),
            "fused {:.1} ms vs split {:.1} ms",
            fused_report.latency_ms.mean(),
            split_report.latency_ms.mean()
        );
        assert!((fused_report.throughput - 10.0).abs() < 1.0);
    }

    #[test]
    fn pipeline_runs_are_deterministic() {
        let (g, cam, det, rec, dsp) = face_like();
        let nodes = good_nodes(&["A", "G", "H"]);
        let mk = || {
            let mut d = Deployment::new();
            d.place(cam, DeviceId(0));
            d.place(det, DeviceId(1));
            d.place(rec, DeviceId(2));
            d.place(dsp, DeviceId(0));
            let costs = StageCosts::new().with(det, 25.0).with(rec, 25.0);
            run_pipeline(&g, &d, &nodes, &costs, &config(Policy::Lrs))
        };
        let a = mk();
        let b = mk();
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.latency_ms, b.latency_ms);
        assert_eq!(a.per_instance, b.per_instance);
    }

    #[test]
    fn overloaded_stage_becomes_the_bottleneck() {
        let (g, cam, det, rec, dsp) = face_like();
        let nodes = good_nodes(&["A", "H", "I"]);
        let mut d = Deployment::new();
        d.place(cam, DeviceId(0));
        d.place(det, DeviceId(1));
        d.place(rec, DeviceId(2));
        d.place(dsp, DeviceId(0));
        // recognize takes 100 ms on H-class hardware: ~10 FPS ceiling.
        let costs = StageCosts::new().with(det, 10.0).with(rec, 100.0);
        let report = run_pipeline(&g, &d, &nodes, &costs, &config(Policy::Lrs));
        assert!(
            report.throughput < 13.0,
            "throughput {:.1} should be capped by recognize",
            report.throughput
        );
        // The bottleneck stage accumulates queueing.
        assert!(report.per_stage_ms[&rec] > report.per_stage_ms[&det]);
    }

    #[test]
    #[should_panic(expected = "no deployed downstreams")]
    fn missing_downstream_deployment_panics() {
        let (g, cam, det, _rec, dsp) = face_like();
        let nodes = good_nodes(&["A", "H"]);
        let mut d = Deployment::new();
        d.place(cam, DeviceId(0));
        d.place(det, DeviceId(1)); // recognize never placed
        d.place(dsp, DeviceId(0));
        let costs = StageCosts::new();
        let _ = run_pipeline(&g, &d, &nodes, &costs, &PipelineConfig::default());
    }
}
