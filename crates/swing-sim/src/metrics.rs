//! Measurement records produced by swarm simulations — everything needed
//! to regenerate the paper's tables and figures.

use swing_core::stats::{Reservoir, Summary};
use swing_device::power::EnergyLedger;

/// Lifecycle timestamps of one sensed frame, all in microseconds of
/// simulation time. Stages that never happened (dropped / lost frames)
/// are `None`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FrameRecord {
    /// Source sequence number.
    pub seq: u64,
    /// When the source sensed the frame.
    pub created_us: u64,
    /// Worker index the frame was routed to.
    pub worker: Option<usize>,
    /// When the dispatcher handed it to the network (timestamp attached).
    pub dispatched_us: Option<u64>,
    /// When the last byte arrived at the worker.
    pub arrived_us: Option<u64>,
    /// When the worker began processing it.
    pub started_us: Option<u64>,
    /// When processing finished.
    pub finished_us: Option<u64>,
    /// When the result reached the sink.
    pub sink_us: Option<u64>,
    /// When the reorder buffer released it for playback.
    pub played_us: Option<u64>,
    /// Dropped at the source's sensing buffer (never dispatched).
    pub dropped: bool,
    /// Dispatched but never completed (device left / link broke).
    pub lost: bool,
    /// Times the frame was re-dispatched after its worker departed
    /// (only with `resend_orphans`).
    pub retries: u32,
}

impl FrameRecord {
    /// Network transmission delay, measured like the paper: from the
    /// socket write (dispatch) to arrival at the worker — in-flight
    /// window queueing plus airtime.
    #[must_use]
    pub fn transmission_us(&self) -> Option<u64> {
        Some(self.arrived_us?.saturating_sub(self.dispatched_us?))
    }

    /// Time spent waiting in the source's sensing buffer before dispatch
    /// (grows when the dispatcher is blocked by full windows).
    #[must_use]
    pub fn source_wait_us(&self) -> Option<u64> {
        Some(self.dispatched_us?.saturating_sub(self.created_us))
    }

    /// Wait in the worker's input queue ("Queuing" in Fig. 2).
    #[must_use]
    pub fn queuing_us(&self) -> Option<u64> {
        Some(self.started_us?.saturating_sub(self.arrived_us?))
    }

    /// Compute time at the worker ("Processing").
    #[must_use]
    pub fn processing_us(&self) -> Option<u64> {
        Some(self.finished_us?.saturating_sub(self.started_us?))
    }

    /// Sensor-to-sink latency of a completed frame.
    #[must_use]
    pub fn e2e_us(&self) -> Option<u64> {
        Some(self.sink_us?.saturating_sub(self.created_us))
    }

    /// Whether the frame made it to the sink.
    #[must_use]
    pub fn completed(&self) -> bool {
        self.sink_us.is_some()
    }
}

/// Per-worker statistics over a whole run (drives Figs. 5 and 6).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WorkerStats {
    /// Device name (testbed letter).
    pub name: String,
    /// Frames received by this worker.
    pub received: u64,
    /// Results this worker delivered to the sink.
    pub completed: u64,
    /// Mean input data rate, frames per second (Fig. 5 right panels).
    pub input_fps: f64,
    /// Mean total CPU utilization 0..=1 as `top` would report it,
    /// including background load (Fig. 5 left panels).
    pub cpu_util: f64,
    /// Mean app-attributable power, watts (Fig. 6 bars).
    pub cpu_power_w: f64,
    /// Mean Wi-Fi power, watts (Fig. 6 stacked component).
    pub wifi_power_w: f64,
    /// Bytes received over the air.
    pub bytes_rx: u64,
    /// Integrated energy ledger.
    pub energy: EnergyLedger,
    /// Remaining battery fraction at the end of the run (0..=1; a dead
    /// worker reads 0, an infinite cloudlet pack reads 1).
    pub battery_frac: f64,
}

impl WorkerStats {
    /// Total app power (CPU + Wi-Fi), watts.
    #[must_use]
    pub fn power_w(&self) -> f64 {
        self.cpu_power_w + self.wifi_power_w
    }
}

/// One row of the per-second timeline (drives Figs. 9 and 10).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TimelinePoint {
    /// End of the window, seconds.
    pub t_s: f64,
    /// Frames completed in the window (system throughput, FPS).
    pub total_fps: f64,
    /// Per-worker completions in the window, FPS.
    pub per_worker_fps: Vec<f64>,
    /// Per-worker RSSI at the window end, dBm.
    pub per_worker_rssi: Vec<f64>,
}

/// Result of a swarm simulation run.
#[derive(Debug, Clone, Default)]
pub struct SwarmReport {
    /// Run length in seconds.
    pub duration_s: f64,
    /// Frames the source sensed.
    pub generated: u64,
    /// Frames dropped at the source's sensing buffer.
    pub dropped_at_source: u64,
    /// Frames dispatched but never completed.
    pub lost: u64,
    /// Frames whose results reached the sink.
    pub completed: u64,
    /// Mean system throughput, frames per second (Fig. 4 left).
    pub throughput_fps: f64,
    /// End-to-end latency summary in milliseconds (Fig. 4 right).
    pub latency_ms: Summary,
    /// Reservoir of latency samples (ms) for percentile reporting.
    pub latency_dist: Reservoir,
    /// Per-worker statistics in worker order.
    pub workers: Vec<WorkerStats>,
    /// Per-second timeline.
    pub timeline: Vec<TimelinePoint>,
    /// Per-frame records (present when `record_frames` was set).
    pub frames: Vec<FrameRecord>,
    /// Frames the reorder buffer skipped at playback.
    pub reorder_skipped: u64,
    /// Workers whose battery drained to empty mid-run, as
    /// `(time_s, name)` in death order.
    pub battery_deaths: Vec<(f64, String)>,
    /// One-shot low-power threshold crossings, as `(time_s, name)`.
    pub low_power_events: Vec<(f64, String)>,
    /// Every permanent removal — battery cliff, scripted leave,
    /// mobility disconnect, broken link — as `(time_s, name)` in
    /// removal order. Battery deaths appear here too.
    pub departures: Vec<(f64, String)>,
}

impl SwarmReport {
    /// Export this report into a telemetry domain using the *same*
    /// metric schema ([`swing_telemetry::names`]) the live runtime
    /// emits, so simulated and live runs are scraped, plotted, and
    /// diffed with one toolchain:
    ///
    /// - the source's edge (`worker="source"`, `unit="0"`):
    ///   `swing_source_sensed_total`, `swing_exec_sent_total`
    ///   (dispatched frames), `swing_exec_retried_total`,
    ///   `swing_exec_lost_total`;
    /// - the sink (`worker="sink"`, `unit="2"`):
    ///   `swing_sink_played_total`, `swing_sink_skipped_total`, and the
    ///   `swing_sink_e2e_latency_us` histogram rebuilt from the
    ///   latency reservoir;
    /// - per worker (`worker=<name>`, `unit="1"`):
    ///   `swing_exec_acked_total` (frames the worker accepted),
    ///   `swing_exec_sent_total` (results forwarded to the sink), the
    ///   `swing_device_*` power/utilization gauges, and
    ///   `swing_net_bytes_received_total{link=<name>}`.
    ///
    /// Every series additionally carries `policy=<policy>` so reports
    /// from different runs can share one domain without colliding.
    pub fn export_telemetry(&self, telemetry: &swing_telemetry::Telemetry, policy: &str) {
        use swing_telemetry::names as n;
        let src: &[(&str, &str)] = &[
            (n::LABEL_WORKER, "source"),
            (n::LABEL_UNIT, "0"),
            (n::LABEL_POLICY, policy),
        ];
        telemetry.counter(n::SOURCE_SENSED, src).add(self.generated);
        telemetry
            .counter(n::EXEC_SENT, src)
            .add(self.generated.saturating_sub(self.dropped_at_source));
        telemetry
            .counter(n::EXEC_RETRIED, src)
            .add(self.frames.iter().map(|f| u64::from(f.retries)).sum());
        telemetry.counter(n::EXEC_LOST, src).add(self.lost);

        let sink: &[(&str, &str)] = &[
            (n::LABEL_WORKER, "sink"),
            (n::LABEL_UNIT, "2"),
            (n::LABEL_POLICY, policy),
        ];
        telemetry.counter(n::SINK_PLAYED, sink).add(self.completed);
        telemetry
            .counter(n::SINK_SKIPPED, sink)
            .add(self.reorder_skipped);
        let e2e = telemetry.histogram(n::SINK_E2E_LATENCY_US, sink);
        for ms in self.latency_dist.samples() {
            e2e.record((ms.max(0.0) * 1_000.0) as u64);
        }

        for w in &self.workers {
            let labels: &[(&str, &str)] = &[
                (n::LABEL_WORKER, &w.name),
                (n::LABEL_UNIT, "1"),
                (n::LABEL_POLICY, policy),
            ];
            telemetry.counter(n::EXEC_ACKED, labels).add(w.received);
            telemetry.counter(n::EXEC_SENT, labels).add(w.completed);
            let device: &[(&str, &str)] = &[(n::LABEL_WORKER, &w.name), (n::LABEL_POLICY, policy)];
            telemetry.gauge(n::DEVICE_CPU_UTIL, device).set(w.cpu_util);
            telemetry
                .gauge(n::DEVICE_CPU_POWER_W, device)
                .set(w.cpu_power_w);
            telemetry
                .gauge(n::DEVICE_WIFI_POWER_W, device)
                .set(w.wifi_power_w);
            telemetry
                .gauge(n::DEVICE_INPUT_FPS, device)
                .set(w.input_fps);
            telemetry.gauge(n::BATTERY_FRAC, device).set(w.battery_frac);
            telemetry
                .gauge(n::DRAIN_W, device)
                .set(w.energy.mean_power_w());
            telemetry
                .counter(
                    n::NET_BYTES_RECEIVED,
                    &[(n::LABEL_LINK, &w.name), (n::LABEL_POLICY, policy)],
                )
                .add(w.bytes_rx);
        }
        for (_, name) in &self.battery_deaths {
            telemetry
                .counter(
                    n::DEATHS,
                    &[(n::LABEL_WORKER, name), (n::LABEL_POLICY, policy)],
                )
                .add(1);
        }
        for (_, name) in &self.low_power_events {
            telemetry
                .counter(
                    n::LOW_POWER,
                    &[(n::LABEL_WORKER, name), (n::LABEL_POLICY, policy)],
                )
                .add(1);
        }
    }

    /// [`export_telemetry`](Self::export_telemetry) into a fresh domain.
    #[must_use]
    pub fn to_telemetry(&self, policy: &str) -> swing_telemetry::Telemetry {
        let telemetry = swing_telemetry::Telemetry::new();
        self.export_telemetry(&telemetry, policy);
        telemetry
    }

    /// End-to-end latency percentile in milliseconds (0 if no frames
    /// completed). `p` in `[0, 1]`.
    #[must_use]
    pub fn latency_percentile_ms(&self, p: f64) -> f64 {
        self.latency_dist.quantile(p).unwrap_or(0.0)
    }

    /// Seconds until the first battery death, or `None` when every
    /// worker's pack outlived the run.
    #[must_use]
    pub fn time_to_first_death_s(&self) -> Option<f64> {
        self.battery_deaths.first().map(|(t, _)| *t)
    }

    /// Seconds until at least half the swarm was permanently gone
    /// (any cause: battery cliff, scripted leave, mobility disconnect),
    /// or `None` when more than half the workers survived the run.
    #[must_use]
    pub fn time_to_half_swarm_s(&self) -> Option<f64> {
        let k = self.workers.len().div_ceil(2);
        if k == 0 {
            return None;
        }
        self.departures.get(k - 1).map(|(t, _)| *t)
    }

    /// Sum of mean app power across workers, watts — the aggregate the
    /// paper prints on top of each Fig. 6 group.
    #[must_use]
    pub fn aggregate_power_w(&self) -> f64 {
        self.workers.iter().map(WorkerStats::power_w).sum()
    }

    /// Energy-efficiency metric FPS/Watt (Fig. 7).
    #[must_use]
    pub fn fps_per_watt(&self) -> f64 {
        let p = self.aggregate_power_w();
        if p > 0.0 {
            self.throughput_fps / p
        } else {
            0.0
        }
    }

    /// Mean of a per-frame delay component over completed frames, in
    /// milliseconds. `f` picks the component.
    pub fn mean_component_ms<F>(&self, f: F) -> f64
    where
        F: Fn(&FrameRecord) -> Option<u64>,
    {
        let mut sum = 0.0;
        let mut n = 0u64;
        for fr in &self.frames {
            if let Some(v) = f(fr) {
                sum += v as f64;
                n += 1;
            }
        }
        if n > 0 {
            sum / n as f64 / 1_000.0
        } else {
            0.0
        }
    }

    /// Number of workers that did non-trivial work (received more than
    /// `threshold` frames) — how many devices a policy actually used.
    #[must_use]
    pub fn active_workers(&self, threshold: u64) -> usize {
        self.workers
            .iter()
            .filter(|w| w.received > threshold)
            .count()
    }

    /// Per-frame records as tab-separated values (with header), for
    /// plotting with external tools. Missing stages are empty cells.
    #[must_use]
    pub fn frames_tsv(&self) -> String {
        let mut out = String::from(
            "seq\tcreated_us\tworker\tdispatched_us\tarrived_us\tstarted_us\tfinished_us\tsink_us\tplayed_us\tdropped\tlost\tretries\n",
        );
        let cell = |v: Option<u64>| v.map(|x| x.to_string()).unwrap_or_default();
        for f in &self.frames {
            out.push_str(&format!(
                "{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\n",
                f.seq,
                f.created_us,
                f.worker.map(|w| w.to_string()).unwrap_or_default(),
                cell(f.dispatched_us),
                cell(f.arrived_us),
                cell(f.started_us),
                cell(f.finished_us),
                cell(f.sink_us),
                cell(f.played_us),
                f.dropped,
                f.lost,
                f.retries,
            ));
        }
        out
    }

    /// Per-worker statistics as tab-separated values (with header).
    #[must_use]
    pub fn workers_tsv(&self) -> String {
        let mut out = String::from(
            "worker\treceived\tcompleted\tinput_fps\tcpu_util\tcpu_power_w\twifi_power_w\tbytes_rx\tbattery_frac\n",
        );
        for w in &self.workers {
            out.push_str(&format!(
                "{}\t{}\t{}\t{:.3}\t{:.4}\t{:.4}\t{:.5}\t{}\t{:.4}\n",
                w.name,
                w.received,
                w.completed,
                w.input_fps,
                w.cpu_util,
                w.cpu_power_w,
                w.wifi_power_w,
                w.bytes_rx,
                w.battery_frac,
            ));
        }
        out
    }

    /// Per-second timeline as tab-separated values (with header):
    /// `t_s`, total FPS, then one FPS and one RSSI column per worker.
    #[must_use]
    pub fn timeline_tsv(&self) -> String {
        let mut out = String::from("t_s\ttotal_fps");
        for w in &self.workers {
            out.push_str(&format!("\t{}_fps\t{}_rssi", w.name, w.name));
        }
        out.push('\n');
        for p in &self.timeline {
            out.push_str(&format!("{:.0}\t{:.1}", p.t_s, p.total_fps));
            for (fps, rssi) in p.per_worker_fps.iter().zip(&p.per_worker_rssi) {
                out.push_str(&format!("\t{fps:.1}\t{rssi:.0}"));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn completed_frame() -> FrameRecord {
        FrameRecord {
            seq: 1,
            created_us: 1_000,
            worker: Some(0),
            dispatched_us: Some(2_000),
            arrived_us: Some(10_000),
            started_us: Some(15_000),
            finished_us: Some(95_000),
            sink_us: Some(100_000),
            played_us: Some(120_000),
            dropped: false,
            lost: false,
            retries: 0,
        }
    }

    #[test]
    fn frame_delay_components_add_up() {
        let f = completed_frame();
        assert_eq!(f.source_wait_us(), Some(1_000));
        assert_eq!(f.transmission_us(), Some(8_000));
        assert_eq!(f.queuing_us(), Some(5_000));
        assert_eq!(f.processing_us(), Some(80_000));
        assert_eq!(f.e2e_us(), Some(99_000));
        assert!(f.completed());
    }

    #[test]
    fn incomplete_frames_yield_none() {
        let f = FrameRecord {
            seq: 0,
            created_us: 5,
            ..FrameRecord::default()
        };
        assert_eq!(f.transmission_us(), None);
        assert_eq!(f.e2e_us(), None);
        assert!(!f.completed());
    }

    #[test]
    fn aggregate_power_sums_workers() {
        let mut r = SwarmReport::default();
        r.workers.push(WorkerStats {
            cpu_power_w: 0.5,
            wifi_power_w: 0.1,
            ..WorkerStats::default()
        });
        r.workers.push(WorkerStats {
            cpu_power_w: 0.25,
            wifi_power_w: 0.05,
            ..WorkerStats::default()
        });
        assert!((r.aggregate_power_w() - 0.9).abs() < 1e-12);
        r.throughput_fps = 18.0;
        assert!((r.fps_per_watt() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn fps_per_watt_handles_zero_power() {
        let r = SwarmReport::default();
        assert_eq!(r.fps_per_watt(), 0.0);
    }

    #[test]
    fn mean_component_averages_over_completed() {
        let mut r = SwarmReport::default();
        r.frames.push(completed_frame());
        let mut f2 = completed_frame();
        f2.started_us = Some(25_000); // queuing 15 ms
        r.frames.push(f2);
        r.frames.push(FrameRecord::default()); // incomplete, ignored
        let q = r.mean_component_ms(FrameRecord::queuing_us);
        assert!((q - 10.0).abs() < 1e-9);
    }

    #[test]
    fn tsv_exports_are_rectangular() {
        let mut r = SwarmReport::default();
        r.frames.push(completed_frame());
        r.frames.push(FrameRecord {
            seq: 2,
            created_us: 9,
            dropped: true,
            ..FrameRecord::default()
        });
        r.workers.push(WorkerStats {
            name: "B".into(),
            received: 5,
            ..WorkerStats::default()
        });
        r.timeline.push(TimelinePoint {
            t_s: 1.0,
            total_fps: 10.0,
            per_worker_fps: vec![10.0],
            per_worker_rssi: vec![-28.0],
        });

        let frames = r.frames_tsv();
        let mut lines = frames.lines();
        let header_cols = lines.next().unwrap().split('\t').count();
        for line in lines {
            assert_eq!(line.split('\t').count(), header_cols, "ragged row: {line}");
        }
        assert!(frames.contains("\ttrue\t")); // the dropped flag

        let workers = r.workers_tsv();
        assert_eq!(workers.lines().count(), 2);
        assert!(workers.contains("B\t5\t"));

        let timeline = r.timeline_tsv();
        assert!(timeline.starts_with("t_s\ttotal_fps\tB_fps\tB_rssi"));
        assert!(timeline.contains("1\t10.0\t10.0\t-28"));
    }

    /// Sim reports and the live runtime emit through one schema: the
    /// exported snapshot uses exactly the `swing_telemetry::names`
    /// constants the executors register, the counters agree with the
    /// report's fields, and the snapshot survives the JSON round trip.
    #[test]
    fn telemetry_export_matches_the_shared_schema() {
        use swing_telemetry::names as n;

        let mut r = SwarmReport {
            generated: 120,
            dropped_at_source: 10,
            lost: 4,
            completed: 100,
            reorder_skipped: 2,
            ..SwarmReport::default()
        };
        for ms in [10.0, 20.0, 30.0] {
            r.latency_dist.update(ms);
        }
        r.frames.push(FrameRecord {
            retries: 3,
            ..FrameRecord::default()
        });
        r.workers.push(WorkerStats {
            name: "B".into(),
            received: 70,
            completed: 65,
            cpu_util: 0.8,
            bytes_rx: 9_000,
            ..WorkerStats::default()
        });

        let snap = r.to_telemetry("lrs").snapshot();
        let src = &[
            (n::LABEL_WORKER, "source"),
            (n::LABEL_UNIT, "0"),
            (n::LABEL_POLICY, "lrs"),
        ];
        assert_eq!(snap.counter(n::SOURCE_SENSED, src), 120);
        assert_eq!(snap.counter(n::EXEC_SENT, src), 110);
        assert_eq!(snap.counter(n::EXEC_RETRIED, src), 3);
        assert_eq!(snap.counter(n::EXEC_LOST, src), 4);
        let sink = &[
            (n::LABEL_WORKER, "sink"),
            (n::LABEL_UNIT, "2"),
            (n::LABEL_POLICY, "lrs"),
        ];
        assert_eq!(snap.counter(n::SINK_PLAYED, sink), 100);
        assert_eq!(snap.counter(n::SINK_SKIPPED, sink), 2);
        let h = snap.histogram(n::SINK_E2E_LATENCY_US, sink).unwrap();
        assert_eq!(h.count, 3);
        assert!(h.quantile(1.0) >= 29_000, "max {}", h.quantile(1.0));
        let worker = &[
            (n::LABEL_WORKER, "B"),
            (n::LABEL_UNIT, "1"),
            (n::LABEL_POLICY, "lrs"),
        ];
        assert_eq!(snap.counter(n::EXEC_ACKED, worker), 70);
        assert_eq!(snap.counter(n::EXEC_SENT, worker), 65);
        assert_eq!(
            snap.gauge(
                n::DEVICE_CPU_UTIL,
                &[(n::LABEL_WORKER, "B"), (n::LABEL_POLICY, "lrs")]
            ),
            Some(0.8)
        );
        assert_eq!(
            snap.counter(
                n::NET_BYTES_RECEIVED,
                &[(n::LABEL_LINK, "B"), (n::LABEL_POLICY, "lrs")]
            ),
            9_000
        );

        // The export renders and round-trips like any live snapshot.
        let json = swing_telemetry::to_json(&snap);
        let back = swing_telemetry::from_json(&json).unwrap();
        assert_eq!(back.counters, snap.counters);
        assert!(swing_telemetry::prometheus_text(&snap).contains(n::SOURCE_SENSED));
    }

    /// Two reports exported into one domain with different policy
    /// labels do not collide (counters would double-count otherwise).
    #[test]
    fn telemetry_export_separates_policies_by_label() {
        use swing_telemetry::names as n;
        let r = SwarmReport {
            generated: 50,
            ..SwarmReport::default()
        };
        let t = swing_telemetry::Telemetry::new();
        r.export_telemetry(&t, "rr");
        r.export_telemetry(&t, "lrs");
        let snap = t.snapshot();
        assert_eq!(snap.counter_total(n::SOURCE_SENSED), 100);
        assert_eq!(
            snap.counter(
                n::SOURCE_SENSED,
                &[
                    (n::LABEL_WORKER, "source"),
                    (n::LABEL_UNIT, "0"),
                    (n::LABEL_POLICY, "rr"),
                ],
            ),
            50
        );
    }

    #[test]
    fn active_workers_counts_above_threshold() {
        let mut r = SwarmReport::default();
        for received in [0u64, 3, 500, 900] {
            r.workers.push(WorkerStats {
                received,
                ..WorkerStats::default()
            });
        }
        assert_eq!(r.active_workers(10), 2);
        assert_eq!(r.active_workers(0), 3);
    }
}
