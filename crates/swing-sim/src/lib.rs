//! # swing-sim
//!
//! Deterministic discrete-event simulator of Swing swarms. It substitutes
//! the paper's physical testbed — nine heterogeneous Android devices on
//! an 802.11n WLAN — with calibrated device and radio models
//! (`swing-device`, `swing-net`) while executing the *real* routing code
//! from `swing-core`, so policy behaviour is measured, not imitated.
//!
//! * [`campaign`] — seeded chaos campaign over the self-healing
//!   runtime: a fault grid (crashes, master outage, partitions, churn
//!   storms) × seeds, each point checking conservation, bounded
//!   recovery, and byte-identical replay.
//! * [`swarm`] — the simulator: source dispatcher with per-destination
//!   windows, shared sender radio, worker queues/CPUs, ACK-driven
//!   estimation, churn and mobility.
//! * [`metrics`] — per-frame, per-worker and timeline measurements.
//! * [`experiments`] — canned scenario builders for every figure and
//!   table in the paper's evaluation.
//! * [`pipeline`] — multi-stage dataflow simulation with a distributed
//!   router at every upstream instance (the paper's full programming
//!   model).
//! * [`shard`] — conservative windowed parallel engine: each shard is
//!   one swarm with its own event queue, advanced by a scoped-thread
//!   pool with gateway-latency lookahead so the schedule is
//!   byte-identical at any thread count.
//! * [`federation`] — swarm-of-swarms built on [`shard`]: K swarms from
//!   one config, gateway links scored by the paper's `L_i` estimator,
//!   telemetry rolled up through exactly-mergeable snapshots.
//! * [`tournament`] — seeded policy tournaments: selection policies ×
//!   churn traces (flash crowds, battery cliffs, RSSI sweeps), scoring
//!   frames played, p99, time-to-first-death and time-to-half-swarm,
//!   with byte-identical same-seed replay.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod campaign;
pub mod experiments;
pub mod federation;
pub mod metrics;
pub mod pipeline;
pub mod shard;
pub mod swarm;
pub mod tournament;

pub use federation::{Federation, FederationConfig, FederationReport, SwarmStatus};
pub use metrics::{FrameRecord, SwarmReport, TimelinePoint, WorkerStats};
pub use swarm::{Swarm, SwarmConfig, WorkerSpec};
pub use tournament::{
    run_cell, run_tournament, Cell, ChurnTrace, Comparison, TournamentConfig, TournamentSummary,
};
