//! Canned scenario builders for every figure and table in the paper's
//! evaluation (§III and §VI). The `swing-bench` harness formats the
//! resulting reports into the rows and series the paper plots; the
//! integration tests assert the *shapes* (who wins, by roughly what
//! factor) hold.

use crate::swarm::{Swarm, SwarmConfig, WorkerSpec};
use crate::SwarmReport;
use swing_core::config::RouterConfig;
use swing_core::routing::Policy;
use swing_core::SECOND_US;
use swing_device::mobility::{MobilityTrace, SignalZone};
use swing_device::profile::{testbed, DeviceProfile, Workload};

/// Look up a testbed device by its letter.
///
/// # Panics
/// Panics if the letter is not `A`..`I`.
#[must_use]
pub fn device(letter: &str) -> DeviceProfile {
    testbed()
        .into_iter()
        .find(|p| p.name == letter)
        .unwrap_or_else(|| panic!("no testbed device named {letter}"))
}

/// The worker letters of the evaluation swarm (all devices but the
/// source/master `A`).
pub const WORKER_LETTERS: [&str; 8] = ["B", "C", "D", "E", "F", "G", "H", "I"];

/// Letters placed "at locations of poor Wi-Fi signals" in §VI-B.
pub const POOR_SIGNAL_LETTERS: [&str; 3] = ["B", "C", "D"];

/// Fig. 1 / Table I: a single device processing the 24 FPS face stream
/// alone. Delay builds up because no device sustains 24 FPS.
#[must_use]
pub fn single_device(letter: &str, duration_s: u64, seed: u64) -> SwarmReport {
    let mut config = SwarmConfig::new(Workload::FaceRecognition, RouterConfig::new(Policy::Rr));
    config.duration_us = duration_s * SECOND_US;
    config.seed = seed;
    // Fig 1 measures unbounded queue growth over the first seconds; use
    // generous buffers so the build-up is visible rather than clipped.
    config.source_buffer_frames = 1_000;
    config.dest_window_bytes = 64 * 1024 * 1024;
    Swarm::new(config, vec![WorkerSpec::new(device(letter))]).run()
}

/// The independent variable of one Fig. 2 panel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Fig2Variable {
    /// Panel 1: Wi-Fi signal strength (Good / Fair / Bad).
    Signal(SignalZone),
    /// Panel 2: background CPU usage (0.2 / 0.6 / 1.0).
    CpuLoad(f64),
    /// Panel 3: input data rate in FPS (5 / 10 / 20).
    InputFps(f64),
}

/// One measured row of Fig. 2: the delay decomposition of remote
/// processing on device `B` under the given condition.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig2Row {
    /// Human-readable condition label.
    pub label: String,
    /// Mean transmission delay, ms.
    pub transmission_ms: f64,
    /// Mean processing delay, ms.
    pub processing_ms: f64,
    /// Mean worker-queue delay, ms.
    pub queuing_ms: f64,
}

/// Fig. 2: device `A` sends frames to `B` under one varied condition.
#[must_use]
pub fn fig2_condition(var: Fig2Variable, duration_s: u64, seed: u64) -> Fig2Row {
    let mut config = SwarmConfig::new(Workload::FaceRecognition, RouterConfig::new(Policy::Rr));
    config.duration_us = duration_s * SECOND_US;
    config.seed = seed;
    let mut worker = WorkerSpec::new(device("B"));
    let label;
    match var {
        Fig2Variable::Signal(zone) => {
            // The paper streams 24 FPS and varies placement; the
            // in-flight window bounds the measured transmission delay.
            worker = worker.in_zone(zone);
            label = format!("{zone:?}");
        }
        Fig2Variable::CpuLoad(load) => {
            config.input_fps = 2.0; // isolate processing delay
            worker = worker.with_background(load);
            label = format!("{:.0}%", load * 100.0);
        }
        Fig2Variable::InputFps(fps) => {
            config.input_fps = fps;
            // A single uncontended stream with a full-size TCP buffer:
            // worker-side queue build-up is what this panel isolates.
            config.dest_window_bytes = 256 * 1024;
            label = format!("{fps:.0} FPS");
        }
    }
    let report = Swarm::new(config, vec![worker]).run();
    Fig2Row {
        label,
        transmission_ms: report.mean_component_ms(crate::FrameRecord::transmission_us),
        processing_ms: report.mean_component_ms(crate::FrameRecord::processing_us),
        queuing_ms: report.mean_component_ms(crate::FrameRecord::queuing_us),
    }
}

/// The §VI-B evaluation swarm: source/master on `A`, workers `B`..`I`,
/// with `B`, `C`, `D` placed at poor-signal locations.
#[must_use]
pub fn evaluation_workers() -> Vec<WorkerSpec> {
    WORKER_LETTERS
        .iter()
        .map(|&l| {
            let spec = WorkerSpec::new(device(l));
            if POOR_SIGNAL_LETTERS.contains(&l) {
                spec.in_zone(SignalZone::Poor)
            } else {
                spec.in_zone(SignalZone::Good)
            }
        })
        .collect()
}

/// Run the Fig. 4–8 evaluation for one policy and workload.
#[must_use]
pub fn evaluation_run(
    policy: Policy,
    workload: Workload,
    duration_s: u64,
    seed: u64,
) -> SwarmReport {
    let mut config = SwarmConfig::new(workload, RouterConfig::new(policy));
    config.duration_us = duration_s * SECOND_US;
    config.seed = seed;
    Swarm::new(config, evaluation_workers()).run()
}

/// Fig. 9 (left): `B`, `D` computing, `G` joins at `join_at_s`.
#[must_use]
pub fn joining_run(join_at_s: u64, duration_s: u64, seed: u64) -> SwarmReport {
    let mut config = SwarmConfig::new(Workload::FaceRecognition, RouterConfig::new(Policy::Lrs));
    config.duration_us = duration_s * SECOND_US;
    config.seed = seed;
    let workers = vec![
        WorkerSpec::new(device("B")),
        WorkerSpec::new(device("D")),
        WorkerSpec::new(device("G")).joining_at(join_at_s * SECOND_US),
    ];
    Swarm::new(config, workers).run()
}

/// Fig. 9 (right): `B`, `G`, `H` computing, `G` leaves at `leave_at_s`.
#[must_use]
pub fn leaving_run(leave_at_s: u64, duration_s: u64, seed: u64) -> SwarmReport {
    let mut config = SwarmConfig::new(Workload::FaceRecognition, RouterConfig::new(Policy::Lrs));
    config.duration_us = duration_s * SECOND_US;
    config.seed = seed;
    let workers = vec![
        WorkerSpec::new(device("B")),
        WorkerSpec::new(device("G")).leaving_at(leave_at_s * SECOND_US),
        WorkerSpec::new(device("H")),
    ];
    Swarm::new(config, workers).run()
}

/// Cloudlet mode (§II): the evaluation swarm plus a wall-powered
/// cloudlet VM on a good link. LRS should discover it is by far the
/// fastest worker and concentrate load there.
#[must_use]
pub fn cloudlet_run(policy: Policy, workload: Workload, duration_s: u64, seed: u64) -> SwarmReport {
    let mut config = SwarmConfig::new(workload, RouterConfig::new(policy));
    config.duration_us = duration_s * SECOND_US;
    config.seed = seed;
    let mut workers = evaluation_workers();
    workers.push(WorkerSpec::new(swing_device::profile::cloudlet()));
    Swarm::new(config, workers).run()
}

/// Fig. 10: `B`, `G`, `H` computing while `G` walks from good to weak to
/// poor signal, dwelling `dwell_s` in each zone.
#[must_use]
pub fn mobility_run(dwell_s: u64, seed: u64) -> SwarmReport {
    let mut config = SwarmConfig::new(Workload::FaceRecognition, RouterConfig::new(Policy::Lrs));
    config.duration_us = 3 * dwell_s * SECOND_US;
    config.seed = seed;
    let workers = vec![
        WorkerSpec::new(device("B")),
        WorkerSpec::new(device("G")).with_mobility(MobilityTrace::fig10_walk(dwell_s * SECOND_US)),
        WorkerSpec::new(device("H")),
    ];
    Swarm::new(config, workers).run()
}

/// Ablation scenario: `B`, `G`, `H` under LRS while `G` walks
/// Good → Poor → Good (dwelling `dwell_s` in each phase), with the
/// router's periodic round-robin probing enabled or disabled.
///
/// Probing (paper §V-B) refreshes estimates of unselected workers so
/// LRS can *re-discover* G once its link recovers. Our estimator also
/// ages samples out ([`TimedAvg`](swing_core::stats::TimedAvg)) and
/// falls back to an optimistic default, which turns the next rebalance
/// into an implicit probe — the ablation quantifies how much explicit
/// probing adds on top (finding: with sample aging the two mechanisms
/// are nearly redundant).
#[must_use]
pub fn probing_ablation_run(dwell_s: u64, probing: bool, seed: u64) -> SwarmReport {
    let mut router = RouterConfig::new(Policy::Lrs);
    if !probing {
        router.probe_every_rounds = u32::MAX; // effectively never
    }
    let mut config = SwarmConfig::new(Workload::FaceRecognition, router);
    config.duration_us = 3 * dwell_s * SECOND_US;
    config.seed = seed;
    // 16 FPS: B+H alone can cover the demand, so worker selection really
    // deselects G while it sits in the poor zone — the case probing is
    // for ("In order to estimate Li of the function units that were not
    // selected in previous rounds", §V-B).
    config.input_fps = 16.0;
    let out_and_back = MobilityTrace::from_steps(vec![
        (0, SignalZone::Good.rssi_dbm()),
        (dwell_s * SECOND_US, SignalZone::Poor.rssi_dbm()),
        (2 * dwell_s * SECOND_US, SignalZone::Good.rssi_dbm()),
    ]);
    let workers = vec![
        WorkerSpec::new(device("B")),
        WorkerSpec::new(device("G")).with_mobility(out_and_back),
        WorkerSpec::new(device("H")),
    ];
    Swarm::new(config, workers).run()
}

/// Ablation scenario: the Fig. 10 walk with the estimator's
/// pending-age latency floor enabled or disabled. Without the floor the
/// upstream only learns about a collapsed link from the ACKs that still
/// trickle through, reacting many rounds later.
#[must_use]
pub fn stale_floor_ablation_run(dwell_s: u64, floor: bool, seed: u64) -> SwarmReport {
    let mut router = RouterConfig::new(Policy::Lrs);
    router.pending_age_floor = floor;
    let mut config = SwarmConfig::new(Workload::FaceRecognition, router);
    config.duration_us = 3 * dwell_s * SECOND_US;
    config.seed = seed;
    let workers = vec![
        WorkerSpec::new(device("B")),
        WorkerSpec::new(device("G")).with_mobility(MobilityTrace::fig10_walk(dwell_s * SECOND_US)),
        WorkerSpec::new(device("H")),
    ];
    Swarm::new(config, workers).run()
}

/// Ablation scenario: the Fig. 4 face evaluation with a custom reorder
/// span, worker-selection headroom, and per-destination window.
#[must_use]
pub fn tuned_evaluation_run(
    policy: Policy,
    reorder_span_us: u64,
    headroom: f64,
    dest_window_bytes: usize,
    duration_s: u64,
    seed: u64,
) -> SwarmReport {
    let mut router = RouterConfig::new(policy);
    router.headroom = headroom;
    let mut config = SwarmConfig::new(Workload::FaceRecognition, router);
    config.duration_us = duration_s * SECOND_US;
    config.seed = seed;
    config.reorder = swing_core::config::ReorderConfig {
        span_us: reorder_span_us,
    };
    config.dest_window_bytes = dest_window_bytes;
    Swarm::new(config, evaluation_workers()).run()
}

#[cfg(test)]
mod tests {
    use super::*;

    const DUR: u64 = 30;

    #[test]
    fn fig1_delays_build_up_on_every_single_device() {
        for letter in ["B", "E", "H"] {
            let report = single_device(letter, 6, 7);
            // Per-frame delay, in completion order, grows steeply: the
            // last completions wait behind an ever-deeper queue (Fig 1).
            let mut delays: Vec<(u64, f64)> = report
                .frames
                .iter()
                .filter_map(|f| f.sink_us.map(|t| (t, f.e2e_us().unwrap() as f64 / 1_000.0)))
                .collect();
            delays.sort_by_key(|&(t, _)| t);
            assert!(delays.len() >= 6, "{letter}: too few completions");
            let third = delays.len() / 3;
            let early: f64 = delays[..third].iter().map(|&(_, d)| d).sum::<f64>() / third as f64;
            let late: f64 = delays[delays.len() - third..]
                .iter()
                .map(|&(_, d)| d)
                .sum::<f64>()
                / third as f64;
            assert!(
                late > 2.0 * early,
                "{letter}: early {early:.0} ms late {late:.0} ms"
            );
        }
    }

    #[test]
    fn table1_processing_delays_match_profiles() {
        // The simulated mean processing delay reproduces Table I within
        // jitter tolerance.
        for (letter, expected_ms) in [("B", 92.9), ("E", 463.4), ("H", 71.3)] {
            let report = single_device(letter, 20, 3);
            let proc = report.mean_component_ms(crate::FrameRecord::processing_us);
            assert!(
                (proc - expected_ms).abs() / expected_ms < 0.05,
                "{letter}: measured {proc:.1} vs Table I {expected_ms}"
            );
        }
    }

    #[test]
    fn fig2_signal_strength_drives_transmission_delay() {
        let good = fig2_condition(Fig2Variable::Signal(SignalZone::Good), DUR, 5);
        let fair = fig2_condition(Fig2Variable::Signal(SignalZone::Weak), DUR, 5);
        let bad = fig2_condition(Fig2Variable::Signal(SignalZone::Poor), DUR, 5);
        assert!(good.transmission_ms < fair.transmission_ms);
        assert!(fair.transmission_ms < bad.transmission_ms);
        // Processing stays roughly constant across zones.
        assert!((good.processing_ms - bad.processing_ms).abs() < 20.0);
        // Bad signal produces order-of-magnitude larger transmission
        // delays (paper: ~tens of ms -> seconds).
        assert!(
            bad.transmission_ms > 10.0 * good.transmission_ms,
            "good {:.1} bad {:.1}",
            good.transmission_ms,
            bad.transmission_ms
        );
    }

    #[test]
    fn fig2_cpu_load_drives_processing_delay() {
        let low = fig2_condition(Fig2Variable::CpuLoad(0.2), DUR, 5);
        let mid = fig2_condition(Fig2Variable::CpuLoad(0.6), DUR, 5);
        let high = fig2_condition(Fig2Variable::CpuLoad(1.0), DUR, 5);
        assert!(low.processing_ms < mid.processing_ms);
        assert!(mid.processing_ms < high.processing_ms);
        assert!(high.processing_ms > 2.0 * low.processing_ms);
    }

    #[test]
    fn fig2_input_rate_drives_queuing_delay() {
        let r5 = fig2_condition(Fig2Variable::InputFps(5.0), DUR, 5);
        let r10 = fig2_condition(Fig2Variable::InputFps(10.0), DUR, 5);
        let r20 = fig2_condition(Fig2Variable::InputFps(20.0), DUR, 5);
        assert!(r5.queuing_ms < r10.queuing_ms);
        assert!(r10.queuing_ms < r20.queuing_ms);
        // 20 FPS exceeds B's ~10.8 FPS capacity: queueing dominates.
        assert!(r20.queuing_ms > r20.processing_ms);
        assert!(r20.queuing_ms > 500.0, "queuing {:.0}", r20.queuing_ms);
    }

    #[test]
    fn fig4_lrs_dominates_throughput_and_latency() {
        let rr = evaluation_run(Policy::Rr, Workload::FaceRecognition, DUR, 1);
        let lrs = evaluation_run(Policy::Lrs, Workload::FaceRecognition, DUR, 1);
        // Headline: 2.7x throughput, 6.7x latency in the paper.
        assert!(
            lrs.throughput_fps >= 2.0 * rr.throughput_fps,
            "lrs {:.1} rr {:.1}",
            lrs.throughput_fps,
            rr.throughput_fps
        );
        assert!(
            rr.latency_ms.mean() >= 3.0 * lrs.latency_ms.mean(),
            "rr {:.0} ms lrs {:.0} ms",
            rr.latency_ms.mean(),
            lrs.latency_ms.mean()
        );
        // LRS approaches the 24 FPS real-time target.
        assert!(lrs.throughput_fps > 20.0, "lrs {:.1}", lrs.throughput_fps);
    }

    #[test]
    fn fig4_processing_based_policies_misroute_to_weak_signals() {
        let pr = evaluation_run(Policy::Pr, Workload::FaceRecognition, DUR, 1);
        let lr = evaluation_run(Policy::Lr, Workload::FaceRecognition, DUR, 1);
        // PR routes by compute speed only, so B (fast CPU, poor link)
        // receives a large share; LR avoids it.
        let share = |r: &SwarmReport, name: &str| {
            let w = r.workers.iter().find(|w| w.name == name).unwrap();
            w.received as f64 / r.workers.iter().map(|w| w.received).sum::<u64>() as f64
        };
        assert!(
            share(&pr, "B") > 1.5 * share(&lr, "B"),
            "PR share {:.2} LR share {:.2}",
            share(&pr, "B"),
            share(&lr, "B")
        );
        // And that misrouting costs throughput.
        assert!(lr.throughput_fps > pr.throughput_fps);
    }

    #[test]
    fn fig5_worker_selection_concentrates_load() {
        let lr = evaluation_run(Policy::Lr, Workload::FaceRecognition, DUR, 1);
        let lrs = evaluation_run(Policy::Lrs, Workload::FaceRecognition, DUR, 1);
        // *S uses fewer devices for real work.
        assert!(
            lrs.active_workers(30) < lr.active_workers(30),
            "lrs {} lr {}",
            lrs.active_workers(30),
            lr.active_workers(30)
        );
    }

    #[test]
    fn fig5_rr_spreads_evenly_and_pegs_weak_cpus() {
        let rr = evaluation_run(Policy::Rr, Workload::FaceRecognition, DUR, 1);
        let received: Vec<u64> = rr.workers.iter().map(|w| w.received).collect();
        let max = *received.iter().max().unwrap() as f64;
        let min = *received.iter().min().unwrap() as f64;
        assert!(min > 0.6 * max, "RR shares uneven: {received:?}");
        // Fig 5 left: the *same* arrival rate consumes a much larger
        // share of processor time on the weak E than on the strong I.
        let util = |n: &str| rr.workers.iter().find(|w| w.name == n).unwrap().cpu_util;
        assert!(
            util("E") > 2.0 * util("I"),
            "E util {:.2} vs I util {:.2}",
            util("E"),
            util("I")
        );
    }

    #[test]
    fn fig6_prs_consumes_least_power() {
        let face = Workload::FaceRecognition;
        let prs = evaluation_run(Policy::Prs, face, DUR, 1);
        let lrs = evaluation_run(Policy::Lrs, face, DUR, 1);
        let lr = evaluation_run(Policy::Lr, face, DUR, 1);
        // PRS uses the fastest, most efficient devices only.
        assert!(prs.aggregate_power_w() < lr.aggregate_power_w());
        assert!(prs.aggregate_power_w() < lrs.aggregate_power_w());
    }

    #[test]
    fn fig7_selection_improves_energy_efficiency() {
        let face = Workload::FaceRecognition;
        let lr = evaluation_run(Policy::Lr, face, DUR, 1);
        let lrs = evaluation_run(Policy::Lrs, face, DUR, 1);
        let rr = evaluation_run(Policy::Rr, face, DUR, 1);
        assert!(
            lrs.fps_per_watt() > lr.fps_per_watt(),
            "lrs {:.2} lr {:.2}",
            lrs.fps_per_watt(),
            lr.fps_per_watt()
        );
        assert!(lrs.fps_per_watt() > rr.fps_per_watt());
    }

    #[test]
    fn fig8_lrs_orders_frames_better_than_rr() {
        let rr = evaluation_run(Policy::Rr, Workload::FaceRecognition, DUR, 1);
        let lrs = evaluation_run(Policy::Lrs, Workload::FaceRecognition, DUR, 1);
        // Count inversions in sink-arrival order among completed frames.
        let inversions = |r: &SwarmReport| {
            let mut arrivals: Vec<(u64, u64)> = r
                .frames
                .iter()
                .filter_map(|f| f.sink_us.map(|t| (t, f.seq)))
                .collect();
            arrivals.sort();
            let mut inv = 0u64;
            let mut max_seq = 0;
            for &(_, seq) in &arrivals {
                if seq < max_seq {
                    inv += 1;
                } else {
                    max_seq = seq;
                }
            }
            inv as f64 / arrivals.len().max(1) as f64
        };
        assert!(
            inversions(&lrs) < inversions(&rr),
            "lrs {:.3} rr {:.3}",
            inversions(&lrs),
            inversions(&rr)
        );
        // And the reorder buffer skips fewer frames under LRS.
        assert!(lrs.reorder_skipped <= rr.reorder_skipped);
    }

    #[test]
    fn fig9_join_recovers_quickly() {
        let report = joining_run(10, 30, 2);
        // Mean throughput in the 3 s after the join vs the 3 s before.
        let mean = |range: std::ops::Range<usize>| {
            report.timeline[range.clone()]
                .iter()
                .map(|p| p.total_fps)
                .sum::<f64>()
                / range.len() as f64
        };
        let before = mean(6..9);
        let after = mean(12..15);
        assert!(after > before + 4.0, "before {before:.1} after {after:.1}");
    }

    #[test]
    fn fig9_leave_loses_a_handful_of_frames() {
        // The exact count depends on how many frames sit on the departed
        // device at that instant (the paper's run lost 13); across seeds
        // the shape is "a few, not zero, not a flood".
        let mut total = 0;
        for seed in 1..=6 {
            let report = leaving_run(10, 30, seed);
            assert!(report.lost <= 30, "seed {seed} lost {}", report.lost);
            total += report.lost;
        }
        assert!(total >= 2, "leaves never lose frames (total {total})");
    }

    #[test]
    fn probing_speeds_up_rediscovery_of_a_recovered_worker() {
        // G walks Good -> Poor -> Good (20 s dwell; back in the good
        // zone from t = 40 s). Two rediscovery mechanisms exist: probe
        // tuples (paper §V-B) and sample aging with an optimistic
        // fallback. Probing must make rediscovery at least as fast, and
        // rediscovery must happen either way.
        let rediscovery_s = |probing: bool, seed: u64| -> usize {
            let r = probing_ablation_run(20, probing, seed);
            r.timeline
                .iter()
                .enumerate()
                .skip(40)
                .find(|(_, p)| p.per_worker_fps[1] >= 3.0)
                .map(|(i, _)| i)
                .unwrap_or(120)
        };
        let mean = |probing: bool| -> f64 {
            let seeds = [3u64, 6, 11];
            seeds
                .iter()
                .map(|&s| rediscovery_s(probing, s))
                .sum::<usize>() as f64
                / seeds.len() as f64
        };
        let with = mean(true);
        let without = mean(false);
        assert!(with < 60.0, "never rediscovered with probing ({with:.0}s)");
        assert!(
            without < 60.0,
            "never rediscovered without probing ({without:.0}s; aging broken)"
        );
        // Ablation finding: with time-aged samples the two freshness
        // mechanisms are nearly redundant — both rediscover within a few
        // control rounds of the link recovering.
        assert!(
            (with - without).abs() <= 5.0,
            "mechanisms diverged unexpectedly: {with:.0}s vs {without:.0}s"
        );
    }

    #[test]
    fn pending_age_floor_speeds_up_mobility_reaction() {
        // Depth of the throughput dip right after G hits the poor zone.
        let dip = |floor: bool| {
            let r = stale_floor_ablation_run(15, floor, 6);
            // Poor phase starts at t=30 s; take the worst 3 s window of
            // the following 10 s.
            r.timeline[30..40]
                .windows(3)
                .map(|w| w.iter().map(|p| p.total_fps).sum::<f64>() / 3.0)
                .fold(f64::INFINITY, f64::min)
        };
        let with = dip(true);
        let without = dip(false);
        assert!(
            with > without + 2.0,
            "floor should soften the dip: with {with:.1} FPS vs without {without:.1} FPS"
        );
    }

    #[test]
    fn larger_reorder_span_skips_fewer_frames_but_waits_longer() {
        let run = |span_us: u64| tuned_evaluation_run(Policy::Rr, span_us, 1.0, 26_000, DUR, 2);
        let short = run(250_000);
        let long = run(4_000_000);
        assert!(
            long.reorder_skipped < short.reorder_skipped,
            "short {} vs long {}",
            short.reorder_skipped,
            long.reorder_skipped
        );
        // And the long buffer holds frames longer before playback.
        let wait = |r: &SwarmReport| {
            let (mut sum, mut n) = (0.0, 0u64);
            for f in &r.frames {
                if let (Some(s), Some(p)) = (f.sink_us, f.played_us) {
                    sum += p.saturating_sub(s) as f64;
                    n += 1;
                }
            }
            sum / n.max(1) as f64
        };
        assert!(wait(&long) > wait(&short));
    }

    #[test]
    fn headroom_keeps_more_devices_selected() {
        let tight = tuned_evaluation_run(Policy::Lrs, SECOND_US, 1.0, 26_000, DUR, 2);
        let loose = tuned_evaluation_run(Policy::Lrs, SECOND_US, 1.6, 26_000, DUR, 2);
        assert!(
            loose.active_workers(30) >= tight.active_workers(30),
            "tight {} loose {}",
            tight.active_workers(30),
            loose.active_workers(30)
        );
        // Throughput stays at target either way.
        assert!(loose.throughput_fps > 22.0 && tight.throughput_fps > 22.0);
    }

    #[test]
    fn cloudlet_takes_most_of_the_load_under_lrs() {
        let r = cloudlet_run(Policy::Lrs, Workload::FaceRecognition, DUR, 3);
        let total: u64 = r.workers.iter().map(|w| w.received).sum();
        let cl = r.workers.iter().find(|w| w.name == "CL").unwrap();
        assert!(
            cl.received as f64 > 0.5 * total as f64,
            "cloudlet got {}/{total}",
            cl.received
        );
        assert!(r.throughput_fps > 22.0);
        // Offloading to the cloudlet beats the phone-only swarm on
        // latency (its service time is ~12 ms vs ~75 ms).
        let phones = evaluation_run(Policy::Lrs, Workload::FaceRecognition, DUR, 3);
        assert!(
            r.latency_ms.mean() < phones.latency_ms.mean(),
            "cloudlet {:.0} ms vs phones {:.0} ms",
            r.latency_ms.mean(),
            phones.latency_ms.mean()
        );
    }

    #[test]
    fn resend_orphans_eliminates_leave_losses() {
        let mk = |resend: bool, seed: u64| {
            let mut config =
                SwarmConfig::new(Workload::FaceRecognition, RouterConfig::new(Policy::Lrs));
            config.duration_us = 30 * SECOND_US;
            config.seed = seed;
            config.resend_orphans = resend;
            let workers = vec![
                WorkerSpec::new(device("B")),
                WorkerSpec::new(device("G")).leaving_at(10 * SECOND_US),
                WorkerSpec::new(device("H")),
            ];
            Swarm::new(config, workers).run()
        };
        // Whether the leave catches in-flight frames depends on the RNG
        // draw sequence; scan for a seed where the lossy baseline does
        // lose something, then compare resend against that same seed.
        let (seed, lossy) = (1..=16)
            .map(|s| (s, mk(false, s)))
            .find(|(_, r)| r.lost > 0)
            .expect("no seed in 1..=16 lost frames on leave");
        let reliable = mk(true, seed);
        assert!(
            reliable.lost <= lossy.lost,
            "resend lost more ({} > {})",
            reliable.lost,
            lossy.lost
        );
        assert_eq!(reliable.lost, 0, "resend still lost {}", reliable.lost);
        // The re-sent frames actually completed (possibly after retry).
        let retried = reliable.frames.iter().filter(|f| f.retries > 0).count();
        assert!(retried > 0, "nothing was retried");
        assert!(reliable
            .frames
            .iter()
            .filter(|f| f.retries > 0)
            .all(|f| f.completed()));
    }

    #[test]
    fn rate_schedule_changes_offered_load_mid_run() {
        let mut config =
            SwarmConfig::new(Workload::FaceRecognition, RouterConfig::new(Policy::Lrs));
        config.duration_us = 30 * SECOND_US;
        config.seed = 4;
        config.input_fps = 6.0;
        config.rate_schedule = vec![(15 * SECOND_US, 20.0)];
        let workers = vec![WorkerSpec::new(device("G")), WorkerSpec::new(device("H"))];
        let r = Swarm::new(config, workers).run();
        let early: f64 = r.timeline[3..12].iter().map(|p| p.total_fps).sum::<f64>() / 9.0;
        let late: f64 = r.timeline[20..29].iter().map(|p| p.total_fps).sum::<f64>() / 9.0;
        assert!((early - 6.0).abs() < 1.5, "early {early:.1}");
        assert!((late - 20.0).abs() < 3.0, "late {late:.1}");
    }

    #[test]
    fn fig10_system_throughput_survives_the_walk() {
        let report = mobility_run(15, 2);
        let early: f64 = report.timeline[5..10]
            .iter()
            .map(|p| p.total_fps)
            .sum::<f64>()
            / 5.0;
        let n = report.timeline.len();
        let late: f64 = report.timeline[n - 5..]
            .iter()
            .map(|p| p.total_fps)
            .sum::<f64>()
            / 5.0;
        // Re-routing keeps most of the throughput despite G's poor link.
        assert!(late > 0.6 * early, "early {early:.1} late {late:.1}");
        // RSSI trace in the timeline reflects the walk.
        let first_rssi = report.timeline[2].per_worker_rssi[1];
        let last_rssi = report.timeline[n - 2].per_worker_rssi[1];
        assert!(first_rssi > -40.0 && last_rssi < -70.0);
    }
}
