//! Conservative windowed parallel engine over per-swarm event queues.
//!
//! One **shard** is one [`SimSwarm`]: its own event queue, its own
//! master/control plane, its own telemetry domain and link RNGs. Shards
//! exchange gateway tuples over per-link SPSC channels and advance in
//! **windows** bounded by the classic conservative-synchronization rule
//! (Chandy–Misra–Bryant with lookahead):
//!
//! ```text
//! bound = lbts + lookahead − 1
//! lbts  = min over shards of (next local event time,
//!                             earliest in-channel arrival time)
//! ```
//!
//! where `lookahead` is the minimum latency of any inter-shard gateway
//! link ([`swing_core::timing::GATEWAY_MIN_LATENCY_US`] in the
//! federation). Any tuple a shard emits at time `t ≥ lbts` arrives at
//! `t + lookahead > bound`, so every shard can execute its window
//! `[lbts, bound]` with no inbound surprises — the schedule is
//! byte-identical at any thread count.
//!
//! Each window runs in three barrier-separated phases:
//!
//! 1. **Advance** (parallel): each shard consumes federation ACKs,
//!    drains inbound gateway channels in fixed link order into its
//!    queue, runs its event loop to the bound, and publishes its next
//!    event time.
//! 2. **Exchange** (parallel): each shard ACKs the peer frames it
//!    consumed and routes its fresh egress over the gateway link with
//!    the best `L_i` latency view (the paper's estimator, reused at the
//!    federation tier), publishing the earliest arrival it produced.
//! 3. **Coordinate** (one thread): compute the next bound from the
//!    published minima, reset the claim counters, decide termination.
//!
//! Shards are claimed work-stealing style (an atomic index over a slab
//! of mutexes, each lock uncontended), so a straggler shard never
//! idles the rest of the pool within a phase. Workers are spawned once
//! per run via [`std::thread::scope`] — no per-window thread churn.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Barrier, Mutex};

use crossbeam::channel::{unbounded, Receiver, Sender};
use swing_core::estimator::{LatencyEstimator, LatencyView};
use swing_core::rng::DetRng;
use swing_core::timing;
use swing_core::{SeqNo, UnitId};
use swing_runtime::sim::SimSwarm;

/// One gateway tuple in flight between two shards. The arrival instant
/// is computed by the *sender* (emit time + link latency + seeded
/// jitter), so delivery is a pure function of the emitting shard's
/// state — never of channel timing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RemoteTuple {
    /// Emitting shard index.
    pub from: usize,
    /// Emitter-local gateway sequence number.
    pub seq: u64,
    /// Virtual instant the gateway frame was emitted.
    pub emitted_us: u64,
    /// Virtual instant it reaches the destination shard.
    pub arrive_us: u64,
}

/// Federation-tier acknowledgement flowing back over a link's reverse
/// channel; feeds the emitter's `L_i` estimator.
#[derive(Debug, Clone, Copy)]
struct AckTuple {
    seq: u64,
    /// Virtual instant the ACK reaches the emitter (arrival + reverse
    /// hop latency).
    ack_us: u64,
    /// One-way hop the frame experienced, reported like a downstream's
    /// processing sample.
    hop_us: u64,
}

struct LinkOut {
    to: usize,
    latency_us: u64,
    jitter_us: u64,
    /// Per-link jitter stream, forked from the federation seed.
    rng: DetRng,
    tx: Sender<RemoteTuple>,
    ack_rx: Receiver<AckTuple>,
}

struct LinkIn {
    from: usize,
    /// Reverse-hop latency used to stamp ACK delivery.
    latency_us: u64,
    rx: Receiver<RemoteTuple>,
    ack_tx: Sender<AckTuple>,
}

/// One shard of the federated simulator: a [`SimSwarm`] plus its
/// gateway links and the federation-tier latency estimator scoring
/// them.
#[derive(Debug)]
pub struct Shard {
    id: usize,
    /// The wrapped swarm. Public so scenario builders can schedule
    /// chaos (crashes, joins, partitions) before the run and read
    /// telemetry after it.
    pub swarm: SimSwarm,
    links_out: Vec<LinkOut>,
    links_in: Vec<LinkIn>,
    estimator: LatencyEstimator,
    routed: u64,
    acked: u64,
}

impl std::fmt::Debug for LinkOut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LinkOut")
            .field("to", &self.to)
            .field("latency_us", &self.latency_us)
            .field("jitter_us", &self.jitter_us)
            .finish_non_exhaustive()
    }
}

impl std::fmt::Debug for LinkIn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LinkIn")
            .field("from", &self.from)
            .field("latency_us", &self.latency_us)
            .finish_non_exhaustive()
    }
}

impl Shard {
    /// Wrap `swarm` as shard `id` with no gateway links yet (see
    /// [`connect`]).
    #[must_use]
    pub fn new(id: usize, swarm: SimSwarm) -> Shard {
        Shard {
            id,
            swarm,
            links_out: Vec::new(),
            links_in: Vec::new(),
            estimator: LatencyEstimator::new(
                32,
                timing::INITIAL_LATENCY_ESTIMATE_US,
                timing::LOSS_TIMEOUT_US,
            ),
            routed: 0,
            acked: 0,
        }
    }

    /// Shard index within the federation.
    #[must_use]
    pub fn id(&self) -> usize {
        self.id
    }

    /// Gateway frames this shard routed onto outbound links so far.
    #[must_use]
    pub fn routed(&self) -> u64 {
        self.routed
    }

    /// Federation-tier ACKs consumed so far.
    #[must_use]
    pub fn acked(&self) -> u64 {
        self.acked
    }

    /// Latency views of every outbound gateway link, ordered by
    /// destination shard — the federation-tier analogue of the router's
    /// per-downstream `L_i` table.
    #[must_use]
    pub fn gateway_views(&mut self, now_us: u64) -> Vec<LatencyView> {
        self.estimator.snapshot(now_us)
    }

    /// Smallest outbound link latency, if any link exists; the engine
    /// asserts every link dominates the lookahead.
    fn min_out_latency(&self) -> Option<u64> {
        self.links_out.iter().map(|l| l.latency_us).min()
    }

    /// Window phase 1: consume ACKs, drain inbound gateway tuples in
    /// link order, advance the swarm to `bound_us`. Returns the next
    /// local event time (`u64::MAX` when the queue is empty).
    fn advance(&mut self, bound_us: u64) -> u64 {
        for l in &mut self.links_out {
            while let Ok(a) = l.ack_rx.try_recv() {
                self.estimator.on_ack(SeqNo(a.seq), a.ack_us, a.hop_us);
                self.acked += 1;
            }
        }
        for l in &self.links_in {
            while let Ok(m) = l.rx.try_recv() {
                self.swarm
                    .ingest_remote(m.arrive_us, m.from as u64, m.seq, m.emitted_us);
            }
        }
        self.swarm.run_until(bound_us);
        self.swarm.next_event_us().unwrap_or(u64::MAX)
    }

    /// Window phase 2: ACK the peer frames consumed this window, then
    /// route fresh egress over the lowest-latency gateway link,
    /// publishing the earliest arrival produced per destination into
    /// `pending`.
    fn exchange(&mut self, now_us: u64, pending: &[AtomicU64]) {
        for r in self.swarm.drain_gateway_receipts() {
            let Some(l) = self.links_in.iter().find(|l| l.from as u64 == r.from_swarm) else {
                continue;
            };
            let _ = l.ack_tx.send(AckTuple {
                seq: r.seq,
                ack_us: r.arrived_us + l.latency_us,
                hop_us: r.arrived_us.saturating_sub(r.emitted_us),
            });
        }
        if self.links_out.is_empty() {
            // An isolated shard's egress has nowhere to go; drop it
            // (still counted by the swarm's egress counter).
            let _ = self.swarm.drain_gateway_egress();
            return;
        }
        for f in self.swarm.drain_gateway_egress() {
            // LRS composed across tiers: the link whose latency view is
            // lowest wins; ties break toward the first link in
            // destination order, deterministically.
            let mut best = 0usize;
            let mut best_lat = f64::INFINITY;
            for (i, l) in self.links_out.iter().enumerate() {
                let lat = self
                    .estimator
                    .view(UnitId(l.to as u32), now_us)
                    .map_or(f64::INFINITY, |v| v.latency_us);
                if lat < best_lat {
                    best_lat = lat;
                    best = i;
                }
            }
            let l = &mut self.links_out[best];
            let jitter = if l.jitter_us > 0 {
                l.rng.random_range(0..=l.jitter_us)
            } else {
                0
            };
            let arrive = f.emitted_us + l.latency_us + jitter;
            self.estimator
                .on_send(SeqNo(f.seq), UnitId(l.to as u32), f.emitted_us);
            pending[l.to].fetch_min(arrive, Ordering::SeqCst);
            let _ = l.tx.send(RemoteTuple {
                from: self.id,
                seq: f.seq,
                emitted_us: f.emitted_us,
                arrive_us: arrive,
            });
            self.routed += 1;
        }
    }
}

/// Wire a directed gateway link `from → to` with the given one-way
/// latency and jitter bound. The reverse ACK channel rides the same
/// latency. Jitter draws from a stream forked off `rng`, keyed by the
/// link's endpoints, so topology construction order cannot perturb it.
///
/// # Panics
/// If `from == to` or either index is out of bounds.
pub fn connect(
    shards: &mut [Shard],
    from: usize,
    to: usize,
    latency_us: u64,
    jitter_us: u64,
    rng: &mut DetRng,
) {
    assert_ne!(from, to, "a gateway link must join two distinct shards");
    let (tx, rx) = unbounded();
    let (ack_tx, ack_rx) = unbounded();
    let link_rng = rng.fork(((from as u64) << 32) | to as u64);
    shards[from].estimator.add_unit(UnitId(to as u32));
    shards[from].links_out.push(LinkOut {
        to,
        latency_us,
        jitter_us,
        rng: link_rng,
        tx,
        ack_rx,
    });
    shards[to].links_in.push(LinkIn {
        from,
        latency_us,
        rx,
        ack_tx,
    });
}

/// What a finished [`run_to_horizon`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineReport {
    /// Synchronization windows executed.
    pub windows: u64,
    /// Threads the pool actually used.
    pub threads: usize,
}

/// Advance every shard to `horizon_us` under conservative windowed
/// synchronization with the given `lookahead_us`, using `threads`
/// worker threads (clamped to `[1, shards.len()]`). Deterministic: the
/// same shards and seeds produce the same schedule at any thread count.
///
/// # Panics
/// If `lookahead_us` is zero, or any gateway link's latency is below
/// the lookahead (the conservative bound would be unsound).
pub fn run_to_horizon(
    shards: &mut Vec<Shard>,
    lookahead_us: u64,
    horizon_us: u64,
    threads: usize,
) -> EngineReport {
    assert!(lookahead_us > 0, "zero lookahead degenerates to lockstep");
    let n = shards.len();
    if n == 0 {
        return EngineReport {
            windows: 0,
            threads: 0,
        };
    }
    for s in shards.iter() {
        if let Some(min) = s.min_out_latency() {
            assert!(
                min >= lookahead_us,
                "shard {} has a gateway link faster ({min} us) than the \
                 lookahead ({lookahead_us} us); the window bound would be unsound",
                s.id
            );
        }
    }
    // Fixed drain order, independent of construction order.
    for s in shards.iter_mut() {
        s.links_out.sort_by_key(|l| l.to);
        s.links_in.sort_by_key(|l| l.from);
    }
    let threads = threads.clamp(1, n);

    let lbts0 = shards
        .iter()
        .filter_map(|s| s.swarm.next_event_us())
        .min()
        .unwrap_or(u64::MAX);
    let first_bound = if lbts0 == u64::MAX {
        horizon_us
    } else {
        horizon_us.min(lbts0.saturating_add(lookahead_us - 1))
    };

    let cells: Vec<Mutex<Shard>> = std::mem::take(shards).into_iter().map(Mutex::new).collect();
    let next_times: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(u64::MAX)).collect();
    let pending: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(u64::MAX)).collect();
    let idx_a = AtomicUsize::new(0);
    let idx_b = AtomicUsize::new(0);
    let bound = AtomicU64::new(first_bound);
    let done = AtomicBool::new(false);
    let windows = AtomicU64::new(0);
    let barrier = Barrier::new(threads);

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let b_now = bound.load(Ordering::SeqCst);
                // Phase 1: advance claimed shards to the bound.
                loop {
                    let i = idx_a.fetch_add(1, Ordering::SeqCst);
                    if i >= n {
                        break;
                    }
                    let mut sh = cells[i].lock().expect("shard lock");
                    let next = sh.advance(b_now);
                    next_times[i].store(next, Ordering::SeqCst);
                }
                barrier.wait();
                // Phase 2: exchange gateway traffic.
                loop {
                    let i = idx_b.fetch_add(1, Ordering::SeqCst);
                    if i >= n {
                        break;
                    }
                    let mut sh = cells[i].lock().expect("shard lock");
                    sh.exchange(b_now, &pending);
                }
                let leader = barrier.wait().is_leader();
                // Phase 3: one thread computes the next window while
                // the rest hold at the closing barrier.
                if leader {
                    windows.fetch_add(1, Ordering::SeqCst);
                    let mut lbts = u64::MAX;
                    for t in &next_times {
                        lbts = lbts.min(t.load(Ordering::SeqCst));
                    }
                    for p in &pending {
                        lbts = lbts.min(p.swap(u64::MAX, Ordering::SeqCst));
                    }
                    if b_now >= horizon_us {
                        done.store(true, Ordering::SeqCst);
                    } else {
                        let nb = if lbts == u64::MAX {
                            horizon_us
                        } else {
                            horizon_us.min(lbts.saturating_add(lookahead_us - 1))
                        };
                        // lbts strictly exceeds the executed bound, so
                        // this max never fires; it pins monotone
                        // progress even so.
                        bound.store(nb.max(b_now.saturating_add(1)), Ordering::SeqCst);
                    }
                    idx_a.store(0, Ordering::SeqCst);
                    idx_b.store(0, Ordering::SeqCst);
                }
                barrier.wait();
                if done.load(Ordering::SeqCst) {
                    break;
                }
            });
        }
    });

    shards.extend(
        cells
            .into_iter()
            .map(|m| m.into_inner().expect("no poisoned shard")),
    );
    EngineReport {
        windows: windows.load(Ordering::SeqCst),
        threads,
    }
}
