//! Swarm-of-swarms: a federation of [`SimSwarm`]s on the sharded
//! parallel engine.
//!
//! The paper's swarm is one master over a handful of co-located
//! devices; SwarMS-style deployments compose many such swarms. This
//! module instantiates K swarms from one shared configuration, joins
//! them with inter-swarm **gateway links** (one-way latency at least
//! [`timing::GATEWAY_MIN_LATENCY_US`], which doubles as the engine's
//! conservative lookahead), and runs them as shards of
//! [`shard::run_to_horizon`]. Routing composes across tiers exactly as
//! inside a swarm: each member runs LRS internally, and its gateway
//! egress picks the outbound link with the best `L_i` latency view,
//! scored by the same estimator.
//!
//! Every member gets its own telemetry domain, its own control plane
//! and its own forked RNG streams, so the federation is a pure
//! function of its seed: the same [`FederationConfig`] exports a
//! byte-identical federated telemetry JSON at any thread count.
//! Telemetry rolls up by merging the per-swarm snapshots in shard
//! order ([`Snapshot::merge_from`] is exact on counters, gauges and
//! histogram buckets); member swarms reuse the same worker names, so
//! merged metric keys collide on purpose and the rollup reads as
//! federated totals.

use std::sync::atomic::{AtomicU64, Ordering};

use swing_core::config::{ReorderConfig, RetryConfig};
use swing_core::graph::AppGraph;
use swing_core::rng::DetRng;
use swing_core::timing;
use swing_core::{Tuple, SECOND_US};
use swing_runtime::registry::UnitRegistry;
use swing_runtime::sim::{SimSwarm, SimSwarmConfig};
use swing_telemetry::{names as tn, to_json, Snapshot, Telemetry};

use crate::shard::{self, Shard};

/// Shape of a federation run.
#[derive(Debug, Clone)]
pub struct FederationConfig {
    /// Member swarms (shards). Total devices = `swarms *
    /// workers_per_swarm`.
    pub swarms: usize,
    /// Devices per member swarm: one endpoint host (source + sink) and
    /// `workers_per_swarm - 1` operator hosts.
    pub workers_per_swarm: usize,
    /// Frames each member's source senses before going quiet.
    pub frames_per_source: u64,
    /// Source capture rate, frames per second.
    pub input_fps: f64,
    /// Master seed; every member seed and link jitter stream forks off
    /// it.
    pub seed: u64,
    /// Outbound gateway links per member (ring neighbours `i+1 ..
    /// i+fanout`, wrapped). With fanout ≥ 2 the gateway estimator has
    /// real routing choice.
    pub gateway_fanout: usize,
    /// One-way gateway link latency; must dominate the lookahead
    /// ([`timing::GATEWAY_MIN_LATENCY_US`]).
    pub gateway_latency_us: u64,
    /// Upper bound of seeded per-frame gateway jitter.
    pub gateway_jitter_us: u64,
    /// Every Nth played sink frame becomes gateway egress.
    pub egress_sample_every: u64,
    /// Worker threads for the windowed engine (clamped to the shard
    /// count; 1 reproduces the exact same schedule serially).
    pub threads: usize,
    /// Virtual horizon of the windowed run; the in-flight tail drains
    /// past it during finish.
    pub horizon_us: u64,
}

impl Default for FederationConfig {
    /// A 10-swarm × 10-device federation, 30 fps for 10 s of virtual
    /// time — the CI-scale scenario.
    fn default() -> Self {
        FederationConfig {
            swarms: 10,
            workers_per_swarm: 10,
            frames_per_source: 300,
            input_fps: 30.0,
            seed: 1,
            gateway_fanout: 2,
            gateway_latency_us: timing::GATEWAY_MIN_LATENCY_US,
            gateway_jitter_us: 5_000,
            egress_sample_every: 5,
            threads: 1,
            horizon_us: 30 * SECOND_US,
        }
    }
}

/// Post-run state of one member swarm — the federation's analogue of a
/// master status row, reported per shard in campaign summaries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SwarmStatus {
    /// Shard index.
    pub id: usize,
    /// Final control-plane epoch (bumped by every eviction, join and
    /// re-placement wave inside the member).
    pub epoch: u64,
    /// Workers alive at the end of the run.
    pub alive_workers: usize,
    /// Frames the member's source sensed.
    pub sensed: u64,
    /// Frames its sink played.
    pub played: u64,
    /// Frames that arrived after playback passed them.
    pub stale: u64,
    /// Frames shed at the source admission gate.
    pub shed_source: u64,
    /// Frames shed from operator mailboxes.
    pub shed_queue: u64,
    /// Frames abandoned by the retransmission layer.
    pub lost: u64,
    /// Gateway frames the member emitted toward peers.
    pub gateway_egress: u64,
    /// Peer gateway frames the member consumed.
    pub gateway_ingress: u64,
    /// p99 end-to-end (sense → play) latency, microseconds.
    pub p99_e2e_us: u64,
    /// The shed-accounting identity held exactly with zero loss.
    pub conserved: bool,
}

impl SwarmStatus {
    /// Serialize this status row as one JSON object (a row of the
    /// campaign artifact's federation section).
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"id\":{},\"epoch\":{},\"alive_workers\":{},\"sensed\":{},\
             \"played\":{},\"stale\":{},\"shed_source\":{},\"shed_queue\":{},\
             \"lost\":{},\"gateway_egress\":{},\"gateway_ingress\":{},\
             \"p99_e2e_us\":{},\"conserved\":{}}}",
            self.id,
            self.epoch,
            self.alive_workers,
            self.sensed,
            self.played,
            self.stale,
            self.shed_source,
            self.shed_queue,
            self.lost,
            self.gateway_egress,
            self.gateway_ingress,
            self.p99_e2e_us,
            self.conserved
        )
    }
}

/// What a [`Federation::run`] produced.
#[derive(Debug, Clone)]
pub struct FederationReport {
    /// Per-member status rows, in shard order.
    pub swarms: Vec<SwarmStatus>,
    /// Synchronization windows the engine executed.
    pub windows: u64,
    /// Threads the engine pool used.
    pub threads: usize,
    /// Total devices simulated.
    pub devices: usize,
    /// Gateway frames routed onto inter-swarm links.
    pub routed: u64,
    /// Federation-tier ACKs consumed by emitters.
    pub acked: u64,
    /// The federated telemetry rollup (per-swarm snapshots merged in
    /// shard order) rendered as JSON — the byte-identity artifact CI
    /// diffs across thread counts.
    pub federated_json: String,
    /// The merged snapshot itself, for programmatic totals.
    pub federated: Snapshot,
}

impl FederationReport {
    /// Conservation held in every member swarm.
    #[must_use]
    pub fn all_conserved(&self) -> bool {
        self.swarms.iter().all(|s| s.conserved)
    }

    /// Sum of a counter across the federation (from the merged
    /// rollup).
    #[must_use]
    pub fn federated_counter(&self, name: &str) -> u64 {
        self.federated.counter_total(name)
    }

    /// Total gateway frames consumed across the federation. Always at
    /// most [`routed`](Self::routed): frames still traversing a
    /// gateway link at the horizon are in flight, not lost.
    #[must_use]
    pub fn federated_ingress(&self) -> u64 {
        self.federated.counter_total(tn::GATEWAY_INGRESS)
    }

    /// Per-member rows plus federated totals as one JSON document (the
    /// campaign artifact's `federation` section).
    #[must_use]
    pub fn to_json(&self) -> String {
        let rows: Vec<String> = self.swarms.iter().map(SwarmStatus::to_json).collect();
        format!(
            "{{\"swarms\":{},\"devices\":{},\"windows\":{},\"threads\":{},\
             \"routed\":{},\"acked\":{},\"federated\":{{\"sensed\":{},\
             \"played\":{},\"stale\":{},\"shed_source\":{},\"shed_queue\":{},\
             \"lost\":{},\"gateway_egress\":{},\"gateway_ingress\":{},\
             \"conserved\":{}}},\"members\":[{}]}}",
            self.swarms.len(),
            self.devices,
            self.windows,
            self.threads,
            self.routed,
            self.acked,
            self.federated_counter(tn::SOURCE_SENSED),
            self.federated_counter(tn::SINK_PLAYED),
            self.federated_counter(tn::SINK_STALE),
            self.federated_counter(tn::SOURCE_SHED),
            self.federated_counter(tn::EXEC_SHED_IN_QUEUE),
            self.federated_counter(tn::EXEC_LOST),
            self.federated_counter(tn::GATEWAY_EGRESS),
            self.federated_counter(tn::GATEWAY_INGRESS),
            self.all_conserved(),
            rows.join(",")
        )
    }
}

/// A built federation, ready to run (or to have chaos scheduled onto
/// its members first).
#[derive(Debug)]
pub struct Federation {
    shards: Vec<Shard>,
    config: FederationConfig,
    telemetry: Vec<Telemetry>,
}

fn member_graph() -> AppGraph {
    let mut g = AppGraph::new("federation-member");
    let s = g.add_source("cam");
    let o = g.add_operator("work");
    let k = g.add_sink("out");
    g.connect(s, o).expect("valid edge");
    g.connect(o, k).expect("valid edge");
    g
}

pub(crate) fn member_registry(frames: u64) -> UnitRegistry {
    let mut r = UnitRegistry::new();
    r.register_source("cam", move || {
        let count = AtomicU64::new(0);
        swing_core::unit::closure_source(move |_now| {
            if count.fetch_add(1, Ordering::Relaxed) < frames {
                Some(Tuple::new().with("v", 1i64))
            } else {
                None
            }
        })
    });
    r.register_operator("work", || swing_core::unit::PassThrough);
    r.register_sink("out", || swing_core::unit::closure_sink(|_, _| ()));
    r
}

/// The member node configuration the federation standardizes on when
/// no shared [`SwarmConfig`](swing_runtime::config::SwarmConfig) is
/// supplied: the chaos-campaign settings (retransmission on, a reorder
/// span wide enough that churn converts to staleness rather than
/// skips), except the dedup window. The campaign's 8192-entry window
/// is preallocated *per upstream*, and a federated sink has one
/// upstream per operator host — at 10k devices that alone costs
/// hundreds of megabytes and thrashes every cache level. 1024 entries
/// still dwarf the worst-case in-flight budget (max_retries × credit
/// window), so dedup semantics are unchanged.
fn member_sim_config(seed: u64, fps: f64) -> SimSwarmConfig {
    let mut c = SimSwarmConfig {
        seed,
        ..SimSwarmConfig::default()
    };
    c.node.input_fps = fps;
    c.node.retry = RetryConfig {
        enabled: true,
        deadline_factor: 3.0,
        deadline_floor_us: 50_000,
        deadline_ceiling_us: 400_000,
        backoff_factor: 1.5,
        max_retries: 20,
        dedup_window: 1024,
    };
    c.node.reorder = ReorderConfig {
        span_us: 10 * SECOND_US,
    };
    c.node.telemetry = Telemetry::new();
    c
}

impl Federation {
    /// Instantiate `config.swarms` members, all from the same graph
    /// and node configuration, each with a forked seed and a private
    /// telemetry domain, wired in a gateway ring of
    /// `config.gateway_fanout` outbound links per member.
    ///
    /// # Errors
    /// Propagates a member swarm failing to start.
    ///
    /// # Panics
    /// If the gateway latency is below the conservative lookahead or
    /// the shape is degenerate (zero swarms/workers).
    pub fn build(config: FederationConfig) -> swing_core::Result<Federation> {
        Self::build_with(config, None)
    }

    /// Like [`build`](Self::build), but seeding every member's node
    /// configuration from one shared
    /// [`SwarmConfig`](swing_runtime::config::SwarmConfig) — the same
    /// knobs a live `LocalSwarmBuilder` consumes, instantiated K
    /// times. Sim-only knobs keep the federation defaults and each
    /// member still gets a private telemetry domain.
    pub fn build_with(
        config: FederationConfig,
        shared: Option<&swing_runtime::config::SwarmConfig>,
    ) -> swing_core::Result<Federation> {
        assert!(config.swarms > 0, "a federation needs at least one swarm");
        assert!(
            config.workers_per_swarm > 0,
            "a member swarm needs at least one worker"
        );
        assert!(
            config.gateway_latency_us >= timing::GATEWAY_MIN_LATENCY_US,
            "gateway latency {} us is below the conservative lookahead {} us",
            config.gateway_latency_us,
            timing::GATEWAY_MIN_LATENCY_US
        );
        let mut master = DetRng::seed_from_u64(config.seed);
        let mut shards = Vec::with_capacity(config.swarms);
        let mut telemetry = Vec::with_capacity(config.swarms);
        for i in 0..config.swarms {
            let member_seed = master.fork(i as u64).next_u64();
            let sim_cfg = match shared {
                Some(s) => {
                    let mut c = SimSwarmConfig::from_swarm(s);
                    c.seed = member_seed;
                    c.node.telemetry = Telemetry::new();
                    c
                }
                None => member_sim_config(member_seed, config.input_fps),
            };
            // Same worker names in every member: merged metric keys
            // collide on purpose, so the rollup sums to federated
            // totals instead of exploding into per-member rows.
            let workers: Vec<(String, UnitRegistry)> = (0..config.workers_per_swarm)
                .map(|w| {
                    let frames = if w == 0 { config.frames_per_source } else { 0 };
                    (format!("w{w}"), member_registry(frames))
                })
                .collect();
            let mut swarm = SimSwarm::start(member_graph(), workers, sim_cfg)?;
            if config.swarms > 1 && config.gateway_fanout > 0 {
                swarm.enable_gateway(config.egress_sample_every);
            }
            telemetry.push(swarm.telemetry().clone());
            shards.push(Shard::new(i, swarm));
        }
        // Ring-with-chords topology: member i links to the next
        // `fanout` members, wrapped. Deterministic construction order;
        // each link's jitter stream forks from the master seed.
        let fanout = config.gateway_fanout.min(config.swarms.saturating_sub(1));
        for i in 0..config.swarms {
            for k in 1..=fanout {
                let j = (i + k) % config.swarms;
                shard::connect(
                    &mut shards,
                    i,
                    j,
                    config.gateway_latency_us,
                    config.gateway_jitter_us,
                    &mut master,
                );
            }
        }
        Ok(Federation {
            shards,
            config,
            telemetry,
        })
    }

    /// Total devices across the federation.
    #[must_use]
    pub fn devices(&self) -> usize {
        self.config.swarms * self.config.workers_per_swarm
    }

    /// Mutable access to member `i`'s swarm, for scheduling chaos
    /// (crashes, joins, partitions, master outages) before the run.
    pub fn swarm_mut(&mut self, i: usize) -> &mut SimSwarm {
        &mut self.shards[i].swarm
    }

    /// Run the windowed engine to the configured horizon, drain every
    /// member's in-flight tail, and roll the telemetry up.
    ///
    /// Consumes the federation: draining a member's tail
    /// ([`SimSwarm::finish`]) flushes its sinks and sheds whatever its
    /// mailboxes still hold, which is what makes the conservation
    /// identity exact.
    #[must_use]
    pub fn run(mut self) -> FederationReport {
        let engine = shard::run_to_horizon(
            &mut self.shards,
            timing::GATEWAY_MIN_LATENCY_US,
            self.config.horizon_us,
            self.config.threads,
        );
        let mut routed = 0u64;
        let mut acked = 0u64;
        let mut swarms = Vec::with_capacity(self.shards.len());
        // finish() is serial: the engine stopped, members no longer
        // exchange, and each tail drain touches only member state.
        for shard in self.shards {
            let id = shard.id();
            routed += shard.routed();
            acked += shard.acked();
            let swarm = shard.swarm;
            let epoch = swarm.epoch();
            let alive_workers = swarm.alive_workers().len();
            let (gw_egress, gw_ingress) = swarm.gateway_counts();
            let _ = swarm.finish();
            let snap = self.telemetry[id].snapshot();
            let sensed = snap.counter_total(tn::SOURCE_SENSED);
            let played = snap.counter_total(tn::SINK_PLAYED);
            let stale = snap.counter_total(tn::SINK_STALE);
            let shed_source = snap.counter_total(tn::SOURCE_SHED);
            let shed_queue = snap.counter_total(tn::EXEC_SHED_IN_QUEUE);
            let lost = snap.counter_total(tn::EXEC_LOST);
            swarms.push(SwarmStatus {
                id,
                epoch,
                alive_workers,
                sensed,
                played,
                stale,
                shed_source,
                shed_queue,
                lost,
                gateway_egress: gw_egress,
                gateway_ingress: gw_ingress,
                p99_e2e_us: snap.histogram_total(tn::SINK_E2E_LATENCY_US).p99(),
                conserved: lost == 0
                    && sensed == (played + stale) + shed_source + shed_queue + lost,
            });
        }
        // Roll up in shard order — merge_from is exact and
        // order-deterministic, so this JSON is the byte-identity
        // artifact.
        let mut federated = self.telemetry[0].snapshot();
        for t in &self.telemetry[1..] {
            federated.merge_from(&t.snapshot());
        }
        let federated_json = to_json(&federated);
        FederationReport {
            swarms,
            windows: engine.windows,
            threads: engine.threads,
            devices: self.config.swarms * self.config.workers_per_swarm,
            routed,
            acked,
            federated_json,
            federated,
        }
    }
}
