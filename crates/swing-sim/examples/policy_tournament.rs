//! Run the full seeded policy tournament and print the summary table.
//!
//! ```sh
//! cargo run --release -p swing-sim --example policy_tournament
//! ```
//!
//! Set `SWING_TOURNAMENT_OUT=/path/to/tournament_summary.json` to also
//! write the JSON artifact.

use swing_sim::tournament::{run_tournament, TournamentConfig};

fn main() {
    let config = TournamentConfig::default();
    let summary = run_tournament(&config);
    println!(
        "{:<14} {:<8} {:>5} {:>8} {:>9} {:>8} {:>8} {:>7} {:>6}",
        "trace", "policy", "seed", "frames", "p99_ms", "death_s", "half_s", "deaths", "replay"
    );
    for c in &summary.cells {
        println!(
            "{:<14} {:<8} {:>5} {:>8} {:>9.1} {:>8} {:>8} {:>7} {:>6}",
            c.trace,
            c.policy.name(),
            c.seed,
            c.frames_played,
            c.p99_ms,
            c.time_to_first_death_s
                .map_or("-".to_string(), |t| format!("{t:.1}")),
            c.time_to_half_swarm_s
                .map_or("-".to_string(), |t| format!("{t:.1}")),
            c.battery_deaths,
            c.replay_identical,
        );
    }
    println!();
    for cmp in &summary.comparisons {
        println!(
            "{:<14} seed={:<4} {:<8} half={:>6.1}s lrs={:>6.1}s margin={:>+7.1}s p99={:>7.1}ms (lrs {:>7.1}ms) win={}",
            cmp.trace,
            cmp.seed,
            cmp.policy.name(),
            cmp.half_s,
            cmp.lrs_half_s,
            cmp.margin_s,
            cmp.p99_ms,
            cmp.lrs_p99_ms,
            cmp.win,
        );
    }
    println!();
    for &p in &swing_core::routing::Policy::ENERGY_AWARE {
        println!("{}: traces won = {}", p.name(), summary.traces_won(p));
    }
    println!(
        "all_replays_identical = {}",
        summary.all_replays_identical()
    );
    println!("acceptance_passed     = {}", summary.acceptance_passed());
    if let Ok(path) = std::env::var("SWING_TOURNAMENT_OUT") {
        summary
            .write(std::path::Path::new(&path))
            .expect("write artifact");
        println!("wrote {path}");
    }
}
