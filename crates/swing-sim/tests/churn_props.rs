//! Failure-injection property tests: the simulator must stay sound —
//! no panics, balanced frame accounting, sane statistics — under
//! arbitrary storms of churn, mobility, background load and policy
//! choices.

use proptest::prelude::*;
use swing_core::config::RouterConfig;
use swing_core::routing::Policy;
use swing_core::SECOND_US;
use swing_device::mobility::MobilityTrace;
use swing_device::profile::{testbed, Workload};
use swing_sim::swarm::{Swarm, SwarmConfig, WorkerSpec};

#[derive(Debug, Clone)]
struct WorkerPlan {
    device: usize,
    join_s: u64,
    leave_s: Option<u64>,
    background: f64,
    rssi_steps: Vec<(u64, f64)>,
}

fn arb_worker() -> impl Strategy<Value = WorkerPlan> {
    (
        0usize..9,
        0u64..20,
        proptest::option::of(1u64..25),
        0.0f64..1.0,
        proptest::collection::vec((0u64..25_000_000, -85.0f64..-25.0), 0..4),
    )
        .prop_map(
            |(device, join_s, leave_s, background, rssi_steps)| WorkerPlan {
                device,
                join_s,
                leave_s,
                background,
                rssi_steps,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any churn storm: every generated frame ends up in exactly one
    /// terminal state, and the report's counters agree with the
    /// per-frame records.
    #[test]
    fn frame_accounting_balances_under_churn(
        plans in proptest::collection::vec(arb_worker(), 1..6),
        policy_idx in 0usize..5,
        fps in 4.0f64..30.0,
        resend in any::<bool>(),
        seed in 0u64..1_000,
    ) {
        let tb = testbed();
        let mut config = SwarmConfig::new(
            Workload::FaceRecognition,
            RouterConfig::new(Policy::ALL[policy_idx]),
        );
        config.duration_us = 25 * SECOND_US;
        config.input_fps = fps;
        config.seed = seed;
        config.resend_orphans = resend;
        let workers: Vec<WorkerSpec> = plans
            .iter()
            .map(|p| {
                let mut spec = WorkerSpec::new(tb[p.device].clone())
                    .with_background(p.background)
                    .joining_at(p.join_s * SECOND_US);
                if let Some(leave) = p.leave_s {
                    // Leaves may precede joins; the sim must cope.
                    spec = spec.leaving_at(leave * SECOND_US);
                }
                if !p.rssi_steps.is_empty() {
                    spec = spec.with_mobility(MobilityTrace::from_steps(p.rssi_steps.clone()));
                }
                spec
            })
            .collect();
        let report = Swarm::new(config, workers).run();

        // Counter / record agreement.
        let rec_completed = report.frames.iter().filter(|f| f.completed()).count() as u64;
        let rec_dropped = report.frames.iter().filter(|f| f.dropped).count() as u64;
        let rec_lost = report.frames.iter().filter(|f| f.lost).count() as u64;
        prop_assert_eq!(rec_completed, report.completed);
        prop_assert_eq!(rec_dropped, report.dropped_at_source);
        prop_assert_eq!(rec_lost, report.lost);

        // Every frame is in exactly one state (or still in flight).
        let in_flight = report
            .frames
            .iter()
            .filter(|f| !f.completed() && !f.dropped && !f.lost)
            .count() as u64;
        prop_assert_eq!(
            report.generated,
            report.completed + report.dropped_at_source + report.lost + in_flight
        );
        for f in &report.frames {
            let states =
                u32::from(f.completed()) + u32::from(f.dropped) + u32::from(f.lost);
            prop_assert!(states <= 1, "frame {} in {} states", f.seq, states);
        }

        // Per-frame timestamps are causally ordered.
        for f in &report.frames {
            if let (Some(d), Some(a)) = (f.dispatched_us, f.arrived_us) {
                prop_assert!(d >= f.created_us && a >= d);
            }
            if let (Some(s), Some(e)) = (f.started_us, f.finished_us) {
                prop_assert!(e >= s);
            }
            if let (Some(e), Some(k)) = (f.finished_us, f.sink_us) {
                prop_assert!(k >= e);
            }
        }

        // Statistics are sane.
        prop_assert!(report.throughput_fps >= 0.0);
        prop_assert!(report.latency_ms.min() >= 0.0);
        prop_assert!(report.latency_ms.count() == report.completed);
        for w in &report.workers {
            prop_assert!((0.0..=1.0).contains(&w.cpu_util));
            prop_assert!(w.power_w() >= 0.0);
            prop_assert!(w.completed <= w.received);
        }
    }

    /// With the reliability extension on and at least one worker staying
    /// for the whole run, a leave never loses frames.
    #[test]
    fn resend_mode_never_loses_frames_while_a_worker_survives(
        leave_s in 5u64..15,
        survivor in 0usize..9,
        leaver in 0usize..9,
        seed in 0u64..500,
    ) {
        let tb = testbed();
        let mut config = SwarmConfig::new(
            Workload::FaceRecognition,
            RouterConfig::new(Policy::Lrs),
        );
        config.duration_us = 20 * SECOND_US;
        config.input_fps = 8.0;
        config.seed = seed;
        config.resend_orphans = true;
        let workers = vec![
            WorkerSpec::new(tb[survivor].clone()),
            WorkerSpec::new(tb[leaver].clone()).leaving_at(leave_s * SECOND_US),
        ];
        let report = Swarm::new(config, workers).run();
        prop_assert_eq!(report.lost, 0, "lost {} frames despite resend", report.lost);
    }
}
