//! The full chaos campaign as a test: every fault archetype × seeds,
//! each grid point holding the conservation, bounded-recovery, and
//! replay invariants. Writes `campaign_summary.json` (to
//! `$SWING_CAMPAIGN_OUT` when set, else into `target/`) so CI can
//! upload it as an artifact.

use std::path::PathBuf;
use swing_sim::campaign::{
    run_campaign, run_federated_chaos, CampaignConfig, FaultKind, FederatedChaosConfig,
};

fn summary_path() -> PathBuf {
    match std::env::var_os("SWING_CAMPAIGN_OUT") {
        Some(p) => PathBuf::from(p),
        None => {
            // target/<profile>/../campaign_summary.json next to the
            // test binary, wherever cargo placed it.
            let mut p = std::env::current_exe().expect("test binary path");
            p.pop(); // binary name
            p.pop(); // deps/
            p.push("campaign_summary.json");
            p
        }
    }
}

/// The acceptance grid: all six archetypes, two seeds each — 12 points.
#[test]
fn chaos_campaign_grid_holds_all_invariants() {
    let config = CampaignConfig::default();
    assert_eq!(
        config.kinds.len() * config.seeds.len(),
        12,
        "the default campaign must cover at least 12 grid points"
    );
    let mut summary = run_campaign(&config);

    // The federated re-run: all six archetypes spread round-robin over
    // a 100-swarm federation (400 devices) on the sharded parallel
    // engine, twice, proving conservation and byte-identical replay at
    // swarm-of-swarms scale. Its per-member status rows (epoch, alive
    // workers, counters) land in the summary's `federation` section.
    let fed = run_federated_chaos(&FederatedChaosConfig::default());
    assert_eq!(fed.members.len(), 100);
    assert!(
        fed.replay_identical,
        "federated chaos replay diverged at 100-swarm scale"
    );
    let unconserved: Vec<String> = fed
        .members
        .iter()
        .filter(|m| !m.status.conserved)
        .map(|m| format!("member {} ({}): {:?}", m.status.id, m.fault, m.status))
        .collect();
    assert!(
        unconserved.is_empty(),
        "{} of 100 members violated conservation:\n{}",
        unconserved.len(),
        unconserved.join("\n")
    );
    // Gateway traffic actually crossed swarm boundaries during chaos.
    assert!(
        fed.routed > 0 && fed.ingress > 0,
        "federation never exchanged"
    );
    summary.federation = Some(fed);

    let path = summary_path();
    summary.write(&path).expect("write campaign summary");
    eprintln!("campaign summary written to {}", path.display());

    let failures: Vec<String> = summary
        .points
        .iter()
        .filter(|p| !p.passed())
        .map(|p| {
            format!(
                "{}(seed {}): conserved={} recovery_bounded={} replay={} \
                 [sensed {} played {} stale {} shed_src {} shed_q {} lost {}]",
                p.fault,
                p.seed,
                p.conserved,
                p.recovery_bounded,
                p.replay_identical,
                p.sensed,
                p.played,
                p.stale,
                p.shed_source,
                p.shed_queue,
                p.lost
            )
        })
        .collect();
    assert!(
        failures.is_empty(),
        "{} of {} grid points violated invariants:\n{}",
        failures.len(),
        summary.points.len(),
        failures.join("\n")
    );

    // Sole-host archetypes actually exercised re-placement; every
    // churn archetype moved the deployment epoch.
    for kind in [FaultKind::CrashMidStream, FaultKind::CascadingCrashes] {
        let exercised = summary
            .points
            .iter()
            .filter(|p| p.fault == kind.name())
            .all(|p| p.replaced_units > 0);
        assert!(exercised, "{} never re-placed a unit", kind.name());
    }
    for kind in [
        FaultKind::CrashMidStream,
        FaultKind::CrashDuringDeploy,
        FaultKind::CascadingCrashes,
        FaultKind::MasterOutage,
        FaultKind::JoinLeaveStorm,
    ] {
        let moved = summary
            .points
            .iter()
            .filter(|p| p.fault == kind.name())
            .all(|p| p.epoch > 1);
        assert!(moved, "{} never bumped the deployment epoch", kind.name());
    }
}
