//! The full chaos campaign as a test: every fault archetype × seeds,
//! each grid point holding the conservation, bounded-recovery, and
//! replay invariants. Writes `campaign_summary.json` (to
//! `$SWING_CAMPAIGN_OUT` when set, else into `target/`) so CI can
//! upload it as an artifact.

use std::path::PathBuf;
use swing_sim::campaign::{run_campaign, CampaignConfig, FaultKind};

fn summary_path() -> PathBuf {
    match std::env::var_os("SWING_CAMPAIGN_OUT") {
        Some(p) => PathBuf::from(p),
        None => {
            // target/<profile>/../campaign_summary.json next to the
            // test binary, wherever cargo placed it.
            let mut p = std::env::current_exe().expect("test binary path");
            p.pop(); // binary name
            p.pop(); // deps/
            p.push("campaign_summary.json");
            p
        }
    }
}

/// The acceptance grid: all six archetypes, two seeds each — 12 points.
#[test]
fn chaos_campaign_grid_holds_all_invariants() {
    let config = CampaignConfig::default();
    assert_eq!(
        config.kinds.len() * config.seeds.len(),
        12,
        "the default campaign must cover at least 12 grid points"
    );
    let summary = run_campaign(&config);

    let path = summary_path();
    summary.write(&path).expect("write campaign summary");
    eprintln!("campaign summary written to {}", path.display());

    let failures: Vec<String> = summary
        .points
        .iter()
        .filter(|p| !p.passed())
        .map(|p| {
            format!(
                "{}(seed {}): conserved={} recovery_bounded={} replay={} \
                 [sensed {} played {} stale {} shed_src {} shed_q {} lost {}]",
                p.fault,
                p.seed,
                p.conserved,
                p.recovery_bounded,
                p.replay_identical,
                p.sensed,
                p.played,
                p.stale,
                p.shed_source,
                p.shed_queue,
                p.lost
            )
        })
        .collect();
    assert!(
        failures.is_empty(),
        "{} of {} grid points violated invariants:\n{}",
        failures.len(),
        summary.points.len(),
        failures.join("\n")
    );

    // Sole-host archetypes actually exercised re-placement; every
    // churn archetype moved the deployment epoch.
    for kind in [FaultKind::CrashMidStream, FaultKind::CascadingCrashes] {
        let exercised = summary
            .points
            .iter()
            .filter(|p| p.fault == kind.name())
            .all(|p| p.replaced_units > 0);
        assert!(exercised, "{} never re-placed a unit", kind.name());
    }
    for kind in [
        FaultKind::CrashMidStream,
        FaultKind::CrashDuringDeploy,
        FaultKind::CascadingCrashes,
        FaultKind::MasterOutage,
        FaultKind::JoinLeaveStorm,
    ] {
        let moved = summary
            .points
            .iter()
            .filter(|p| p.fault == kind.name())
            .all(|p| p.epoch > 1);
        assert!(moved, "{} never bumped the deployment epoch", kind.name());
    }
}
