//! The seeded policy tournament as a test: the PR's acceptance bar,
//! enforced. Writes `tournament_summary.json` (to
//! `$SWING_TOURNAMENT_OUT` when set, else into `target/`) so CI can
//! upload it as an artifact.

use std::path::PathBuf;
use swing_core::routing::Policy;
use swing_sim::tournament::{run_cell, run_tournament, ChurnTrace, TournamentConfig};

fn summary_path() -> PathBuf {
    match std::env::var_os("SWING_TOURNAMENT_OUT") {
        Some(p) => PathBuf::from(p),
        None => {
            // target/<profile>/tournament_summary.json next to the test
            // binary, wherever cargo placed it.
            let mut p = std::env::current_exe().expect("test binary path");
            p.pop(); // binary name
            p.pop(); // deps/
            p.push("tournament_summary.json");
            p
        }
    }
}

/// The full acceptance grid: 5 policies × 3 churn traces × 2 seeds, each
/// cell run twice for the replay check. The bar: byte-identical replay
/// everywhere, and at least one energy-aware policy beating LRS on
/// time-to-half-swarm on at least 2 of the 3 traces without regressing
/// p99 by more than 10%.
#[test]
fn tournament_meets_acceptance_bar() {
    let config = TournamentConfig::default();
    assert_eq!(
        config.policies.len() * config.traces.len() * config.seeds.len(),
        30
    );
    let summary = run_tournament(&config);

    let path = summary_path();
    summary.write(&path).expect("write tournament summary");
    eprintln!("tournament summary written to {}", path.display());

    // Every cell of the grid replayed byte-identically.
    let diverged: Vec<String> = summary
        .cells
        .iter()
        .filter(|c| !c.replay_identical)
        .map(|c| format!("{}/{}/seed {}", c.trace, c.policy.name(), c.seed))
        .collect();
    assert!(
        diverged.is_empty(),
        "same-seed replay diverged in {} cells:\n{}",
        diverged.len(),
        diverged.join("\n")
    );

    // Battery cliffs actually fired: LRS loses half the swarm on every
    // trace, so the lifetime metric is measuring real attrition, not a
    // degenerate always-survives run.
    for cell in summary.cells.iter().filter(|c| c.policy == Policy::Lrs) {
        assert!(
            cell.time_to_first_death_s.is_some(),
            "{} seed {}: LRS never hit a battery cliff",
            cell.trace,
            cell.seed
        );
        assert!(
            cell.time_to_half_swarm_s.is_some(),
            "{} seed {}: LRS never lost half the swarm",
            cell.trace,
            cell.seed
        );
    }

    // The headline result, with margin: RSS (correlated-source subset
    // selection, battery-ranked) outlives LRS on every trace and every
    // seed, by at least one full re-selection period.
    let rss_rows: Vec<_> = summary
        .comparisons
        .iter()
        .filter(|c| c.policy == Policy::Rss)
        .collect();
    assert_eq!(rss_rows.len(), 6);
    for row in &rss_rows {
        assert!(
            row.win && row.margin_s >= 1.0,
            "{} seed {}: RSS margin {:.1}s over LRS (p99 {:.1}ms vs {:.1}ms)",
            row.trace,
            row.seed,
            row.margin_s,
            row.p99_ms,
            row.lrs_p99_ms
        );
    }

    assert!(summary.traces_won(Policy::Rss) >= 2, "RSS won < 2 traces");
    assert!(
        summary.acceptance_passed(),
        "acceptance bar failed: winners = {:?}",
        Policy::ENERGY_AWARE
            .iter()
            .map(|&p| (p.name(), summary.traces_won(p)))
            .collect::<Vec<_>>()
    );

    // The artifact is well-formed enough for CI to parse the verdict.
    let json = summary.to_json();
    assert!(json.contains("\"acceptance_passed\":true"));
    assert!(json.contains("\"all_replays_identical\":true"));
}

/// A single cell re-run outside the harness lands on the same numbers —
/// the tournament is a pure function of (trace, policy, seed).
#[test]
fn cell_is_pure_function_of_seed() {
    let a = run_cell(ChurnTrace::BatteryCliff, Policy::Rss, 42, 20_000_000);
    let b = run_cell(ChurnTrace::BatteryCliff, Policy::Rss, 42, 20_000_000);
    assert!(a.replay_identical && b.replay_identical);
    assert_eq!(a.frames_played, b.frames_played);
    assert_eq!(a.p99_ms.to_bits(), b.p99_ms.to_bits());
    assert_eq!(a.time_to_first_death_s, b.time_to_first_death_s);
    assert_eq!(a.time_to_half_swarm_s, b.time_to_half_swarm_s);
}

/// Different seeds genuinely perturb the run (the RNG reaches arrival
/// jitter and service noise), while the structural outcome — RSS keeps
/// the big packs alive — holds across them.
#[test]
fn seeds_perturb_but_structure_holds() {
    let a = run_cell(ChurnTrace::BatteryCliff, Policy::Rss, 1, 30_000_000);
    let b = run_cell(ChurnTrace::BatteryCliff, Policy::Rss, 2, 30_000_000);
    assert_ne!(
        (a.frames_played, a.p99_ms.to_bits()),
        (b.frames_played, b.p99_ms.to_bits()),
        "two seeds produced identical runs"
    );
    assert_eq!(a.battery_deaths, 0);
    assert_eq!(b.battery_deaths, 0);
}
