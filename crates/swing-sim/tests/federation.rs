//! Federation-level invariants of the sharded parallel engine.
//!
//! The load-bearing property is **schedule determinism across thread
//! counts**: the windowed conservative engine must export a
//! byte-identical federated telemetry JSON whether it ran on one
//! worker thread or many, because window bounds derive only from
//! global state and cross-shard tuples are drained in fixed link
//! order. Everything else (conservation, gateway accounting, estimator
//! routing) rides on top of that schedule.

use swing_core::SECOND_US;
use swing_sim::federation::{Federation, FederationConfig};

fn small_config(seed: u64) -> FederationConfig {
    FederationConfig {
        swarms: 6,
        workers_per_swarm: 4,
        frames_per_source: 120,
        input_fps: 30.0,
        seed,
        gateway_fanout: 2,
        ..FederationConfig::default()
    }
}

#[test]
fn federated_run_is_byte_identical_across_thread_counts() {
    let mut exports = Vec::new();
    for threads in [1usize, 2, 4] {
        let mut cfg = small_config(42);
        cfg.threads = threads;
        let report = Federation::build(cfg).expect("federation builds").run();
        assert!(report.windows > 0);
        exports.push((threads, report));
    }
    let (_, ref base) = exports[0];
    for (threads, report) in &exports[1..] {
        assert_eq!(
            report.federated_json, base.federated_json,
            "federated telemetry diverged at {threads} threads"
        );
        // The whole schedule matched, not just the rollup: every
        // member status row, the window count, and gateway traffic.
        assert_eq!(report.swarms, base.swarms);
        assert_eq!(report.windows, base.windows);
        assert_eq!(report.routed, base.routed);
        assert_eq!(report.acked, base.acked);
    }
}

#[test]
fn every_member_conserves_and_gateways_flow() {
    let report = Federation::build(small_config(7))
        .expect("federation builds")
        .run();
    assert!(report.all_conserved(), "conservation violated: {report:?}");
    for s in &report.swarms {
        assert_eq!(s.sensed, 120, "member {} sensed {}", s.id, s.sensed);
        assert_eq!(s.lost, 0);
        assert!(s.epoch >= 1);
        assert_eq!(s.alive_workers, 4);
    }
    // Gateway overlay: egress was sampled, routed over links, and
    // consumed by peers. In-flight frames at the horizon may make
    // ingress lag routed, never exceed it.
    let egress = report.federated_counter("swing_gateway_egress_total");
    let ingress = report.federated_ingress();
    assert!(egress > 0, "no gateway egress sampled");
    assert!(report.routed > 0, "no egress routed over links");
    assert!(ingress > 0, "no gateway ingress consumed");
    assert!(
        ingress <= report.routed,
        "ingress {ingress} exceeds routed {}",
        report.routed
    );
    // Emitters heard ACKs back, so the federation-tier estimator is
    // measuring real round trips.
    assert!(report.acked > 0, "no federation-tier ACKs consumed");
}

#[test]
fn chaos_inside_members_keeps_federated_conservation() {
    // Crash an operator host in two members and partition one in a
    // third; the self-healing control planes recover independently
    // while the federation keeps exchanging gateway tuples.
    let mut exports = Vec::new();
    for threads in [1usize, 4] {
        let mut cfg = small_config(23);
        cfg.threads = threads;
        let mut fed = Federation::build(cfg).expect("federation builds");
        fed.swarm_mut(1).crash_worker_at("w2", 2 * SECOND_US);
        fed.swarm_mut(3).crash_worker_at("w1", 3 * SECOND_US);
        fed.swarm_mut(5)
            .partition_worker("w3", 2 * SECOND_US, 4 * SECOND_US);
        let report = fed.run();
        assert!(
            report.all_conserved(),
            "conservation violated under chaos: {report:?}"
        );
        // The crashed members healed: epoch advanced past the initial
        // deployment and one worker is gone from the roster.
        for &(id, expect_alive) in &[(1usize, 3usize), (3, 3)] {
            let s = &report.swarms[id];
            assert!(s.epoch > 1, "member {id} never re-deployed");
            assert_eq!(s.alive_workers, expect_alive);
        }
        // The federated identity is the sum of per-member identities.
        let fed_sensed = report.federated_counter("swing_source_sensed_total");
        let member_sensed: u64 = report.swarms.iter().map(|s| s.sensed).sum();
        assert_eq!(fed_sensed, member_sensed);
        exports.push(report.federated_json);
    }
    assert_eq!(
        exports[0], exports[1],
        "chaos schedule diverged across thread counts"
    );
}

#[test]
fn isolated_single_swarm_federation_still_runs() {
    let cfg = FederationConfig {
        swarms: 1,
        workers_per_swarm: 3,
        frames_per_source: 60,
        gateway_fanout: 2,
        ..FederationConfig::default()
    };
    let report = Federation::build(cfg).expect("federation builds").run();
    assert!(report.all_conserved());
    assert_eq!(report.routed, 0, "a lone swarm has no links to route on");
    assert_eq!(report.federated_ingress(), 0);
}
