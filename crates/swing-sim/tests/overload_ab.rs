//! Seeded A/B overload experiment on the real data plane under virtual
//! time: offered load Λ = 1.5 × Σ μ, where Σ μ is the aggregate service
//! rate of the operator replicas.
//!
//! * **Arm A (seed build)** — `FlowConfig::disabled()`: operator
//!   mailboxes grow without limit for the whole run and end-to-end p99
//!   latency grows with them.
//! * **Arm B (overload control)** — bounded `ShedOldest` mailboxes plus
//!   credit-based source admission: queue depth stays ≤ the configured
//!   capacity, p99 stays bounded, and the shed-accounting identity
//!   `sensed = (played + stale) + shed_at_source + shed_in_queue + lost`
//!   holds exactly (`stale` counts tuples delivered after sink playback
//!   had already passed their sequence number).
//!
//! Both arms are pure functions of the seed; the bounded arm is run
//! twice and its exported telemetry must be byte-identical.

use std::sync::atomic::{AtomicU64, Ordering};
use swing_runtime::prelude::*;
use swing_telemetry::names as n;
use swing_telemetry::to_json;

/// Each operator replica serves one tuple per 50 ms → μ = 20 tuples/s.
const SERVICE_US: u64 = 50_000;
/// Two operator replicas → Σ μ = 40/s; 60 FPS offered → Λ = 1.5 × Σ μ.
const INPUT_FPS: f64 = 60.0;
/// Virtual run length before the tail settles.
const RUN_US: u64 = 30 * SECOND_US;
/// Frames the source offers (60 FPS × 30 s).
const FRAMES: u64 = 1_800;
/// Mailbox capacity / credit window of the bounded arm.
const CAPACITY: usize = 12;

fn graph() -> AppGraph {
    let mut g = AppGraph::new("overload-ab");
    let s = g.add_source("src");
    let o = g.add_operator("work");
    let k = g.add_sink("out");
    g.connect(s, o).unwrap();
    g.connect(o, k).unwrap();
    g
}

fn registry() -> UnitRegistry {
    let mut r = UnitRegistry::new();
    r.register_source("src", || {
        let count = AtomicU64::new(0);
        closure_source(move |_now| {
            (count.fetch_add(1, Ordering::Relaxed) < FRAMES).then(|| Tuple::new().with("v", 1i64))
        })
    });
    r.register_operator("work", || PassThrough);
    r.register_sink("out", || closure_sink(|_, _| ()));
    r
}

struct Outcome {
    sensed: u64,
    played: u64,
    shed_at_source: u64,
    shed_in_queue: u64,
    /// Capture ticks skipped under `Block` back-pressure (never sensed,
    /// so outside the shed-accounting identity).
    paused: u64,
    /// Delivered to the sink but dropped because playback had already
    /// passed them — a terminal state, part of "delivered".
    stale: u64,
    lost: u64,
    /// Max operator mailbox depth observed at serve time.
    depth_max: u64,
    /// End-to-end p99 latency, microseconds.
    p99_us: u64,
    /// Full exported telemetry, for replay comparison.
    json: String,
}

fn run_arm(seed: u64, flow: FlowConfig) -> Outcome {
    let mut shared = SwarmConfig::with_policy(Policy::Lrs);
    shared.input_fps = INPUT_FPS;
    shared.flow = flow;
    // ACK deadlines far beyond any queueing delay in this scenario:
    // retransmissions would duplicate frames across the two operator
    // replicas and blur the one-terminal-state-per-frame accounting
    // this experiment asserts.
    shared.retry = RetryConfig {
        deadline_floor_us: 30 * SECOND_US,
        deadline_ceiling_us: 60 * SECOND_US,
        max_retries: 1,
        ..RetryConfig::default()
    };
    shared.telemetry = Telemetry::new();
    let telemetry = shared.telemetry.clone();
    let cfg = SimSwarmConfig {
        seed,
        service_us: SERVICE_US,
        ..SimSwarmConfig::from_swarm(&shared)
    };
    let mut swarm = SimSwarm::start(
        graph(),
        vec![
            ("A".into(), registry()),
            ("B".into(), registry()),
            ("C".into(), registry()),
        ],
        cfg,
    )
    .expect("sim swarm start");
    swarm.run_for(RUN_US);
    let reports = swarm.finish();
    let played_reported: u64 = reports.iter().map(|(_, r)| r.consumed).sum();
    let snap = telemetry.snapshot();
    let played = snap.counter_total(n::SINK_PLAYED);
    assert_eq!(
        played, played_reported,
        "sink meter and telemetry disagree on played frames"
    );
    Outcome {
        sensed: snap.counter_total(n::SOURCE_SENSED),
        played,
        shed_at_source: snap.counter_total(n::SOURCE_SHED),
        shed_in_queue: snap.counter_total(n::EXEC_SHED_IN_QUEUE),
        paused: snap.counter_total(n::SOURCE_PAUSED),
        stale: snap.counter_total(n::SINK_STALE),
        lost: snap.counter_total(n::EXEC_LOST),
        depth_max: snap.histogram_total(n::EXEC_MAILBOX_DEPTH).max,
        p99_us: snap.histogram_total(n::SINK_E2E_LATENCY_US).p99(),
        json: to_json(&snap),
    }
}

/// The headline A/B: under Λ = 1.5 × Σ μ the seed build's queues grow
/// for the whole run while the bounded build's stay at the capacity,
/// and p99 reflects the difference.
#[test]
fn bounded_build_keeps_queues_and_p99_bounded_where_seed_build_grows() {
    let baseline = run_arm(1207, FlowConfig::disabled());
    let bounded = run_arm(1207, FlowConfig::bounded(CAPACITY));

    // Seed build: every offered frame is admitted and queues balloon —
    // the backlog at 30 s is (Λ - Σμ) × 30 s = 600 frames across two
    // mailboxes, two orders of magnitude past the bounded capacity.
    assert_eq!(baseline.sensed, FRAMES);
    assert_eq!(baseline.shed_at_source, 0, "no gate in the seed build");
    assert_eq!(baseline.shed_in_queue, 0, "no bound in the seed build");
    assert!(
        baseline.depth_max >= 5 * CAPACITY as u64,
        "seed-build queues never grew: depth max {}",
        baseline.depth_max
    );
    assert!(
        baseline.p99_us > 4 * SECOND_US,
        "seed-build p99 {}us does not show the queueing collapse",
        baseline.p99_us
    );
    // Even without flow control every frame reaches a terminal state:
    // played, dropped stale at the sink, or lost by the executors.
    assert_eq!(
        baseline.sensed,
        baseline.played + baseline.stale + baseline.lost,
        "seed-build accounting hole: sensed {} != played {} + stale {} + lost {}",
        baseline.sensed,
        baseline.played,
        baseline.stale,
        baseline.lost,
    );

    // Overload control: depth ≤ capacity, p99 bounded by
    // capacity × service (+ reorder span), and frames are conserved.
    assert_eq!(bounded.sensed, FRAMES);
    assert!(
        bounded.depth_max <= CAPACITY as u64,
        "mailbox depth {} exceeded capacity {CAPACITY}",
        bounded.depth_max
    );
    assert!(
        bounded.p99_us < 3 * SECOND_US,
        "bounded p99 {}us is not bounded",
        bounded.p99_us
    );
    assert!(
        bounded.p99_us < baseline.p99_us / 2,
        "bounded p99 {}us not clearly below baseline {}us",
        bounded.p99_us,
        baseline.p99_us
    );
    assert!(
        bounded.shed_at_source > 0,
        "the credit gate never engaged under 1.5x overload"
    );
    assert_eq!(
        bounded.sensed,
        (bounded.played + bounded.stale)
            + bounded.shed_at_source
            + bounded.shed_in_queue
            + bounded.lost,
        "shed accounting identity violated: sensed {} != (played {} + stale {}) + shed_src {} + shed_q {} + lost {}",
        bounded.sensed,
        bounded.played,
        bounded.stale,
        bounded.shed_at_source,
        bounded.shed_in_queue,
        bounded.lost,
    );
    // Shedding kept goodput at the service rate, not below it: at
    // least ~Σμ × 30 s frames actually played.
    assert!(
        bounded.played >= 1_000,
        "only {} frames played — shedding ate goodput",
        bounded.played
    );
}

/// A credit window wider than the mailbox moves the shedding point
/// from the source to the receiving queue; the identity still closes
/// exactly.
#[test]
fn in_queue_shedding_conserves_frames_too() {
    let flow = FlowConfig {
        enabled: true,
        mailbox_capacity: 8,
        policy: OverloadPolicy::ShedOldest,
        credits_per_downstream: 24,
    };
    let out = run_arm(42, flow);
    assert_eq!(out.sensed, FRAMES);
    assert!(
        out.depth_max <= 8,
        "mailbox depth {} exceeded capacity 8",
        out.depth_max
    );
    assert!(
        out.shed_in_queue > 0,
        "wide credits over a narrow mailbox must shed in-queue"
    );
    assert_eq!(
        out.sensed,
        (out.played + out.stale) + out.shed_at_source + out.shed_in_queue + out.lost,
        "shed accounting identity violated: sensed {} != (played {} + stale {}) + shed_src {} + shed_q {} + lost {}",
        out.sensed,
        out.played,
        out.stale,
        out.shed_at_source,
        out.shed_in_queue,
        out.lost,
    );
}

/// `Block` pauses capture instead of shedding: nothing is shed anywhere,
/// paused ticks never sense (the frame budget drains later, once
/// credits free up), and everything sensed is eventually played.
#[test]
fn block_policy_pauses_the_source_instead_of_shedding() {
    let flow = FlowConfig {
        enabled: true,
        mailbox_capacity: CAPACITY,
        policy: OverloadPolicy::Block,
        credits_per_downstream: CAPACITY as u32,
    };
    let out = run_arm(7, flow);
    assert!(out.paused > 0, "back-pressure never paused the source");
    assert_eq!(out.shed_at_source, 0);
    assert_eq!(out.shed_in_queue, 0);
    assert_eq!(
        out.sensed,
        out.played + out.stale + out.lost,
        "Block arm lost frames outside the identity: sensed {} played {} stale {} lost {}",
        out.sensed,
        out.played,
        out.stale,
        out.lost
    );
}

/// The bounded arm is a pure function of its seed: the exported
/// telemetry of two identical runs is byte-identical.
#[test]
fn bounded_overload_run_replays_byte_identical() {
    let a = run_arm(99, FlowConfig::bounded(CAPACITY));
    let b = run_arm(99, FlowConfig::bounded(CAPACITY));
    assert_eq!(a.json, b.json, "same seed, different telemetry");
    let c = run_arm(100, FlowConfig::bounded(CAPACITY));
    assert_ne!(a.json, c.json, "different seed left no trace at all");
}
