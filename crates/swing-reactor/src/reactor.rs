//! The readiness loop: one thread multiplexing every live socket.
//!
//! `std::net` exposes no readiness API and the dependency policy
//! (DESIGN.md §7) rules out `libc`/`mio`/`tokio`, so the reactor is a
//! *sweep* loop: every registered socket is `O_NONBLOCK`, and each
//! iteration drains the command channel, accepts pending connections,
//! then try-writes / try-reads every connection until `WouldBlock`.
//! Between sweeps with no activity the loop parks on the command
//! channel with an adaptive backoff (sub-millisecond when recently
//! busy, capped low enough that dial/lookup latency stays bounded), so
//! an idle reactor costs little and a busy one polls at full rate.
//! This trades syscalls-per-sweep for zero dependencies — the seam to
//! upgrade to `epoll` later is exactly this module.
//!
//! Connections come in two flavours:
//!
//! * **dialed** ([`ReactorHandle::dial`]) — the caller gets a *bounded*
//!   `Sender<Message>`; the reactor moves messages from that outbox
//!   into the connection's write queue only while the queue is short,
//!   so a slow peer back-pressures producers through the channel bound
//!   (which is what the PR 5 credit gate ultimately leans on).
//! * **accepted** — inbound frames are decoded and delivered either to
//!   a plain inbox (`Delivery::Inbox`, the fabric path) or as
//!   [`ConnEvent`]s tagged with a [`ConnId`] (`Delivery::Service`, for
//!   services like the registry that reply on the same connection via
//!   [`ReactorHandle::send_to`]).

use crate::conn::{Drain, FramedConn, OutFrame};
use bytes::BytesMut;
use crossbeam::channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender};
use std::collections::HashMap;
use std::fmt;
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;
use swing_core::{Error, Result};
use swing_net::wire::WireSegment;
use swing_net::{Message, NetTimeouts};
use swing_telemetry::{names, Counter, Gauge, Telemetry};

/// Identifies one reactor-managed connection (stable for its lifetime,
/// never reused within a reactor).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ConnId(pub u64);

impl fmt::Display for ConnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "conn{}", self.0)
    }
}

/// Inbound event stream for `Delivery::Service` consumers.
#[derive(Debug, Clone)]
pub enum ConnEvent {
    /// A decoded message arrived on the given connection.
    Message(ConnId, Message),
    /// The connection closed (EOF, error, or deregistration). Sent at
    /// most once, after which the `ConnId` is dead.
    Closed(ConnId),
}

/// Where a listener delivers the frames its accepted connections
/// receive.
#[derive(Debug, Clone)]
pub enum Delivery {
    /// Decoded messages are forwarded to this sender, with no
    /// connection identity — the fabric inbox model, where all peers
    /// funnel into one queue.
    Inbox(Sender<Message>),
    /// Events tagged with the originating [`ConnId`], including a
    /// [`ConnEvent::Closed`] tombstone — for request/reply services.
    Service(Sender<ConnEvent>),
}

/// Reactor tuning.
#[derive(Debug, Clone)]
pub struct ReactorConfig {
    /// Capacity of each dialed connection's outbox channel (the
    /// back-pressure bound producers block on).
    pub outbox_capacity: usize,
    /// Write-queue length at which the reactor stops pulling from a
    /// connection's outbox (keeps per-conn memory bounded by
    /// `outbox_capacity + writer_queue_limit` frames).
    pub writer_queue_limit: usize,
    /// Idle-sweep park time cap. Small values cut command / readiness
    /// latency on an idle reactor at the cost of idle CPU.
    pub idle_backoff_max: Duration,
    /// Network timing (dial timeout is taken from here).
    pub timeouts: NetTimeouts,
}

impl Default for ReactorConfig {
    fn default() -> Self {
        ReactorConfig {
            outbox_capacity: 256,
            writer_queue_limit: 64,
            idle_backoff_max: Duration::from_millis(5),
            timeouts: NetTimeouts::default(),
        }
    }
}

enum Cmd {
    Listen(TcpListener, Delivery),
    Register {
        stream: TcpStream,
        outbox: Option<Receiver<Message>>,
        delivery: Option<Delivery>,
        reply: Sender<Result<ConnId>>,
    },
    SendTo(ConnId, Message),
    Close(ConnId),
    Shutdown,
}

/// Handle for registering work with a running [`Reactor`]. Cloneable;
/// the reactor thread exits when every handle is dropped or
/// [`shutdown`](Self::shutdown) is called.
#[derive(Clone)]
pub struct ReactorHandle {
    cmd: Sender<Cmd>,
    config: ReactorConfig,
    thread: Arc<Mutex<Option<JoinHandle<()>>>>,
}

impl fmt::Debug for ReactorHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ReactorHandle").finish_non_exhaustive()
    }
}

impl ReactorHandle {
    /// Bind a listener and deliver everything its accepted connections
    /// receive according to `delivery`. Returns the resolved address.
    pub fn listen<A: ToSocketAddrs>(&self, addr: A, delivery: Delivery) -> Result<String> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        self.send_cmd(Cmd::Listen(listener, delivery))?;
        Ok(local.to_string())
    }

    /// Dial a peer for writing. Returns a *bounded* sender; `send`
    /// blocks once `outbox_capacity` messages are queued, which is the
    /// transport's back-pressure signal. Dropping every clone of the
    /// sender closes the connection after the queue drains.
    pub fn dial(&self, addr: &str) -> Result<Sender<Message>> {
        self.dial_with_delivery(addr, None)
    }

    /// Dial a peer bidirectionally: like [`dial`](Self::dial), but
    /// frames the peer sends back are delivered too (request/reply
    /// clients such as the registry client).
    pub fn dial_bidi(&self, addr: &str, delivery: Delivery) -> Result<Sender<Message>> {
        self.dial_with_delivery(addr, Some(delivery))
    }

    fn dial_with_delivery(
        &self,
        addr: &str,
        delivery: Option<Delivery>,
    ) -> Result<Sender<Message>> {
        let sock_addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| Error::Malformed(format!("unresolvable address {addr}")))?;
        let stream = TcpStream::connect_timeout(&sock_addr, self.config.timeouts.connect)?;
        let (tx, rx) = bounded(self.config.outbox_capacity);
        self.register(stream, Some(rx), delivery)?;
        Ok(tx)
    }

    /// Hand an already-connected socket to the reactor.
    pub fn register(
        &self,
        stream: TcpStream,
        outbox: Option<Receiver<Message>>,
        delivery: Option<Delivery>,
    ) -> Result<ConnId> {
        let (reply_tx, reply_rx) = bounded(1);
        self.send_cmd(Cmd::Register {
            stream,
            outbox,
            delivery,
            reply: reply_tx,
        })?;
        reply_rx.recv().map_err(|_| Error::Closed)?
    }

    /// Queue a message for writing on an accepted connection (the
    /// reply path for `Delivery::Service` consumers). Fire-and-forget:
    /// unknown / already-closed connections are ignored.
    pub fn send_to(&self, conn: ConnId, msg: Message) -> Result<()> {
        self.send_cmd(Cmd::SendTo(conn, msg))
    }

    /// Close one connection (its `Delivery::Service` consumer, if any,
    /// receives a `Closed` tombstone).
    pub fn close(&self, conn: ConnId) -> Result<()> {
        self.send_cmd(Cmd::Close(conn))
    }

    /// Stop the reactor thread, dropping every connection.
    pub fn shutdown(&self) {
        let _ = self.cmd.send(Cmd::Shutdown);
        if let Some(h) = self.thread.lock().expect("reactor thread lock").take() {
            let _ = h.join();
        }
    }

    fn send_cmd(&self, cmd: Cmd) -> Result<()> {
        self.cmd.send(cmd).map_err(|_| Error::Closed)
    }
}

struct ConnState {
    conn: FramedConn,
    outbox: Option<Receiver<Message>>,
    delivery: Option<Delivery>,
    /// Outbox disconnected; close once the write queue drains.
    closing: bool,
}

struct Metrics {
    events: Counter,
    frames_sent: Counter,
    frames_received: Counter,
    conns_closed: Counter,
    open_conns: Gauge,
    writer_queue_depth: Gauge,
}

impl Metrics {
    fn new(telemetry: &Telemetry) -> Self {
        Metrics {
            events: telemetry.counter(names::REACTOR_EVENTS, &[]),
            frames_sent: telemetry.counter(names::REACTOR_FRAMES_SENT, &[]),
            frames_received: telemetry.counter(names::REACTOR_FRAMES_RECEIVED, &[]),
            conns_closed: telemetry.counter(names::REACTOR_CONNS_CLOSED, &[]),
            open_conns: telemetry.gauge(names::REACTOR_OPEN_CONNS, &[]),
            writer_queue_depth: telemetry.gauge(names::REACTOR_WRITER_QUEUE_DEPTH, &[]),
        }
    }
}

/// The sweep loop. Construct with [`Reactor::spawn`]; interact through
/// the returned [`ReactorHandle`].
#[derive(Debug)]
pub struct Reactor;

impl Reactor {
    /// Start a reactor thread. `telemetry`, when given, receives the
    /// `swing_reactor_*` metrics.
    #[must_use]
    pub fn spawn(config: ReactorConfig, telemetry: Option<&Telemetry>) -> ReactorHandle {
        let (cmd_tx, cmd_rx) = unbounded();
        let metrics = telemetry.map(Metrics::new);
        let cfg = config.clone();
        let handle = std::thread::Builder::new()
            .name("swing-reactor".into())
            .spawn(move || run(cfg, cmd_rx, metrics))
            .expect("spawn reactor thread");
        ReactorHandle {
            cmd: cmd_tx,
            config,
            thread: Arc::new(Mutex::new(Some(handle))),
        }
    }
}

fn run(config: ReactorConfig, cmd_rx: Receiver<Cmd>, metrics: Option<Metrics>) {
    let mut listeners: Vec<(TcpListener, Delivery)> = Vec::new();
    let mut conns: HashMap<u64, ConnState> = HashMap::new();
    let mut next_id: u64 = 0;
    let mut scratch = BytesMut::new();
    let mut segments: Vec<WireSegment> = Vec::new();
    let mut read_buf = vec![0u8; 64 * 1024];
    let mut frames: Vec<swing_core::SharedBytes> = Vec::new();
    let mut closed: Vec<u64> = Vec::new();
    let mut backoff = Duration::from_micros(500);
    let mut busy = true;

    loop {
        // 1. Commands. Park here when the previous sweep found nothing.
        let park = if busy { Duration::ZERO } else { backoff };
        match cmd_rx.recv_timeout(park) {
            Ok(cmd) => {
                if handle_cmd(
                    cmd,
                    &config,
                    &mut listeners,
                    &mut conns,
                    &mut next_id,
                    &mut scratch,
                    &mut segments,
                ) {
                    break;
                }
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => break,
        }
        let mut drained_all_cmds = false;
        while !drained_all_cmds {
            match cmd_rx.try_recv() {
                Ok(cmd) => {
                    if handle_cmd(
                        cmd,
                        &config,
                        &mut listeners,
                        &mut conns,
                        &mut next_id,
                        &mut scratch,
                        &mut segments,
                    ) {
                        return;
                    }
                }
                Err(_) => drained_all_cmds = true,
            }
        }

        let mut events: u64 = 0;

        // 2. Accept.
        for (listener, delivery) in &listeners {
            loop {
                match listener.accept() {
                    // A failed setup means the peer vanished between
                    // accept and fcntl; skip it.
                    Ok((stream, _)) => {
                        if let Ok(conn) = FramedConn::new(stream) {
                            let id = next_id;
                            next_id += 1;
                            conns.insert(
                                id,
                                ConnState {
                                    conn,
                                    outbox: None,
                                    delivery: Some(delivery.clone()),
                                    closing: false,
                                },
                            );
                            events += 1;
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(_) => break, // transient accept failure; retry next sweep
                }
            }
        }

        // 3. Per-connection sweep.
        closed.clear();
        let mut queued_total: u64 = 0;
        for (&id, state) in conns.iter_mut() {
            // 3a. Refill the write queue from the outbox while short.
            if let Some(outbox) = &state.outbox {
                while state.conn.queue_len() < config.writer_queue_limit {
                    match outbox.try_recv() {
                        Ok(msg) => {
                            state
                                .conn
                                .enqueue(OutFrame::encode(&msg, &mut scratch, &mut segments));
                            events += 1;
                        }
                        Err(crossbeam::channel::TryRecvError::Empty) => break,
                        Err(crossbeam::channel::TryRecvError::Disconnected) => {
                            state.closing = true;
                            state.outbox = None;
                            break;
                        }
                    }
                }
            }

            // 3b. Write.
            match state.conn.drain_write() {
                Ok((done, drain)) => {
                    if done > 0 {
                        events += done;
                        if let Some(m) = &metrics {
                            m.frames_sent.add(done);
                        }
                    }
                    if state.closing && drain == Drain::Idle && state.conn.queue_len() == 0 {
                        closed.push(id);
                        continue;
                    }
                }
                Err(_) => {
                    closed.push(id);
                    continue;
                }
            }

            // 3c. Read.
            frames.clear();
            let read_result = state.conn.drain_read(&mut read_buf, &mut frames);
            if !frames.is_empty() {
                events += frames.len() as u64;
                if let Some(m) = &metrics {
                    m.frames_received.add(frames.len() as u64);
                }
                for frame in frames.drain(..) {
                    let Ok(msg) = Message::decode_shared(&frame) else {
                        // Undecodable peer: drop the connection.
                        closed.push(id);
                        break;
                    };
                    let delivered = match &state.delivery {
                        Some(Delivery::Inbox(tx)) => tx.send(msg).is_ok(),
                        Some(Delivery::Service(tx)) => {
                            tx.send(ConnEvent::Message(ConnId(id), msg)).is_ok()
                        }
                        // Write-only connection: inbound frames have
                        // nowhere to go; ignore them.
                        None => true,
                    };
                    if !delivered {
                        closed.push(id);
                        break;
                    }
                }
            }
            match read_result {
                Ok(Drain::Eof) | Err(_) => closed.push(id),
                Ok(_) => {}
            }
            queued_total += state.conn.queue_len() as u64;
        }

        // 4. Reap closed connections.
        closed.sort_unstable();
        closed.dedup();
        for id in closed.drain(..) {
            if let Some(state) = conns.remove(&id) {
                if let Some(Delivery::Service(tx)) = &state.delivery {
                    let _ = tx.send(ConnEvent::Closed(ConnId(id)));
                }
                if let Some(m) = &metrics {
                    m.conns_closed.inc();
                }
                events += 1;
            }
        }

        if let Some(m) = &metrics {
            if events > 0 {
                m.events.add(events);
            }
            m.open_conns.set_u64(conns.len() as u64);
            m.writer_queue_depth.set_u64(queued_total);
        }

        // 5. Adaptive idle backoff.
        busy = events > 0;
        if busy {
            backoff = Duration::from_micros(500);
        } else {
            backoff = (backoff * 2).min(config.idle_backoff_max);
        }
    }
}

/// Apply one command. Returns `true` on shutdown.
fn handle_cmd(
    cmd: Cmd,
    _config: &ReactorConfig,
    listeners: &mut Vec<(TcpListener, Delivery)>,
    conns: &mut HashMap<u64, ConnState>,
    next_id: &mut u64,
    scratch: &mut BytesMut,
    segments: &mut Vec<WireSegment>,
) -> bool {
    match cmd {
        Cmd::Listen(listener, delivery) => {
            listeners.push((listener, delivery));
        }
        Cmd::Register {
            stream,
            outbox,
            delivery,
            reply,
        } => {
            let result = FramedConn::new(stream).map(|conn| {
                let id = *next_id;
                *next_id += 1;
                conns.insert(
                    id,
                    ConnState {
                        conn,
                        outbox,
                        delivery,
                        closing: false,
                    },
                );
                ConnId(id)
            });
            let _ = reply.send(result);
        }
        Cmd::SendTo(ConnId(id), msg) => {
            if let Some(state) = conns.get_mut(&id) {
                state
                    .conn
                    .enqueue(OutFrame::encode(&msg, scratch, segments));
            }
        }
        Cmd::Close(ConnId(id)) => {
            if let Some(state) = conns.remove(&id) {
                if let Some(Delivery::Service(tx)) = &state.delivery {
                    let _ = tx.send(ConnEvent::Closed(ConnId(id)));
                }
            }
        }
        Cmd::Shutdown => return true,
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use swing_core::{SeqNo, Tuple, UnitId};

    fn data(i: u64) -> Message {
        Message::Data {
            dest: UnitId(1),
            from: UnitId(0),
            tuple: Tuple::with_seq(SeqNo(i)).with("frame", vec![i as u8; 2_000]),
        }
    }

    #[test]
    fn dialed_messages_reach_inbox_listener() {
        let reactor = Reactor::spawn(ReactorConfig::default(), None);
        let (tx, rx) = unbounded();
        let addr = reactor.listen("127.0.0.1:0", Delivery::Inbox(tx)).unwrap();
        let out = reactor.dial(&addr).unwrap();
        for i in 0..100 {
            out.send(data(i)).unwrap();
        }
        for i in 0..100 {
            let msg = rx.recv_timeout(Duration::from_secs(5)).unwrap();
            assert_eq!(msg, data(i));
        }
        reactor.shutdown();
    }

    #[test]
    fn service_delivery_can_reply_on_the_same_conn() {
        let reactor = Reactor::spawn(ReactorConfig::default(), None);
        let (ev_tx, ev_rx) = unbounded();
        let addr = reactor
            .listen("127.0.0.1:0", Delivery::Service(ev_tx))
            .unwrap();
        // Echo service: one thread answering Ping with Pong.
        let svc_reactor = reactor.clone();
        let svc = std::thread::spawn(move || {
            while let Ok(ev) = ev_rx.recv_timeout(Duration::from_secs(5)) {
                match ev {
                    ConnEvent::Message(conn, Message::Ping) => {
                        svc_reactor
                            .send_to(
                                conn,
                                Message::Pong {
                                    device: swing_core::DeviceId(9),
                                },
                            )
                            .unwrap();
                    }
                    ConnEvent::Message(_, _) => {}
                    ConnEvent::Closed(_) => break,
                }
            }
        });
        let (reply_tx, reply_rx) = unbounded();
        let out = reactor.dial_bidi(&addr, Delivery::Inbox(reply_tx)).unwrap();
        out.send(Message::Ping).unwrap();
        let reply = reply_rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(
            reply,
            Message::Pong {
                device: swing_core::DeviceId(9)
            }
        );
        drop(out); // closes the conn; service sees Closed and exits
        svc.join().unwrap();
        reactor.shutdown();
    }

    #[test]
    fn bounded_outbox_applies_backpressure() {
        let config = ReactorConfig {
            outbox_capacity: 4,
            ..ReactorConfig::default()
        };
        let reactor = Reactor::spawn(config, None);
        let (tx, rx) = unbounded();
        let addr = reactor.listen("127.0.0.1:0", Delivery::Inbox(tx)).unwrap();
        let out = reactor.dial(&addr).unwrap();
        // The reactor keeps draining, so sends never deadlock; but the
        // channel is bounded, so at any instant at most
        // capacity + writer-queue messages are buffered.
        for i in 0..200 {
            out.send(data(i)).unwrap();
        }
        for i in 0..200 {
            let msg = rx.recv_timeout(Duration::from_secs(5)).unwrap();
            assert_eq!(msg, data(i), "order must be preserved");
        }
        reactor.shutdown();
    }

    #[test]
    fn many_concurrent_conns_multiplex_on_one_thread() {
        let reactor = Reactor::spawn(ReactorConfig::default(), None);
        let (tx, rx) = unbounded();
        let addr = reactor.listen("127.0.0.1:0", Delivery::Inbox(tx)).unwrap();
        let senders: Vec<_> = (0..50).map(|_| reactor.dial(&addr).unwrap()).collect();
        for (k, s) in senders.iter().enumerate() {
            for i in 0..20 {
                s.send(data((k * 100 + i) as u64)).unwrap();
            }
        }
        let mut got = Vec::new();
        for _ in 0..50 * 20 {
            let Message::Data { tuple, .. } = rx.recv_timeout(Duration::from_secs(10)).unwrap()
            else {
                panic!("unexpected variant");
            };
            got.push(tuple.seq().0);
        }
        got.sort_unstable();
        let want: Vec<u64> = (0..50)
            .flat_map(|k| (0..20).map(move |i| (k * 100 + i) as u64))
            .collect();
        assert_eq!(got, want);
        reactor.shutdown();
    }

    #[test]
    fn dropping_the_outbox_closes_the_conn_after_draining() {
        let reactor = Reactor::spawn(ReactorConfig::default(), None);
        let (ev_tx, ev_rx) = unbounded();
        let addr = reactor
            .listen("127.0.0.1:0", Delivery::Service(ev_tx))
            .unwrap();
        let out = reactor.dial(&addr).unwrap();
        out.send(Message::Ping).unwrap();
        drop(out);
        let mut saw_msg = false;
        let mut saw_close = false;
        while let Ok(ev) = ev_rx.recv_timeout(Duration::from_secs(5)) {
            match ev {
                ConnEvent::Message(_, Message::Ping) => saw_msg = true,
                ConnEvent::Closed(_) => {
                    saw_close = true;
                    break;
                }
                other => panic!("unexpected event {other:?}"),
            }
        }
        assert!(saw_msg, "queued message must drain before the close");
        assert!(saw_close, "service must see the Closed tombstone");
        reactor.shutdown();
    }
}
