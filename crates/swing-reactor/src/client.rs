//! Registry client and lease renewal.
//!
//! [`RegistryClient`] is a synchronous request/reply facade over one
//! reactor-managed bidirectional connection: register, heartbeat,
//! lookup, watch. Asynchronous `ServiceExpired` pushes that interleave
//! with replies are buffered and drained via
//! [`recv_expired`](RegistryClient::recv_expired).
//!
//! [`Heartbeater`] keeps any number of registrations alive from a
//! single thread and a single connection: every heartbeat interval it
//! renews all leases in one batched round trip, and a negative
//! acknowledgement (lease lapsed while the renewal was in flight, or
//! the registry restarted) triggers fault-resilient *re-registration*
//! rather than an error — a service stays discoverable through
//! registry hiccups without its owner doing anything.

use crate::reactor::{Delivery, ReactorHandle};
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use std::collections::VecDeque;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use swing_core::{Error, Result};
use swing_net::{Message, NetTimeouts, ServiceEntry};
use swing_telemetry::{names, Histogram, Telemetry};

/// Synchronous client for the registry service.
#[derive(Debug)]
pub struct RegistryClient {
    reactor: ReactorHandle,
    addr: String,
    out: Sender<Message>,
    inbox: Receiver<Message>,
    /// `ServiceExpired` pushes that arrived while awaiting a reply.
    expired: VecDeque<ServiceEntry>,
    timeouts: NetTimeouts,
    lookup_us: Option<Histogram>,
}

impl RegistryClient {
    /// Dial the registry at `addr` through `reactor`.
    pub fn connect(reactor: &ReactorHandle, addr: &str, timeouts: NetTimeouts) -> Result<Self> {
        let (tx, rx) = unbounded();
        let out = reactor.dial_bidi(addr, Delivery::Inbox(tx))?;
        Ok(RegistryClient {
            reactor: reactor.clone(),
            addr: addr.to_owned(),
            out,
            inbox: rx,
            expired: VecDeque::new(),
            timeouts,
            lookup_us: None,
        })
    }

    /// Record client-observed lookup round trips into `telemetry`.
    pub fn set_telemetry(&mut self, telemetry: &Telemetry) {
        self.lookup_us = Some(telemetry.histogram(names::REGISTRY_LOOKUP_US, &[]));
    }

    /// Drop and re-dial the connection (used by [`Heartbeater`] when
    /// the registry link fails). Pending expiry pushes are kept; any
    /// watch must be re-issued by the caller.
    pub fn reconnect(&mut self) -> Result<()> {
        let (tx, rx) = unbounded();
        self.out = self.reactor.dial_bidi(&self.addr, Delivery::Inbox(tx))?;
        self.inbox = rx;
        Ok(())
    }

    /// Register `entry` with the given lease TTL. `Ok(true)` means the
    /// lease is live.
    pub fn register(&mut self, entry: &ServiceEntry, ttl_ms: u64) -> Result<bool> {
        let reply = self.request(Message::RegisterService {
            app: entry.app.clone(),
            role: entry.role.clone(),
            stage: entry.stage.clone(),
            addr: entry.addr.clone(),
            ttl_ms,
        })?;
        match reply {
            Message::RegistryAck { registered } => Ok(registered),
            other => Err(unexpected(&other)),
        }
    }

    /// Renew `entry`'s lease. `Ok(false)` means the lease already
    /// expired and the caller must re-register.
    pub fn heartbeat(&mut self, entry: &ServiceEntry) -> Result<bool> {
        let reply = self.request(heartbeat_msg(entry))?;
        match reply {
            Message::RegistryAck { registered } => Ok(registered),
            other => Err(unexpected(&other)),
        }
    }

    /// Renew many leases in one batched round trip (all requests
    /// written before any reply is awaited — one reactor sweep carries
    /// the lot). Returns one liveness flag per entry, in order.
    pub fn heartbeat_all(&mut self, entries: &[ServiceEntry]) -> Result<Vec<bool>> {
        for entry in entries {
            self.out
                .send(heartbeat_msg(entry))
                .map_err(|_| Error::Closed)?;
        }
        let mut alive = Vec::with_capacity(entries.len());
        while alive.len() < entries.len() {
            match self.recv_reply()? {
                Message::RegistryAck { registered } => alive.push(registered),
                other => return Err(unexpected(&other)),
            }
        }
        Ok(alive)
    }

    /// Live services matching the pattern (empty strings = wildcards).
    pub fn lookup(&mut self, app: &str, role: &str, stage: &str) -> Result<Vec<ServiceEntry>> {
        let t0 = Instant::now();
        let reply = self.request(Message::LookupServices {
            app: app.to_owned(),
            role: role.to_owned(),
            stage: stage.to_owned(),
        })?;
        match reply {
            Message::ServicesFound { services } => {
                if let Some(h) = &self.lookup_us {
                    h.record_duration(t0.elapsed());
                }
                Ok(services)
            }
            other => Err(unexpected(&other)),
        }
    }

    /// Subscribe to expiry tombstones for the pattern; matching
    /// expirations then arrive via [`recv_expired`](Self::recv_expired).
    pub fn watch(&mut self, app: &str, role: &str, stage: &str) -> Result<()> {
        let reply = self.request(Message::WatchServices {
            app: app.to_owned(),
            role: role.to_owned(),
            stage: stage.to_owned(),
        })?;
        match reply {
            Message::RegistryAck { .. } => Ok(()),
            other => Err(unexpected(&other)),
        }
    }

    /// Next expiry tombstone, waiting up to `timeout`. Returns
    /// [`Error::WouldBlock`] when none arrived in time.
    pub fn recv_expired(&mut self, timeout: Duration) -> Result<ServiceEntry> {
        if let Some(e) = self.expired.pop_front() {
            return Ok(e);
        }
        let deadline = Instant::now() + timeout;
        loop {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return Err(Error::WouldBlock);
            }
            match self.inbox.recv_timeout(left) {
                Ok(Message::ServiceExpired {
                    app,
                    role,
                    stage,
                    addr,
                }) => {
                    return Ok(ServiceEntry {
                        app,
                        role,
                        stage,
                        addr,
                    })
                }
                Ok(_) => {} // stray reply with no request outstanding
                Err(RecvTimeoutError::Timeout) => return Err(Error::WouldBlock),
                Err(RecvTimeoutError::Disconnected) => return Err(Error::Closed),
            }
        }
    }

    fn request(&mut self, msg: Message) -> Result<Message> {
        self.out.send(msg).map_err(|_| Error::Closed)?;
        self.recv_reply()
    }

    /// Await the next *reply* (non-push) message, buffering expiry
    /// pushes that interleave. Bounded by the connect timeout — a
    /// registry that stays silent that long counts as gone.
    fn recv_reply(&mut self) -> Result<Message> {
        let deadline = Instant::now() + self.timeouts.connect;
        loop {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return Err(Error::DiscoveryTimeout);
            }
            match self.inbox.recv_timeout(left) {
                Ok(Message::ServiceExpired {
                    app,
                    role,
                    stage,
                    addr,
                }) => self.expired.push_back(ServiceEntry {
                    app,
                    role,
                    stage,
                    addr,
                }),
                Ok(msg) => return Ok(msg),
                Err(RecvTimeoutError::Timeout) => return Err(Error::DiscoveryTimeout),
                Err(RecvTimeoutError::Disconnected) => return Err(Error::Closed),
            }
        }
    }
}

fn heartbeat_msg(entry: &ServiceEntry) -> Message {
    Message::ServiceHeartbeat {
        app: entry.app.clone(),
        role: entry.role.clone(),
        stage: entry.stage.clone(),
        addr: entry.addr.clone(),
    }
}

#[cold]
fn unexpected(msg: &Message) -> Error {
    Error::Malformed(format!("unexpected registry reply: {msg:?}"))
}

/// Convenience: poll the registry until a service matching the pattern
/// appears or `timeout` elapses — the registry-era replacement for
/// `query_master`. Returns the first match.
pub fn await_service(
    reactor: &ReactorHandle,
    registry_addr: &str,
    app: &str,
    role: &str,
    timeout: Duration,
    timeouts: NetTimeouts,
) -> Result<ServiceEntry> {
    let mut client = RegistryClient::connect(reactor, registry_addr, timeouts)?;
    let deadline = Instant::now() + timeout;
    loop {
        if let Some(entry) = client.lookup(app, role, "")?.into_iter().next() {
            return Ok(entry);
        }
        if Instant::now() >= deadline {
            return Err(Error::DiscoveryTimeout);
        }
        std::thread::sleep(timeouts.read.min(Duration::from_millis(50)));
    }
}

enum HbCmd {
    Add(ServiceEntry, Sender<Result<bool>>),
    Remove(ServiceEntry),
    Stop,
}

/// One thread + one connection keeping any number of registrations
/// alive. Entries are registered on [`add`](Self::add) and renewed
/// every `heartbeat_interval`; lapsed or rejected leases are
/// re-registered automatically, and a broken registry link is re-dialed
/// with all entries re-registered once it heals.
#[derive(Debug)]
pub struct Heartbeater {
    cmd: Sender<HbCmd>,
    thread: Option<JoinHandle<()>>,
}

impl Heartbeater {
    /// Start a renewal thread against the registry at `registry_addr`.
    pub fn spawn(
        reactor: &ReactorHandle,
        registry_addr: &str,
        timeouts: NetTimeouts,
    ) -> Result<Self> {
        let mut client = RegistryClient::connect(reactor, registry_addr, timeouts)?;
        let (cmd_tx, cmd_rx) = unbounded::<HbCmd>();
        let interval = timeouts.heartbeat_interval;
        let ttl_ms = timeouts.ttl_ms();
        let thread = std::thread::Builder::new()
            .name("swing-heartbeat".into())
            .spawn(move || {
                let mut entries: Vec<ServiceEntry> = Vec::new();
                let mut next_beat = Instant::now() + interval;
                loop {
                    let wait = next_beat.saturating_duration_since(Instant::now());
                    match cmd_rx.recv_timeout(wait) {
                        Ok(HbCmd::Add(entry, reply)) => {
                            let ack = client.register(&entry, ttl_ms);
                            if ack.is_ok() {
                                entries.push(entry);
                            }
                            let _ = reply.send(ack);
                            continue;
                        }
                        Ok(HbCmd::Remove(entry)) => {
                            entries.retain(|e| *e != entry);
                            continue;
                        }
                        Ok(HbCmd::Stop) | Err(RecvTimeoutError::Disconnected) => break,
                        Err(RecvTimeoutError::Timeout) => {}
                    }
                    next_beat = Instant::now() + interval;
                    if entries.is_empty() {
                        continue;
                    }
                    match client.heartbeat_all(&entries) {
                        Ok(alive) => {
                            // Lapsed leases (registry missed our renewals,
                            // or it restarted): re-register instead of
                            // giving up.
                            for (entry, live) in entries.iter().zip(alive) {
                                if !live {
                                    let _ = client.register(entry, ttl_ms);
                                }
                            }
                        }
                        Err(_) => {
                            // Broken link: re-dial and re-register the
                            // world. Failures retry next interval.
                            if client.reconnect().is_ok() {
                                for entry in &entries {
                                    let _ = client.register(entry, ttl_ms);
                                }
                            }
                        }
                    }
                }
            })
            .expect("spawn heartbeat thread");
        Ok(Heartbeater {
            cmd: cmd_tx,
            thread: Some(thread),
        })
    }

    /// Register `entry` and keep it renewed. Blocks until the initial
    /// registration is acknowledged.
    pub fn add(&self, entry: ServiceEntry) -> Result<bool> {
        let (tx, rx) = crossbeam::channel::bounded(1);
        self.cmd
            .send(HbCmd::Add(entry, tx))
            .map_err(|_| Error::Closed)?;
        rx.recv().map_err(|_| Error::Closed)?
    }

    /// Stop renewing `entry`; its lease will lapse one TTL later (the
    /// registry tombstones it, which is how watchers learn of planned
    /// departures too).
    pub fn remove(&self, entry: ServiceEntry) {
        let _ = self.cmd.send(HbCmd::Remove(entry));
    }

    /// Stop the renewal thread (also done on drop). Leases lapse
    /// naturally afterwards.
    pub fn stop(&mut self) {
        let _ = self.cmd.send(HbCmd::Stop);
        if let Some(h) = self.thread.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Heartbeater {
    fn drop(&mut self) {
        self.stop();
    }
}
