//! # swing-reactor
//!
//! First-party non-blocking networked runtime for Swing: a
//! single-threaded readiness loop ([`Reactor`]) multiplexing hundreds
//! of framed TCP connections, and a registry service
//! ([`RegistryServer`]) replacing UDP probe discovery with TTL'd
//! registrations, heartbeat renewal, pattern lookup, and
//! tombstone-on-expiry watch events.
//!
//! Per the workspace dependency policy (DESIGN.md §7) this is built on
//! `std::net` only — no tokio, no mio, no libc. Sockets are switched to
//! non-blocking mode and the reactor *sweeps* them level-triggered
//! style, parking on its command channel with adaptive backoff when
//! idle; see [`reactor`] for the model and the epoll upgrade seam.
//!
//! Layering:
//!
//! - [`conn`]: one non-blocking connection — partial reads reassembled
//!   through `swing-net`'s [`FrameAssembler`](swing_net::FrameAssembler),
//!   short writes drained from the zero-copy `encode_segments` chunks.
//! - [`reactor`]: the sweep loop, registration/dial/wakeup API, bounded
//!   outboxes feeding transport backpressure into the PR 5 credit gate.
//! - [`registry`]: lease table + server loop for service discovery.
//! - [`client`]: synchronous registry client and the shared
//!   [`Heartbeater`] renewal thread.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod client;
pub mod conn;
pub mod reactor;
pub mod registry;

pub use client::{await_service, Heartbeater, RegistryClient};
pub use conn::{Drain, FramedConn, OutFrame};
pub use reactor::{ConnEvent, ConnId, Delivery, Reactor, ReactorConfig, ReactorHandle};
pub use registry::{Pattern, RegistryCore, RegistryServer};
