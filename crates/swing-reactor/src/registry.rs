//! The registry service: TTL'd service registrations, pattern lookup,
//! and expiry tombstones.
//!
//! Replaces UDP probe discovery with the model the related frameworks
//! motivate: services register under (app, role, stage) patterns
//! (SwarMS-style discovery decoupled from fixed infrastructure) and
//! keep their registration alive with heartbeats; a lease that is not
//! renewed within its TTL expires and is *tombstoned* — every watcher
//! whose pattern matches receives a `ServiceExpired` push, which is
//! what drives the master's eviction/reconcile flow (CROWDio-style
//! liveness under churn).
//!
//! [`RegistryCore`] is the pure state machine (millisecond timestamps
//! injected by the caller, deterministic iteration order);
//! [`RegistryServer`] hosts it on a reactor listener.

use crate::reactor::{ConnEvent, ConnId, Delivery, ReactorHandle};
use crossbeam::channel::{unbounded, RecvTimeoutError};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use swing_core::Result;
use swing_net::{Message, NetTimeouts, ServiceEntry};
use swing_telemetry::{names, Telemetry};

/// A lookup/watch pattern over (app, role, stage); empty strings are
/// wildcards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pattern {
    /// Application pattern (empty = any).
    pub app: String,
    /// Role pattern (empty = any).
    pub role: String,
    /// Stage pattern (empty = any).
    pub stage: String,
}

impl Pattern {
    /// Build a pattern; empty components match anything.
    #[must_use]
    pub fn new(app: &str, role: &str, stage: &str) -> Self {
        Pattern {
            app: app.to_owned(),
            role: role.to_owned(),
            stage: stage.to_owned(),
        }
    }

    /// Whether `entry` matches this pattern.
    #[must_use]
    pub fn matches(&self, entry: &ServiceEntry) -> bool {
        (self.app.is_empty() || self.app == entry.app)
            && (self.role.is_empty() || self.role == entry.role)
            && (self.stage.is_empty() || self.stage == entry.stage)
    }
}

#[derive(Debug, Clone, Copy)]
struct Lease {
    expires_at_ms: u64,
    ttl_ms: u64,
}

type Key = (String, String, String, String);

fn key(entry: &ServiceEntry) -> Key {
    (
        entry.app.clone(),
        entry.role.clone(),
        entry.stage.clone(),
        entry.addr.clone(),
    )
}

fn entry_of(k: &Key) -> ServiceEntry {
    ServiceEntry {
        app: k.0.clone(),
        role: k.1.clone(),
        stage: k.2.clone(),
        addr: k.3.clone(),
    }
}

/// The registry's pure state machine. All methods take the current time
/// as injected milliseconds, so unit tests control the clock exactly;
/// the lease table is a `BTreeMap`, so lookup results and expiry order
/// are deterministic.
#[derive(Debug, Default)]
pub struct RegistryCore {
    leases: BTreeMap<Key, Lease>,
    watchers: HashMap<ConnId, Vec<Pattern>>,
}

impl RegistryCore {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        RegistryCore::default()
    }

    /// Register (or refresh) a lease. Returns `true` when the entry is
    /// new, `false` when it renewed an existing registration.
    pub fn register(&mut self, entry: &ServiceEntry, ttl_ms: u64, now_ms: u64) -> bool {
        self.leases
            .insert(
                key(entry),
                Lease {
                    expires_at_ms: now_ms.saturating_add(ttl_ms),
                    ttl_ms,
                },
            )
            .is_none()
    }

    /// Renew a lease. Returns `false` when the lease does not exist
    /// (never registered, or already expired) — the caller must
    /// re-register.
    pub fn heartbeat(&mut self, entry: &ServiceEntry, now_ms: u64) -> bool {
        match self.leases.get_mut(&key(entry)) {
            Some(lease) => {
                lease.expires_at_ms = now_ms.saturating_add(lease.ttl_ms);
                true
            }
            None => false,
        }
    }

    /// Live entries matching `pattern`, in deterministic (sorted) order.
    #[must_use]
    pub fn lookup(&self, pattern: &Pattern) -> Vec<ServiceEntry> {
        self.leases
            .keys()
            .map(entry_of)
            .filter(|e| pattern.matches(e))
            .collect()
    }

    /// Subscribe `watcher` to expiry tombstones for `pattern`.
    pub fn watch(&mut self, watcher: ConnId, pattern: Pattern) {
        self.watchers.entry(watcher).or_default().push(pattern);
    }

    /// Drop every subscription held by `watcher` (its connection
    /// closed).
    pub fn drop_watcher(&mut self, watcher: ConnId) {
        self.watchers.remove(&watcher);
    }

    /// Remove every lease that lapsed at or before `now_ms`, returning
    /// the expired entries in deterministic order.
    pub fn expire(&mut self, now_ms: u64) -> Vec<ServiceEntry> {
        let dead: Vec<Key> = self
            .leases
            .iter()
            .filter(|(_, lease)| lease.expires_at_ms <= now_ms)
            .map(|(k, _)| k.clone())
            .collect();
        for k in &dead {
            self.leases.remove(k);
        }
        dead.iter().map(entry_of).collect()
    }

    /// Watchers whose patterns match `entry`, in sorted order.
    #[must_use]
    pub fn watchers_matching(&self, entry: &ServiceEntry) -> Vec<ConnId> {
        let mut out: Vec<ConnId> = self
            .watchers
            .iter()
            .filter(|(_, pats)| pats.iter().any(|p| p.matches(entry)))
            .map(|(&id, _)| id)
            .collect();
        out.sort_unstable();
        out
    }

    /// Number of live leases.
    #[must_use]
    pub fn len(&self) -> usize {
        self.leases.len()
    }

    /// Whether the registry holds no leases.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.leases.is_empty()
    }
}

/// A [`RegistryCore`] hosted on a reactor listener: one service thread
/// applying register/heartbeat/lookup/watch requests and sweeping
/// expirations.
#[derive(Debug)]
pub struct RegistryServer {
    addr: String,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl RegistryServer {
    /// Bind the registry on `bind` (use port 0 for ephemeral) and start
    /// serving. The expiry sweep runs at half the configured heartbeat
    /// interval, so a lapsed lease is tombstoned at most
    /// `heartbeat_interval / 2` late.
    pub fn spawn(
        reactor: &ReactorHandle,
        bind: &str,
        timeouts: NetTimeouts,
        telemetry: Option<&Telemetry>,
    ) -> Result<Self> {
        let (ev_tx, ev_rx) = unbounded();
        let addr = reactor.listen(bind, Delivery::Service(ev_tx))?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = reactor.clone();
        let metrics = telemetry.map(|t| ServerMetrics {
            size: t.gauge(names::REGISTRY_SIZE, &[]),
            registered: t.counter(names::REGISTRY_REGISTERED, &[]),
            heartbeats: t.counter(names::REGISTRY_HEARTBEATS, &[]),
            expired: t.counter(names::REGISTRY_EXPIRED, &[]),
            lookups: t.counter(names::REGISTRY_LOOKUPS, &[]),
        });
        let sweep = (timeouts.heartbeat_interval / 2).max(Duration::from_millis(10));
        let thread = std::thread::Builder::new()
            .name("swing-registry".into())
            .spawn(move || {
                let mut core = RegistryCore::new();
                let start = Instant::now();
                let now_ms = |start: Instant| start.elapsed().as_millis() as u64;
                while !stop2.load(Ordering::Relaxed) {
                    match ev_rx.recv_timeout(sweep) {
                        Ok(ConnEvent::Message(conn, msg)) => {
                            serve(&handle, &mut core, conn, msg, now_ms(start), &metrics);
                        }
                        Ok(ConnEvent::Closed(conn)) => core.drop_watcher(conn),
                        Err(RecvTimeoutError::Timeout) => {}
                        Err(RecvTimeoutError::Disconnected) => break,
                    }
                    // Expiry sweep: tombstone lapsed leases toward
                    // every matching watcher.
                    for entry in core.expire(now_ms(start)) {
                        if let Some(m) = &metrics {
                            m.expired.inc();
                        }
                        for watcher in core.watchers_matching(&entry) {
                            let _ = handle.send_to(
                                watcher,
                                Message::ServiceExpired {
                                    app: entry.app.clone(),
                                    role: entry.role.clone(),
                                    stage: entry.stage.clone(),
                                    addr: entry.addr.clone(),
                                },
                            );
                        }
                    }
                    if let Some(m) = &metrics {
                        m.size.set_u64(core.len() as u64);
                    }
                }
            })
            .expect("spawn registry thread");
        Ok(RegistryServer {
            addr,
            stop,
            thread: Some(thread),
        })
    }

    /// The registry's dialable address.
    #[must_use]
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Stop the service thread (also done on drop). The listener stays
    /// with the reactor; clients see dead connections.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.thread.take() {
            let _ = h.join();
        }
    }
}

impl Drop for RegistryServer {
    fn drop(&mut self) {
        self.stop();
    }
}

struct ServerMetrics {
    size: swing_telemetry::Gauge,
    registered: swing_telemetry::Counter,
    heartbeats: swing_telemetry::Counter,
    expired: swing_telemetry::Counter,
    lookups: swing_telemetry::Counter,
}

fn serve(
    handle: &ReactorHandle,
    core: &mut RegistryCore,
    conn: ConnId,
    msg: Message,
    now_ms: u64,
    metrics: &Option<ServerMetrics>,
) {
    match msg {
        Message::RegisterService {
            app,
            role,
            stage,
            addr,
            ttl_ms,
        } => {
            let entry = ServiceEntry {
                app,
                role,
                stage,
                addr,
            };
            let fresh = core.register(&entry, ttl_ms, now_ms);
            if fresh {
                if let Some(m) = metrics {
                    m.registered.inc();
                }
            }
            let _ = handle.send_to(conn, Message::RegistryAck { registered: true });
        }
        Message::ServiceHeartbeat {
            app,
            role,
            stage,
            addr,
        } => {
            let entry = ServiceEntry {
                app,
                role,
                stage,
                addr,
            };
            let live = core.heartbeat(&entry, now_ms);
            if live {
                if let Some(m) = metrics {
                    m.heartbeats.inc();
                }
            }
            let _ = handle.send_to(conn, Message::RegistryAck { registered: live });
        }
        Message::LookupServices { app, role, stage } => {
            if let Some(m) = metrics {
                m.lookups.inc();
            }
            let services = core.lookup(&Pattern { app, role, stage });
            let _ = handle.send_to(conn, Message::ServicesFound { services });
        }
        Message::WatchServices { app, role, stage } => {
            core.watch(conn, Pattern { app, role, stage });
            let _ = handle.send_to(conn, Message::RegistryAck { registered: true });
        }
        // Anything else on the registry port is a confused peer; ignore.
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(app: &str, role: &str, stage: &str, addr: &str) -> ServiceEntry {
        ServiceEntry {
            app: app.into(),
            role: role.into(),
            stage: stage.into(),
            addr: addr.into(),
        }
    }

    #[test]
    fn register_lookup_expire_lifecycle() {
        let mut core = RegistryCore::new();
        let master = entry("face", "master", "", "127.0.0.1:5000");
        let w1 = entry("face", "worker", "detect", "127.0.0.1:5001");
        let w2 = entry("face", "worker", "encode", "127.0.0.1:5002");
        assert!(core.register(&master, 1_000, 0));
        assert!(core.register(&w1, 1_000, 0));
        assert!(core.register(&w2, 1_000, 500));
        assert_eq!(core.len(), 3);

        // Pattern lookup: all workers of `face`.
        let workers = core.lookup(&Pattern::new("face", "worker", ""));
        assert_eq!(workers, vec![w1.clone(), w2.clone()]);
        // Wildcard app.
        assert_eq!(core.lookup(&Pattern::new("", "", "")).len(), 3);
        // Stage-qualified.
        assert_eq!(
            core.lookup(&Pattern::new("face", "worker", "encode")),
            vec![w2.clone()]
        );

        // w1 heartbeats at 900; master and w2 do not.
        assert!(core.heartbeat(&w1, 900));
        // At 1100: master (expires 1000) lapses; w1 renewed to 1900;
        // w2 expires at 1500.
        let dead = core.expire(1_100);
        assert_eq!(dead, vec![master.clone()]);
        assert_eq!(core.len(), 2);
        let dead = core.expire(1_600);
        assert_eq!(dead, vec![w2.clone()]);
        // Heartbeat after expiry: caller must re-register.
        assert!(!core.heartbeat(&w2, 1_700));
        assert!(core.register(&w2, 1_000, 1_700));
        assert!(core.heartbeat(&w2, 1_800));
    }

    #[test]
    fn re_register_refreshes_not_duplicates() {
        let mut core = RegistryCore::new();
        let e = entry("app", "worker", "", "127.0.0.1:1");
        assert!(core.register(&e, 100, 0));
        assert!(!core.register(&e, 100, 50));
        assert_eq!(core.len(), 1);
        // Refreshed lease survives past the original expiry.
        assert!(core.expire(120).is_empty());
        assert_eq!(core.expire(150), vec![e]);
    }

    #[test]
    fn watchers_match_by_pattern_and_drop_with_conn() {
        let mut core = RegistryCore::new();
        core.watch(ConnId(1), Pattern::new("face", "worker", ""));
        core.watch(ConnId(2), Pattern::new("", "", ""));
        core.watch(ConnId(3), Pattern::new("voice", "", ""));
        let w = entry("face", "worker", "detect", "127.0.0.1:5001");
        assert_eq!(core.watchers_matching(&w), vec![ConnId(1), ConnId(2)]);
        let m = entry("voice", "master", "", "127.0.0.1:6000");
        assert_eq!(core.watchers_matching(&m), vec![ConnId(2), ConnId(3)]);
        core.drop_watcher(ConnId(2));
        assert_eq!(core.watchers_matching(&w), vec![ConnId(1)]);
    }

    #[test]
    fn expiry_is_deterministic_order() {
        let mut core = RegistryCore::new();
        for port in [5, 3, 9, 1] {
            core.register(
                &entry("app", "worker", "", &format!("127.0.0.1:{port}")),
                100,
                0,
            );
        }
        let dead = core.expire(200);
        let addrs: Vec<&str> = dead.iter().map(|e| e.addr.as_str()).collect();
        assert_eq!(
            addrs,
            vec!["127.0.0.1:1", "127.0.0.1:3", "127.0.0.1:5", "127.0.0.1:9"]
        );
    }
}
