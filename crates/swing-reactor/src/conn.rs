//! Non-blocking framed connection state.
//!
//! A [`FramedConn`] owns one `O_NONBLOCK` socket plus the two state
//! machines a readiness loop needs around it:
//!
//! * **reads** — whatever bytes the kernel has are fed into the shared
//!   [`FrameAssembler`], which re-slices the torn byte stream back into
//!   frames for `Message::decode_shared`;
//! * **writes** — each outbound message is encoded once through the
//!   zero-copy `encode_segments` path into an [`OutFrame`] (scratch
//!   chunks copied, bulk payloads borrowed), then drained through the
//!   socket across as many short writes as it takes, resuming at the
//!   exact chunk/byte offset where the previous sweep hit `WouldBlock`.

use bytes::BytesMut;
use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use swing_core::{Result, SharedBytes};
use swing_net::frame::MAX_FRAME;
use swing_net::wire::WireSegment;
use swing_net::{FrameAssembler, Message};

/// One chunk of an outbound frame: either bytes owned by the frame
/// (length prefix + control fields, copied once at encode time) or a
/// bulk payload borrowed from the tuple's shared buffer (never copied).
#[derive(Debug)]
enum OutChunk {
    Owned(Vec<u8>),
    Shared(SharedBytes),
}

impl OutChunk {
    fn as_slice(&self) -> &[u8] {
        match self {
            OutChunk::Owned(v) => v,
            OutChunk::Shared(b) => b.as_slice(),
        }
    }
}

/// An encoded frame queued for writing, with a resume cursor for short
/// writes.
#[derive(Debug)]
pub struct OutFrame {
    chunks: Vec<OutChunk>,
    /// Index of the chunk currently being written.
    chunk: usize,
    /// Bytes of that chunk already written.
    offset: usize,
}

impl OutFrame {
    /// Encode `msg` for transmission. Small segments (length prefix,
    /// control fields) are gathered into one owned chunk; payloads that
    /// `encode_segments` emits as shared references stay zero-copy.
    ///
    /// `scratch`/`segments` are caller-owned scratch space reused
    /// across encodes (cleared here).
    pub fn encode(msg: &Message, scratch: &mut BytesMut, segments: &mut Vec<WireSegment>) -> Self {
        scratch.clear();
        segments.clear();
        msg.encode_segments(scratch, segments);
        let total: usize = segments.iter().map(WireSegment::len).sum();
        debug_assert!(total <= MAX_FRAME, "oversized frame reached the reactor");
        let mut chunks = Vec::with_capacity(1 + segments.len());
        let mut owned = Vec::with_capacity(4 + scratch.len());
        owned.extend_from_slice(&(total as u32).to_be_bytes());
        for seg in segments.iter() {
            match seg {
                WireSegment::Scratch(r) => owned.extend_from_slice(&scratch[r.clone()]),
                WireSegment::Shared(b) => {
                    if !owned.is_empty() {
                        chunks.push(OutChunk::Owned(std::mem::take(&mut owned)));
                    }
                    chunks.push(OutChunk::Shared(b.clone()));
                }
            }
        }
        if !owned.is_empty() {
            chunks.push(OutChunk::Owned(owned));
        }
        OutFrame {
            chunks,
            chunk: 0,
            offset: 0,
        }
    }

    /// Total bytes this frame puts on the wire (prefix included).
    #[must_use]
    pub fn wire_len(&self) -> usize {
        self.chunks.iter().map(|c| c.as_slice().len()).sum()
    }

    fn is_done(&self) -> bool {
        self.chunk >= self.chunks.len()
    }
}

/// Outcome of one drain pass over a connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Drain {
    /// The socket stopped us (`WouldBlock`); state saved for resume.
    Blocked,
    /// Nothing left to do (queue empty / no more buffered bytes).
    Idle,
    /// The peer closed the connection (read side only).
    Eof,
}

/// A non-blocking socket with framed read/write state machines.
#[derive(Debug)]
pub struct FramedConn {
    stream: TcpStream,
    assembler: FrameAssembler,
    outq: VecDeque<OutFrame>,
    /// Wire bytes queued but not yet written (cheap gauge feed).
    queued_bytes: usize,
}

impl FramedConn {
    /// Take ownership of a connected socket, switching it to
    /// non-blocking mode with Nagle disabled.
    pub fn new(stream: TcpStream) -> Result<Self> {
        stream.set_nonblocking(true)?;
        stream.set_nodelay(true)?;
        Ok(FramedConn {
            stream,
            assembler: FrameAssembler::new(),
            outq: VecDeque::new(),
            queued_bytes: 0,
        })
    }

    /// The underlying socket (for peer-addr labels and shutdown).
    #[must_use]
    pub fn stream(&self) -> &TcpStream {
        &self.stream
    }

    /// Frames queued for writing.
    #[must_use]
    pub fn queue_len(&self) -> usize {
        self.outq.len()
    }

    /// Wire bytes queued for writing.
    #[must_use]
    pub fn queued_bytes(&self) -> usize {
        self.queued_bytes
    }

    /// Queue an encoded frame for writing.
    pub fn enqueue(&mut self, frame: OutFrame) {
        self.queued_bytes += frame.wire_len();
        self.outq.push_back(frame);
    }

    /// Write queued frames until the socket blocks or the queue drains.
    /// Returns the number of complete frames written plus the stop
    /// reason. IO errors other than `WouldBlock`/`Interrupted` are
    /// fatal for the connection.
    pub fn drain_write(&mut self) -> Result<(u64, Drain)> {
        let mut frames_done = 0u64;
        loop {
            let Some(front) = self.outq.front_mut() else {
                return Ok((frames_done, Drain::Idle));
            };
            while !front.is_done() {
                let slice = &front.chunks[front.chunk].as_slice()[front.offset..];
                if slice.is_empty() {
                    front.chunk += 1;
                    front.offset = 0;
                    continue;
                }
                match self.stream.write(slice) {
                    Ok(0) => {
                        return Err(swing_core::Error::io(std::io::Error::new(
                            ErrorKind::WriteZero,
                            "socket accepted zero bytes",
                        )))
                    }
                    Ok(n) => {
                        front.offset += n;
                        self.queued_bytes -= n;
                        if front.offset == front.chunks[front.chunk].as_slice().len() {
                            front.chunk += 1;
                            front.offset = 0;
                        }
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => {
                        return Ok((frames_done, Drain::Blocked));
                    }
                    Err(e) if e.kind() == ErrorKind::Interrupted => {}
                    Err(e) => return Err(e.into()),
                }
            }
            self.outq.pop_front();
            frames_done += 1;
        }
    }

    /// Read whatever the kernel has buffered, pushing every completed
    /// frame into `frames`. Returns the stop reason; `Eof` means the
    /// peer closed (clean only if the assembler sits at a frame
    /// boundary — the caller decides how to report it).
    pub fn drain_read(&mut self, buf: &mut [u8], frames: &mut Vec<SharedBytes>) -> Result<Drain> {
        loop {
            match self.stream.read(buf) {
                Ok(0) => return Ok(Drain::Eof),
                Ok(n) => {
                    self.assembler.feed(&buf[..n]);
                    while let Some(frame) = self.assembler.next_frame()? {
                        frames.push(frame);
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return Ok(Drain::Blocked),
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(e.into()),
            }
        }
    }

    /// Whether the read stream currently sits on a frame boundary
    /// (distinguishes clean EOF from truncation).
    #[must_use]
    pub fn at_frame_boundary(&self) -> bool {
        self.assembler.is_at_boundary()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;
    use swing_core::{SeqNo, Tuple, UnitId};

    fn pipe() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let a = TcpStream::connect(addr).unwrap();
        let (b, _) = listener.accept().unwrap();
        (a, b)
    }

    fn encode(msg: &Message) -> OutFrame {
        let mut scratch = BytesMut::new();
        let mut segs = Vec::new();
        OutFrame::encode(msg, &mut scratch, &mut segs)
    }

    #[test]
    fn out_frame_concatenates_prefix_plus_encode() {
        let msg = Message::Data {
            dest: UnitId(1),
            from: UnitId(2),
            tuple: Tuple::with_seq(SeqNo(3)).with("frame", vec![7u8; 6_000]),
        };
        let frame = encode(&msg);
        let mut flat = Vec::new();
        for c in &frame.chunks {
            flat.extend_from_slice(c.as_slice());
        }
        let encoded = msg.encode();
        assert_eq!(&flat[..4], &(encoded.len() as u32).to_be_bytes());
        assert_eq!(&flat[4..], &encoded[..]);
        assert_eq!(frame.wire_len(), flat.len());
        // The 6 kB payload must ride as a borrowed shared chunk.
        assert!(frame
            .chunks
            .iter()
            .any(|c| matches!(c, OutChunk::Shared(_))));
    }

    #[test]
    fn frames_flow_through_nonblocking_pair() {
        let (a, b) = pipe();
        let mut tx = FramedConn::new(a).unwrap();
        let mut rx = FramedConn::new(b).unwrap();
        let msgs: Vec<Message> = (0..50u64)
            .map(|i| Message::Data {
                dest: UnitId(1),
                from: UnitId(0),
                tuple: Tuple::with_seq(SeqNo(i)).with("frame", vec![i as u8; 3_000]),
            })
            .collect();
        for m in &msgs {
            tx.enqueue(encode(m));
        }
        let mut buf = vec![0u8; 64 * 1024];
        let mut frames = Vec::new();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while frames.len() < msgs.len() {
            assert!(std::time::Instant::now() < deadline, "drain timed out");
            let _ = tx.drain_write().unwrap();
            let _ = rx.drain_read(&mut buf, &mut frames).unwrap();
        }
        assert_eq!(tx.queue_len(), 0);
        assert_eq!(tx.queued_bytes(), 0);
        let decoded: Vec<Message> = frames
            .iter()
            .map(|f| Message::decode_shared(f).unwrap())
            .collect();
        assert_eq!(decoded, msgs);
        assert!(rx.at_frame_boundary());
    }

    #[test]
    fn write_resumes_across_would_block() {
        let (a, b) = pipe();
        let mut tx = FramedConn::new(a).unwrap();
        let mut rx = FramedConn::new(b).unwrap();
        // A frame far larger than the socket buffers: the first drain
        // must hit WouldBlock with the cursor mid-frame.
        let msg = Message::Data {
            dest: UnitId(0),
            from: UnitId(0),
            tuple: Tuple::with_seq(SeqNo(0)).with("blob", vec![0xABu8; 4 * 1024 * 1024]),
        };
        tx.enqueue(encode(&msg));
        let (done, drain) = tx.drain_write().unwrap();
        assert_eq!(done, 0);
        assert_eq!(drain, Drain::Blocked);
        assert!(tx.queued_bytes() < tx.outq.front().unwrap().wire_len() + 1);
        let mut buf = vec![0u8; 256 * 1024];
        let mut frames = Vec::new();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while frames.is_empty() {
            assert!(std::time::Instant::now() < deadline, "drain timed out");
            let _ = tx.drain_write().unwrap();
            let _ = rx.drain_read(&mut buf, &mut frames).unwrap();
        }
        assert_eq!(Message::decode_shared(&frames[0]).unwrap(), msg);
    }

    #[test]
    fn eof_mid_frame_is_not_a_boundary() {
        let (a, b) = pipe();
        let mut rx = FramedConn::new(b).unwrap();
        // Write a torn frame: prefix claims 100 bytes, send only 10.
        let mut raw = a;
        raw.write_all(&100u32.to_be_bytes()).unwrap();
        raw.write_all(&[0u8; 10]).unwrap();
        drop(raw);
        let mut buf = vec![0u8; 1024];
        let mut frames = Vec::new();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        loop {
            assert!(std::time::Instant::now() < deadline, "never saw EOF");
            match rx.drain_read(&mut buf, &mut frames).unwrap() {
                Drain::Eof => break,
                _ => std::thread::sleep(std::time::Duration::from_millis(1)),
            }
        }
        assert!(frames.is_empty());
        assert!(!rx.at_frame_boundary());
    }
}
