//! End-to-end registry flow over real loopback sockets: register →
//! lookup → heartbeat keeps the lease alive → missed heartbeats expire
//! it → watchers receive the tombstone → the heartbeater re-registers
//! after a lapse.

use std::time::Duration;
use swing_net::{NetTimeouts, ServiceEntry};
use swing_reactor::{
    await_service, Heartbeater, Reactor, ReactorConfig, RegistryClient, RegistryServer,
};

fn fast_timeouts() -> NetTimeouts {
    NetTimeouts {
        connect: Duration::from_secs(5),
        read: Duration::from_millis(50),
        heartbeat_interval: Duration::from_millis(40),
        heartbeat_ttl: Duration::from_millis(140),
    }
}

fn entry(role: &str, addr: &str) -> ServiceEntry {
    ServiceEntry {
        app: "vision".into(),
        role: role.into(),
        stage: "detect".into(),
        addr: addr.into(),
    }
}

#[test]
fn register_lookup_and_expiry_over_loopback() {
    let timeouts = fast_timeouts();
    let reactor = Reactor::spawn(
        ReactorConfig {
            timeouts,
            ..ReactorConfig::default()
        },
        None,
    );
    let mut server =
        RegistryServer::spawn(&reactor, "127.0.0.1:0", timeouts, None).expect("spawn registry");
    let registry_addr = server.addr().to_owned();

    let mut client =
        RegistryClient::connect(&reactor, &registry_addr, timeouts).expect("connect client");

    // A watcher on the worker pattern, subscribed before anything exists.
    let mut watcher =
        RegistryClient::connect(&reactor, &registry_addr, timeouts).expect("connect watcher");
    watcher.watch("vision", "worker", "").expect("watch");

    let master = entry("master", "127.0.0.1:7000");
    let worker = entry("worker", "127.0.0.1:7001");
    assert!(client.register(&master, timeouts.ttl_ms()).unwrap());
    assert!(client.register(&worker, timeouts.ttl_ms()).unwrap());

    // Pattern lookup: role narrows, empty stage wildcards.
    let found = client.lookup("vision", "master", "").expect("lookup");
    assert_eq!(found, vec![master.clone()]);
    assert_eq!(client.lookup("", "", "").unwrap().len(), 2);

    // await_service resolves through a fresh connection.
    let hit = await_service(
        &reactor,
        &registry_addr,
        "vision",
        "master",
        Duration::from_secs(2),
        timeouts,
    )
    .expect("await_service");
    assert_eq!(hit, master);

    // Heartbeats keep the master alive across several TTL windows...
    for _ in 0..6 {
        assert!(client.heartbeat(&master).expect("heartbeat"));
        std::thread::sleep(Duration::from_millis(40));
    }
    // ...while the silent worker expires and the watcher is told.
    let dead = watcher
        .recv_expired(Duration::from_secs(2))
        .expect("tombstone");
    assert_eq!(dead, worker);
    let left = client.lookup("", "", "").expect("lookup survivors");
    assert_eq!(left, vec![master.clone()]);

    server.stop();
    reactor.shutdown();
}

#[test]
fn heartbeater_keeps_leases_alive_and_recovers_from_lapse() {
    let timeouts = fast_timeouts();
    let reactor = Reactor::spawn(
        ReactorConfig {
            timeouts,
            ..ReactorConfig::default()
        },
        None,
    );
    let mut server =
        RegistryServer::spawn(&reactor, "127.0.0.1:0", timeouts, None).expect("spawn registry");
    let registry_addr = server.addr().to_owned();

    let mut hb = Heartbeater::spawn(&reactor, &registry_addr, timeouts).expect("heartbeater");
    let a = entry("worker", "127.0.0.1:7100");
    let b = entry("worker", "127.0.0.1:7101");
    assert!(hb.add(a.clone()).expect("add a"));
    assert!(hb.add(b.clone()).expect("add b"));

    // Both survive several TTLs under heartbeat renewal.
    std::thread::sleep(Duration::from_millis(400));
    let mut probe =
        RegistryClient::connect(&reactor, &registry_addr, timeouts).expect("probe client");
    assert_eq!(probe.lookup("vision", "worker", "").unwrap().len(), 2);

    // Removed entries lapse one TTL later.
    hb.remove(b.clone());
    std::thread::sleep(Duration::from_millis(300));
    assert_eq!(probe.lookup("vision", "worker", "").unwrap(), vec![a]);

    hb.stop();
    server.stop();
    reactor.shutdown();
}
