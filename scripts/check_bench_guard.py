#!/usr/bin/env python3
"""Bench-smoke guard for the per-tuple dispatch overhead budgets.

Usage: check_bench_guard.py BENCH_pr3_telemetry.json BENCH_pr2.json \\
           [BENCH_pr5_flow.json]

Cross-checks the freshly measured overhead reports against the
checked-in PR2 data-plane baseline:

1. the instrumented dispatch path (telemetry + the injected-Clock
   timestamp indirection; with the optional third report, also the
   flow-control credit/mailbox bookkeeping) must stay within the 5%
   overhead budget of the same-machine baseline column, which replays
   PR2's `dispatch_clone_and_record` workload (125.9 ns on the
   reference machine);
2. each re-measured baseline must be in the same ballpark as the
   checked-in reference — a wildly different number means the bench is
   no longer measuring the PR2 workload and the percentage above is
   meaningless.
"""

import json
import sys


def pick(benches, name):
    for b in benches:
        if b["name"] == name:
            return b
    sys.exit(f"FAIL: no bench named {name!r} in report")


def check_report(report, bench_name, what, ref):
    budget = float(report.get("budget_pct", 5.0))
    disp = pick(report["benches"], bench_name)

    print(f"checked-in PR2 dispatch baseline : {ref:8.1f} ns/op")
    print(f"re-measured baseline (this host) : {disp['baseline']:8.1f} ns/op")
    print(f"instrumented ({what:<15}) : {disp['instrumented']:8.1f} ns/op")
    print(f"overhead                         : {disp['overhead_pct']:8.2f} %  (budget {budget}%)")

    if disp["overhead_pct"] > budget:
        sys.exit(
            f"FAIL: {what} dispatch overhead {disp['overhead_pct']:.2f}% exceeds "
            f"the {budget}% budget over the PR2 baseline"
        )

    # Sanity-check the measurement itself: CI hosts differ from the
    # reference machine, but not by an order of magnitude.
    ratio = disp["baseline"] / ref
    if not 0.2 <= ratio <= 5.0:
        sys.exit(
            f"FAIL: re-measured baseline {disp['baseline']:.1f} ns is {ratio:.1f}x "
            f"the checked-in {ref} ns reference; the bench no longer replays "
            "the PR2 dispatch workload"
        )

    print(f"OK: {what} dispatch cost within budget of the PR2 baseline")


def main():
    if len(sys.argv) not in (3, 4):
        sys.exit(__doc__)
    with open(sys.argv[1], encoding="utf-8") as f:
        pr3 = json.load(f)
    with open(sys.argv[2], encoding="utf-8") as f:
        pr2 = json.load(f)

    ref = pick(pr2["benches"], "dispatch_clone_and_record")["after"]
    check_report(pr3, "dispatch_telemetry_overhead", "telemetry + clock", ref)

    if len(sys.argv) == 4:
        with open(sys.argv[3], encoding="utf-8") as f:
            pr5 = json.load(f)
        print()
        check_report(pr5, "dispatch_flow_overhead", "flow control", ref)


if __name__ == "__main__":
    main()
