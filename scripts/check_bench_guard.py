#!/usr/bin/env python3
"""Bench-smoke guard for the per-tuple dispatch overhead budgets.

Usage: check_bench_guard.py BENCH_pr3_telemetry.json BENCH_pr2.json \\
           [BENCH_pr5_flow.json]
       check_bench_guard.py --pr7 BENCH_pr7_scale.json
       check_bench_guard.py --pr8 BENCH_pr8_soak.json
       check_bench_guard.py --pr9 BENCH_pr9_keyed.json BENCH_pr2.json
       check_bench_guard.py --pr10 BENCH_pr10_tournament.json BENCH_pr2.json

Cross-checks the freshly measured overhead reports against the
checked-in PR2 data-plane baseline:

1. the instrumented dispatch path (telemetry + the injected-Clock
   timestamp indirection; with the optional third report, also the
   flow-control credit/mailbox bookkeeping) must stay within the 5%
   overhead budget of the same-machine baseline column, which replays
   PR2's `dispatch_clone_and_record` workload (125.9 ns on the
   reference machine);
2. each re-measured baseline must be in the same ballpark as the
   checked-in reference — a wildly different number means the bench is
   no longer measuring the PR2 workload and the percentage above is
   meaningless.

`--pr7` guards the sharded-engine scaling curve instead: every point
must conserve tuples, every point must clear an absolute tuples/sec
floor (holds even on a one-core container), and — only when the
measuring host has >= 4 cores, because extra threads cannot speed up a
single core — the best multi-thread point must reach min(4, cores/2)x
the single-thread wall clock.

`--pr9` guards the partition-aware dispatch path: the Broadcast-edge
row (every pre-PR9 edge) must stay within the 5% budget over the PR2
baseline — the partition generalization must be free where it is not
used — while the full KeyBy row (key hash + rendezvous ownership) is
reported informationally.

`--pr8` guards the reactor loopback soak: frame accounting must be
exact (sensed = delivered + shed_at_source, zero lost, zero per-stream
reorders), every churned lease must have produced a registry tombstone
(and no more than a sliver of live leases may have starved out), and
both the registry-lookup p99 and the end-to-end frame p99 must hold
under generous absolute ceilings sized for slow CI hosts.
"""

import json
import sys


def pick(benches, name):
    for b in benches:
        if b["name"] == name:
            return b
    sys.exit(f"FAIL: no bench named {name!r} in report")


def check_report(report, bench_name, what, ref):
    budget = float(report.get("budget_pct", 5.0))
    disp = pick(report["benches"], bench_name)

    print(f"checked-in PR2 dispatch baseline : {ref:8.1f} ns/op")
    print(f"re-measured baseline (this host) : {disp['baseline']:8.1f} ns/op")
    print(f"instrumented ({what:<15}) : {disp['instrumented']:8.1f} ns/op")
    print(f"overhead                         : {disp['overhead_pct']:8.2f} %  (budget {budget}%)")

    if disp["overhead_pct"] > budget:
        sys.exit(
            f"FAIL: {what} dispatch overhead {disp['overhead_pct']:.2f}% exceeds "
            f"the {budget}% budget over the PR2 baseline"
        )

    # Sanity-check the measurement itself: CI hosts differ from the
    # reference machine, but not by an order of magnitude.
    ratio = disp["baseline"] / ref
    if not 0.2 <= ratio <= 5.0:
        sys.exit(
            f"FAIL: re-measured baseline {disp['baseline']:.1f} ns is {ratio:.1f}x "
            f"the checked-in {ref} ns reference; the bench no longer replays "
            "the PR2 dispatch workload"
        )

    print(f"OK: {what} dispatch cost within budget of the PR2 baseline")


# Absolute throughput floor for every scaling point. The reference
# one-core container sustains ~9.5k tuples/sec at the 10 000-device
# point, so 2 000 leaves headroom for slow CI hosts without letting a
# real regression (an accidentally quadratic scan, say) slip through.
PR7_TUPLES_PER_SEC_FLOOR = 2_000.0


def check_pr7(report):
    cores = int(report["host_cores"])
    rows = list(report["scale"]) + list(report["threads"])
    print(f"pr7 scaling curve: {len(rows)} points measured on a {cores}-core host")

    for row in rows:
        where = f"{row['devices']} devices @ {row['threads']} threads"
        if not row["conserved"]:
            sys.exit(f"FAIL: {where} violated tuple conservation")
        tps = float(row["tuples_per_sec"])
        print(f"  {where:<28} {row['wall_ms']:>7} ms  {tps:>9.0f} tuples/s")
        if tps < PR7_TUPLES_PER_SEC_FLOOR:
            sys.exit(
                f"FAIL: {where} ran at {tps:.0f} tuples/sec, below the "
                f"{PR7_TUPLES_PER_SEC_FLOOR:.0f} floor"
            )

    if cores < 4:
        print(
            f"OK: throughput floor holds; speedup gate skipped "
            f"({cores}-core host cannot demonstrate parallel speedup)"
        )
        return
    # Only thread counts the host can actually run in parallel count
    # toward the gate.
    eligible = [r for r in report["threads"] if r["threads"] <= cores]
    best = max(float(r["speedup_vs_1t"]) for r in eligible)
    required = min(4.0, cores / 2.0)
    if best < required:
        sys.exit(
            f"FAIL: best speedup {best:.2f}x on a {cores}-core host, "
            f"below the required {required:.1f}x"
        )
    print(f"OK: throughput floor holds and best speedup {best:.2f}x >= {required:.1f}x")


# Absolute latency ceilings for the soak. The reference 1000-worker run
# on a loaded container measures lookup p99 in the tens of ms and e2e
# p99 well under 100 ms; the ceilings catch a broken sweep loop (which
# degrades to seconds or deadlock) while tolerating slow shared CI
# runners and scheduler noise.
PR8_LOOKUP_P99_CEILING_US = 250_000
PR8_E2E_P99_CEILING_US = 500_000


def check_pr8(report):
    workers = int(report["workers"])
    sensed = int(report["sensed"])
    delivered = int(report["delivered"])
    shed = int(report["shed_at_source"])
    lost = int(report["lost"])
    print(
        f"pr8 reactor soak: {workers} workers, {sensed} sensed = "
        f"{delivered} delivered + {shed} shed + {lost} lost"
    )

    if workers < 100:
        sys.exit(f"FAIL: soak ran only {workers} workers; not a scale test")
    if delivered == 0:
        sys.exit("FAIL: soak delivered nothing")
    if lost != 0:
        sys.exit(f"FAIL: {lost} frames lost under churn")
    if not report["conserved"] or sensed != delivered + shed + lost:
        sys.exit("FAIL: frame conservation identity violated")
    if int(report["order_violations"]) != 0:
        sys.exit(f"FAIL: {report['order_violations']} per-stream reorders")

    churned = int(report["churned"])
    tombstones = int(report["tombstones"])
    if tombstones < churned:
        sys.exit(
            f"FAIL: only {tombstones} registry tombstones for "
            f"{churned} churned leases"
        )
    # Tombstones beyond the churned set are live leases the registry
    # starved out — renewal fell behind the TTL at this scale.
    if tombstones > churned + workers // 10:
        sys.exit(
            f"FAIL: {tombstones - churned} live leases expired despite "
            f"renewal (of {workers} workers)"
        )

    lookup_p99 = int(report["lookup_p99_us"])
    e2e_p99 = int(report["e2e_p99_us"])
    print(
        f"  churn {churned} leases -> {tombstones} tombstones; "
        f"lookup p99 {lookup_p99 / 1000:.1f} ms, e2e p99 {e2e_p99 / 1000:.1f} ms"
    )
    if lookup_p99 > PR8_LOOKUP_P99_CEILING_US:
        sys.exit(
            f"FAIL: registry lookup p99 {lookup_p99} us exceeds the "
            f"{PR8_LOOKUP_P99_CEILING_US} us ceiling"
        )
    if e2e_p99 > PR8_E2E_P99_CEILING_US:
        sys.exit(
            f"FAIL: end-to-end p99 {e2e_p99} us exceeds the "
            f"{PR8_E2E_P99_CEILING_US} us ceiling"
        )
    print(
        f"OK: zero loss across {delivered} frames on {workers} workers; "
        "tombstones and p99 ceilings hold"
    )


def check_pr9(report, ref):
    check_report(report, "dispatch_broadcast_overhead", "partition match", ref)
    keyed = pick(report["benches"], "dispatch_keyed_overhead")
    print(
        f"keyed (KeyBy) dispatch, informational: {keyed['instrumented']:.1f} ns/op "
        f"(+{keyed['overhead_pct']:.2f}% over the two-clone baseline)"
    )


def check_pr10(report, ref):
    check_report(report, "dispatch_vitals_overhead", "vitals snapshot", ref)
    resel = pick(report["benches"], "policy_reselect_cost")
    print(
        f"energy-aware re-selection, informational: {resel['instrumented']:.1f} ns "
        "per 8-worker RSS rebalance (control-period work, not per-tuple)"
    )


def main():
    if len(sys.argv) == 4 and sys.argv[1] == "--pr10":
        with open(sys.argv[2], encoding="utf-8") as f:
            pr10 = json.load(f)
        with open(sys.argv[3], encoding="utf-8") as f:
            pr2 = json.load(f)
        check_pr10(pr10, pick(pr2["benches"], "dispatch_clone_and_record")["after"])
        return
    if len(sys.argv) == 4 and sys.argv[1] == "--pr9":
        with open(sys.argv[2], encoding="utf-8") as f:
            pr9 = json.load(f)
        with open(sys.argv[3], encoding="utf-8") as f:
            pr2 = json.load(f)
        check_pr9(pr9, pick(pr2["benches"], "dispatch_clone_and_record")["after"])
        return
    if len(sys.argv) == 3 and sys.argv[1] == "--pr8":
        with open(sys.argv[2], encoding="utf-8") as f:
            check_pr8(json.load(f))
        return
    if len(sys.argv) == 3 and sys.argv[1] == "--pr7":
        with open(sys.argv[2], encoding="utf-8") as f:
            check_pr7(json.load(f))
        return
    if len(sys.argv) not in (3, 4):
        sys.exit(__doc__)
    with open(sys.argv[1], encoding="utf-8") as f:
        pr3 = json.load(f)
    with open(sys.argv[2], encoding="utf-8") as f:
        pr2 = json.load(f)

    ref = pick(pr2["benches"], "dispatch_clone_and_record")["after"]
    check_report(pr3, "dispatch_telemetry_overhead", "telemetry + clock", ref)

    if len(sys.argv) == 4:
        with open(sys.argv[3], encoding="utf-8") as f:
            pr5 = json.load(f)
        print()
        check_report(pr5, "dispatch_flow_overhead", "flow control", ref)


if __name__ == "__main__":
    main()
