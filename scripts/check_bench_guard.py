#!/usr/bin/env python3
"""Bench-smoke guard for the telemetry/clock dispatch overhead.

Usage: check_bench_guard.py BENCH_pr3_telemetry.json BENCH_pr2.json

Cross-checks the freshly measured PR3 telemetry-overhead report against
the checked-in PR2 data-plane baseline:

1. the instrumented dispatch path (telemetry + the injected-Clock
   timestamp indirection) must stay within the 5% overhead budget of
   the same-machine baseline column, which replays PR2's
   `dispatch_clone_and_record` workload (125.9 ns on the reference
   machine);
2. the re-measured baseline must be in the same ballpark as the
   checked-in reference — a wildly different number means the bench is
   no longer measuring the PR2 workload and the percentage above is
   meaningless.
"""

import json
import sys


def pick(benches, name):
    for b in benches:
        if b["name"] == name:
            return b
    sys.exit(f"FAIL: no bench named {name!r} in report")


def main():
    if len(sys.argv) != 3:
        sys.exit(__doc__)
    with open(sys.argv[1], encoding="utf-8") as f:
        pr3 = json.load(f)
    with open(sys.argv[2], encoding="utf-8") as f:
        pr2 = json.load(f)

    budget = float(pr3.get("budget_pct", 5.0))
    ref = pick(pr2["benches"], "dispatch_clone_and_record")["after"]
    disp = pick(pr3["benches"], "dispatch_telemetry_overhead")

    print(f"checked-in PR2 dispatch baseline : {ref:8.1f} ns/op")
    print(f"re-measured baseline (this host) : {disp['baseline']:8.1f} ns/op")
    print(f"instrumented (telemetry + clock) : {disp['instrumented']:8.1f} ns/op")
    print(f"overhead                         : {disp['overhead_pct']:8.2f} %  (budget {budget}%)")

    if disp["overhead_pct"] > budget:
        sys.exit(
            f"FAIL: dispatch overhead {disp['overhead_pct']:.2f}% exceeds "
            f"the {budget}% budget over the PR2 baseline"
        )

    # Sanity-check the measurement itself: CI hosts differ from the
    # reference machine, but not by an order of magnitude.
    ratio = disp["baseline"] / ref
    if not 0.2 <= ratio <= 5.0:
        sys.exit(
            f"FAIL: re-measured baseline {disp['baseline']:.1f} ns is {ratio:.1f}x "
            f"the checked-in {ref} ns reference; the bench no longer replays "
            "the PR2 dispatch workload"
        )

    print("OK: dispatch cost within budget of the PR2 baseline")


if __name__ == "__main__":
    main()
