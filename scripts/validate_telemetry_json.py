#!/usr/bin/env python3
"""Validate an exported telemetry snapshot against the checked-in schema.

Usage: validate_telemetry_json.py SNAPSHOT.json [SCHEMA.json]

Stdlib-only so CI needs no extra packages: implements the small JSON
Schema subset the snapshot schema uses (type, required, properties,
additionalProperties, patternProperties, items, prefixItems, min/max,
minItems/maxItems, pattern, $ref into $defs), then runs a few semantic
checks the schema language cannot express (bucket ordering, count
consistency, quantile bounds).
"""

import json
import re
import sys

TYPE_CHECKS = {
    "object": lambda v: isinstance(v, dict),
    "array": lambda v: isinstance(v, list),
    "string": lambda v: isinstance(v, str),
    "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "number": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
    "null": lambda v: v is None,
    "boolean": lambda v: isinstance(v, bool),
}


class SchemaError(Exception):
    pass


def resolve(schema, root):
    ref = schema.get("$ref")
    if ref is None:
        return schema
    if not ref.startswith("#/"):
        raise SchemaError(f"unsupported $ref {ref!r}")
    node = root
    for part in ref[2:].split("/"):
        node = node[part]
    return node


def validate(value, schema, root, path="$"):
    schema = resolve(schema, root)

    types = schema.get("type")
    if types is not None:
        if isinstance(types, str):
            types = [types]
        if not any(TYPE_CHECKS[t](value) for t in types):
            raise SchemaError(f"{path}: expected {types}, got {type(value).__name__}")

    if isinstance(value, (int, float)) and not isinstance(value, bool):
        if "minimum" in schema and value < schema["minimum"]:
            raise SchemaError(f"{path}: {value} < minimum {schema['minimum']}")
        if "maximum" in schema and value > schema["maximum"]:
            raise SchemaError(f"{path}: {value} > maximum {schema['maximum']}")

    if isinstance(value, str) and "pattern" in schema:
        if not re.search(schema["pattern"], value):
            raise SchemaError(f"{path}: {value!r} does not match {schema['pattern']!r}")

    if isinstance(value, dict):
        for req in schema.get("required", []):
            if req not in value:
                raise SchemaError(f"{path}: missing required field {req!r}")
        props = schema.get("properties", {})
        patterns = schema.get("patternProperties", {})
        allow_extra = schema.get("additionalProperties", True)
        for key, sub in value.items():
            if key in props:
                validate(sub, props[key], root, f"{path}.{key}")
            else:
                matched = False
                for pat, pat_schema in patterns.items():
                    if re.search(pat, key):
                        validate(sub, pat_schema, root, f"{path}.{key}")
                        matched = True
                        break
                if not matched and allow_extra is False:
                    raise SchemaError(f"{path}: unexpected field {key!r}")

    if isinstance(value, list):
        if "minItems" in schema and len(value) < schema["minItems"]:
            raise SchemaError(f"{path}: {len(value)} items < minItems {schema['minItems']}")
        if "maxItems" in schema and len(value) > schema["maxItems"]:
            raise SchemaError(f"{path}: {len(value)} items > maxItems {schema['maxItems']}")
        prefix = schema.get("prefixItems")
        items = schema.get("items")
        for i, sub in enumerate(value):
            if prefix is not None and i < len(prefix):
                validate(sub, prefix[i], root, f"{path}[{i}]")
            elif items is not None:
                validate(sub, items, root, f"{path}[{i}]")


def semantic_checks(snap):
    """Invariants of the exporter that JSON Schema cannot state."""
    for h in snap["histograms"]:
        where = f"histogram {h['name']} {h['labels']}"
        buckets = h["buckets"]
        indices = [b[0] for b in buckets]
        if indices != sorted(set(indices)):
            raise SchemaError(f"{where}: bucket indices not strictly increasing")
        total = sum(b[1] for b in buckets)
        if total != h["count"]:
            raise SchemaError(f"{where}: bucket total {total} != count {h['count']}")
        if h["count"] > 0:
            if not h["min"] <= h["p50"] <= h["p95"] <= h["p99"] <= h["max"]:
                raise SchemaError(
                    f"{where}: quantiles not ordered: "
                    f"min {h['min']} p50 {h['p50']} p95 {h['p95']} "
                    f"p99 {h['p99']} max {h['max']}"
                )
    for c in snap["counters"]:
        if not c["name"].endswith("_total") and not c["name"].endswith("_count"):
            raise SchemaError(
                f"counter {c['name']}: monotone counters use the _total suffix"
            )


def main():
    if len(sys.argv) < 2:
        sys.exit(__doc__)
    snapshot_path = sys.argv[1]
    schema_path = (
        sys.argv[2] if len(sys.argv) > 2 else "schemas/telemetry_snapshot.schema.json"
    )
    with open(snapshot_path) as f:
        snap = json.load(f)
    with open(schema_path) as f:
        schema = json.load(f)
    validate(snap, schema, schema)
    semantic_checks(snap)
    print(
        f"{snapshot_path}: valid ({len(snap['counters'])} counters, "
        f"{len(snap['gauges'])} gauges, {len(snap['histograms'])} histograms)"
    )


if __name__ == "__main__":
    main()
