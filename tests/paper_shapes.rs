//! Integration tests asserting that the simulated reproduction preserves
//! the *shape* of every headline claim in the paper's evaluation: who
//! wins, by roughly what factor, and how the system reacts to churn and
//! mobility. Absolute numbers are not expected to match the authors'
//! testbed; factors and orderings are.

use swing::core::routing::Policy;
use swing::device::profile::Workload;
use swing::sim::experiments::{
    evaluation_run, joining_run, leaving_run, mobility_run, single_device,
};

const SECS: u64 = 90;
const SEED: u64 = 1;

/// §I / Fig 1: "Each device can only process 4~10 frames per second,
/// which is far below the minimal 24 FPS" — no single device keeps up,
/// and delays build up within seconds.
#[test]
fn no_single_device_sustains_real_time() {
    for letter in ["B", "E", "H", "I"] {
        let r = single_device(letter, 20, SEED);
        assert!(
            r.throughput_fps < 15.0,
            "{letter} reached {:.1} FPS alone",
            r.throughput_fps
        );
        assert!(
            r.latency_ms.max() > 1_000.0,
            "{letter} never built up delay"
        );
    }
}

/// §VI headline: "Compared with the baseline RR, LRS provides 2.7x
/// improvement in throughput and 6.7x reduction in average latency."
#[test]
fn lrs_beats_rr_by_paper_factors() {
    let rr = evaluation_run(Policy::Rr, Workload::FaceRecognition, SECS, SEED);
    let lrs = evaluation_run(Policy::Lrs, Workload::FaceRecognition, SECS, SEED);
    let speedup = lrs.throughput_fps / rr.throughput_fps;
    let latency_cut = rr.latency_ms.mean() / lrs.latency_ms.mean();
    assert!(
        speedup >= 2.2,
        "throughput improvement {speedup:.1}x below the paper's 2.7x band"
    );
    assert!(
        latency_cut >= 6.0,
        "latency reduction {latency_cut:.1}x below the paper's 6.7x"
    );
    // And LRS actually meets the real-time target.
    assert!(
        lrs.throughput_fps > 22.0,
        "LRS at {:.1} FPS",
        lrs.throughput_fps
    );
}

/// Fig 4: latency-based routing beats processing-delay-based routing,
/// which mis-routes to weak-signal devices.
#[test]
fn latency_based_routing_beats_processing_based() {
    let face = Workload::FaceRecognition;
    let pr = evaluation_run(Policy::Pr, face, SECS, SEED);
    let lr = evaluation_run(Policy::Lr, face, SECS, SEED);
    assert!(lr.throughput_fps > 2.0 * pr.throughput_fps);
    assert!(lr.latency_ms.mean() < pr.latency_ms.mean() / 2.0);
    // PR keeps feeding the poor-signal B; LR learns to avoid it.
    let received = |r: &swing::sim::SwarmReport, n: &str| {
        r.workers.iter().find(|w| w.name == n).unwrap().received
    };
    assert!(received(&pr, "B") > 2 * received(&lr, "B"));
}

/// Fig 4/5: worker selection concentrates work on fewer devices without
/// losing throughput.
#[test]
fn worker_selection_uses_fewer_devices() {
    let face = Workload::FaceRecognition;
    let lr = evaluation_run(Policy::Lr, face, SECS, SEED);
    let lrs = evaluation_run(Policy::Lrs, face, SECS, SEED);
    assert!(lrs.active_workers(50) < lr.active_workers(50));
    assert!(lrs.throughput_fps > 0.95 * lr.throughput_fps);
}

/// Fig 6/7: selection improves energy efficiency; PRS (fastest, most
/// efficient devices only) draws the least power.
#[test]
fn energy_shapes_hold() {
    let face = Workload::FaceRecognition;
    let rr = evaluation_run(Policy::Rr, face, SECS, SEED);
    let lr = evaluation_run(Policy::Lr, face, SECS, SEED);
    let prs = evaluation_run(Policy::Prs, face, SECS, SEED);
    let lrs = evaluation_run(Policy::Lrs, face, SECS, SEED);
    assert!(prs.aggregate_power_w() < lr.aggregate_power_w());
    assert!(prs.aggregate_power_w() < lrs.aggregate_power_w());
    assert!(lrs.fps_per_watt() > rr.fps_per_watt());
    assert!(lrs.fps_per_watt() > lr.fps_per_watt());
}

/// §VI-B: voice translation is heavier; no policy reaches 24 FPS and RR
/// remains the worst.
#[test]
fn voice_workload_shapes_hold() {
    let voice = Workload::VoiceTranslation;
    let rr = evaluation_run(Policy::Rr, voice, SECS, SEED);
    let lrs = evaluation_run(Policy::Lrs, voice, SECS, SEED);
    assert!(lrs.throughput_fps < 24.0);
    assert!(lrs.throughput_fps > 1.5 * rr.throughput_fps);
    assert!(lrs.latency_ms.mean() < rr.latency_ms.mean());
}

/// Fig 8: LRS delivers results in better order, so the 1 s reorder
/// buffer skips no more frames than under RR.
#[test]
fn lrs_preserves_order_better_than_rr() {
    let face = Workload::FaceRecognition;
    let rr = evaluation_run(Policy::Rr, face, SECS, SEED);
    let lrs = evaluation_run(Policy::Lrs, face, SECS, SEED);
    assert!(lrs.reorder_skipped <= rr.reorder_skipped);
}

/// Fig 9 (left): "within a second of G's arrival, throughput rises".
#[test]
fn joining_device_raises_throughput_quickly() {
    let r = joining_run(10, 30, SEED);
    let before: f64 = r.timeline[6..9].iter().map(|p| p.total_fps).sum::<f64>() / 3.0;
    let after: f64 = r.timeline[12..16].iter().map(|p| p.total_fps).sum::<f64>() / 4.0;
    assert!(
        after > before + 4.0,
        "join: before {before:.1} FPS, after {after:.1} FPS"
    );
}

/// Fig 9 (right): a leave loses a handful of in-flight frames ("13
/// frames are lost") and throughput recovers to the remaining capacity.
#[test]
fn leaving_device_loses_a_handful_and_recovers() {
    // Whether any frame is in flight on the leaver at t=10 s depends on
    // the RNG draw sequence; scan a few seeds for a run that catches
    // some rather than pinning one seed's behaviour.
    let r = (SEED..SEED + 16)
        .map(|s| leaving_run(10, 30, s))
        .find(|r| r.lost > 0)
        .expect("no seed lost frames on leave");
    assert!(r.lost <= 60, "lost {} frames", r.lost);
    let tail: f64 =
        r.timeline[20..].iter().map(|p| p.total_fps).sum::<f64>() / (r.timeline.len() - 20) as f64;
    assert!(tail > 12.0, "post-leave throughput {tail:.1} FPS");
}

/// Fig 10: when G walks into weak signal, its load shifts to B and H and
/// overall throughput recovers.
#[test]
fn mobility_shifts_load_and_recovers() {
    let r = mobility_run(20, SEED);
    let n = r.timeline.len();
    // G's share early (good signal) vs late (poor signal).
    let g_early: f64 = r.timeline[5..15].iter().map(|p| p.per_worker_fps[1]).sum();
    let g_late: f64 = r.timeline[n - 10..]
        .iter()
        .map(|p| p.per_worker_fps[1])
        .sum();
    assert!(
        g_late < 0.4 * g_early,
        "G early {g_early:.0}, late {g_late:.0}"
    );
    // Total throughput at the end is most of the early level.
    let t_early: f64 = r.timeline[5..15].iter().map(|p| p.total_fps).sum::<f64>() / 10.0;
    let t_late: f64 = r.timeline[n - 5..].iter().map(|p| p.total_fps).sum::<f64>() / 5.0;
    assert!(
        t_late > 0.6 * t_early,
        "early {t_early:.1} FPS, late {t_late:.1} FPS"
    );
}

/// Determinism: the whole evaluation is reproducible bit-for-bit.
#[test]
fn evaluation_runs_are_deterministic() {
    let a = evaluation_run(Policy::Lrs, Workload::FaceRecognition, 30, 9);
    let b = evaluation_run(Policy::Lrs, Workload::FaceRecognition, 30, 9);
    assert_eq!(a.completed, b.completed);
    assert_eq!(a.lost, b.lost);
    assert_eq!(a.latency_ms, b.latency_ms);
}
