//! Compile-time contract for the public facade: everything an
//! application needs must resolve through `swing::prelude::*`, and the
//! configuration/data types must stay `Send + Sync` so swarms can be
//! driven from any thread.

#![allow(unused_imports)]

use swing::prelude::*;

fn assert_send_sync<T: Send + Sync>() {}

/// Every name an example uses must come in through the one glob import.
#[test]
fn prelude_covers_the_application_surface() {
    // Core data & graph types.
    let _ = Tuple::new().with("v", 1i64);
    let mut g = AppGraph::new("surface");
    let s = g.add_source("src");
    let op = g.add_operator("agg");
    let k = g.add_sink("out");
    g.connect_keyed(s, op, "cell").unwrap();
    g.connect(op, k).unwrap();
    g.set_parallelism(op, 4).unwrap();
    assert_eq!(g.edge_kind(s, op), Some(&EdgeKind::KeyBy("cell".into())));

    // Keyed-state API: a stateful operator wraps into a FunctionUnit.
    struct Count;
    impl StatefulUnit for Count {
        type State = i64;
        fn key_field(&self) -> &str {
            "cell"
        }
        fn window(&self) -> WindowSpec {
            WindowSpec::tumbling(SECOND_US)
        }
        fn accumulate(&mut self, state: &mut i64, _data: &Tuple, _now_us: u64) {
            *state += 1;
        }
        fn process(&mut self, state: &i64, data: Tuple, ctx: &mut Context<'_>) {
            ctx.send(data.with("count", *state));
        }
    }
    let _keyed: Keyed<Count> = Keyed::new(Count).unwrap();

    // Configuration: one SwarmConfig feeds both the live builder and
    // the simulator.
    let mut shared = SwarmConfig::with_policy(Policy::Lrs);
    shared.flow = FlowConfig::bounded(8);
    shared.retry = RetryConfig::default();
    assert!(shared.validate().is_ok());
    let sim = SimSwarmConfig::from_swarm(&shared);
    assert_eq!(sim.node.flow, shared.flow);

    // Overload policy enum variants are all reachable.
    for p in [
        OverloadPolicy::Block,
        OverloadPolicy::ShedOldest,
        OverloadPolicy::ShedNewest,
    ] {
        let _ = FlowConfig {
            policy: p,
            ..FlowConfig::bounded(4)
        };
    }

    // Unit construction helpers.
    let mut r = UnitRegistry::new();
    r.register_source("src", || closure_source(|_| None));
    r.register_operator("work", || PassThrough);
    r.register_sink("out", || closure_sink(|_, _| ()));

    // Runtime entry points resolve (not started here).
    let _ = LocalSwarm::builder(g).worker("A", r);

    // Time and telemetry.
    let _: u64 = SECOND_US;
    let _ = Telemetry::new();
    let _: ClockHandle = RealClock::handle();
}

/// The lifetime-aware scheduling surface: the open [`SelectionPolicy`]
/// trait, worker vitals, the energy-aware built-ins, and the tournament
/// harness all resolve through the facade.
#[test]
fn prelude_covers_the_selection_policy_surface() {
    // WorkerVitals: the per-replica health record every policy reads.
    let v = WorkerVitals {
        unit: UnitId(3),
        latency_us: 80_000.0,
        battery_frac: 0.5,
        drain_w: 1.2,
        rssi_dbm: -55.0,
    };
    assert!(v.rate_per_sec() > 0.0);
    assert!(v.lifetime_s().is_finite());
    assert_eq!(WorkerVitals::healthy(UnitId(1), 1_000.0).battery_frac, 1.0);

    // Policy stays a thin, serializable configuration name: every
    // built-in round-trips through FromStr/Display and resolves to a
    // boxed SelectionPolicy implementation.
    for p in Policy::EXTENDED {
        let round: Policy = p.to_string().parse().expect("policy name parses");
        assert_eq!(round, p);
        let mut resolved = p.resolve();
        assert_eq!(resolved.name(), p.name());
        let _ = resolved.select(&[v], 10.0);
    }
    assert_eq!(Policy::ENERGY_AWARE.len(), 3);
    assert!("energy-lrs".parse::<Policy>().is_ok());

    // The API is open: a hand-written policy installs into a live
    // Router through the same seam the built-ins use.
    #[derive(Debug)]
    struct FirstOnly;
    impl SelectionPolicy for FirstOnly {
        fn select(&mut self, vitals: &[WorkerVitals], _lambda: f64) -> SelectionDecision {
            let mut d = SelectionDecision::all_by_rate(vitals);
            d.selected.truncate(1);
            d
        }
        fn name(&self) -> &'static str {
            "FIRST"
        }
    }
    let mut router = Router::new(RouterConfig::new(Policy::Lrs), 0);
    router.set_selection_policy(Box::new(FirstOnly));

    // The simulator's energy model and tournament harness are reachable
    // from the umbrella crate.
    let _ = SimEnergyConfig::default();
    let t = swing::sim::tournament::TournamentConfig::default();
    assert!(t.policies.contains(&Policy::Lrs));
    assert_eq!(swing::sim::tournament::ChurnTrace::ALL.len(), 3);
}

/// Configs and handles cross thread boundaries: builders run on one
/// thread, executors on others, dashboards on a third.
#[test]
fn key_types_are_send_and_sync() {
    assert_send_sync::<Tuple>();
    assert_send_sync::<AppGraph>();
    assert_send_sync::<EdgeKind>();
    assert_send_sync::<WindowSpec>();
    assert_send_sync::<RouterConfig>();
    assert_send_sync::<RetryConfig>();
    assert_send_sync::<ReorderConfig>();
    assert_send_sync::<FlowConfig>();
    assert_send_sync::<OverloadPolicy>();
    assert_send_sync::<SwarmConfig>();
    assert_send_sync::<NodeConfig>();
    assert_send_sync::<Telemetry>();
    assert_send_sync::<ClockHandle>();
    assert_send_sync::<SharedBytes>();
    assert_send_sync::<UnitRegistry>();
    assert_send_sync::<Error>();
    // The scheduling surface: policies (and their boxed trait objects)
    // live inside routers shared across executor threads.
    assert_send_sync::<Policy>();
    assert_send_sync::<WorkerVitals>();
    assert_send_sync::<SelectionDecision>();
    assert_send_sync::<Box<dyn SelectionPolicy>>();
    assert_send_sync::<SimEnergyConfig>();
    assert_send_sync::<swing::device::Battery>();
    assert_send_sync::<swing::sim::tournament::TournamentConfig>();
    assert_send_sync::<swing::sim::tournament::TournamentSummary>();
}
