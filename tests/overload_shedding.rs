//! Tier-1 seed regression for the overload-control subsystem: a short
//! bounded `ShedOldest` run under 1.5× overload must keep mailbox depth
//! within the configured capacity, conserve every sensed frame through
//! the shed-accounting identity
//! `sensed = (played + stale) + shed_at_source + shed_in_queue + lost`,
//! and replay byte-identically per seed.

use std::sync::atomic::{AtomicU64, Ordering};
use swing::prelude::*;
use swing::telemetry::{names as n, to_json};

const SERVICE_US: u64 = 50_000; // one operator replica serves 20/s
const FRAMES: u64 = 600; // 10 s of 60 FPS offered to Σμ = 40/s
const CAPACITY: usize = 12;

fn graph() -> AppGraph {
    let mut g = AppGraph::new("overload-regression");
    let s = g.add_source("src");
    let o = g.add_operator("work");
    let k = g.add_sink("out");
    g.connect(s, o).unwrap();
    g.connect(o, k).unwrap();
    g
}

fn registry() -> UnitRegistry {
    let mut r = UnitRegistry::new();
    r.register_source("src", || {
        let count = AtomicU64::new(0);
        closure_source(move |_now| {
            (count.fetch_add(1, Ordering::Relaxed) < FRAMES).then(|| Tuple::new().with("v", 1i64))
        })
    });
    r.register_operator("work", || PassThrough);
    r.register_sink("out", || closure_sink(|_, _| ()));
    r
}

fn run(seed: u64) -> (u64, u64, u64, u64, u64, u64, u64, String) {
    let mut shared = SwarmConfig::with_policy(Policy::Lrs);
    shared.input_fps = 60.0;
    shared.flow = FlowConfig::bounded(CAPACITY);
    // Deadlines beyond any queueing delay here: a retransmit rerouted to
    // the other replica could otherwise reach two terminal states for
    // one sensed frame and blur the identity under test.
    shared.retry = RetryConfig {
        deadline_floor_us: 30 * SECOND_US,
        deadline_ceiling_us: 60 * SECOND_US,
        max_retries: 1,
        ..RetryConfig::default()
    };
    shared.telemetry = Telemetry::new();
    let telemetry = shared.telemetry.clone();
    let cfg = SimSwarmConfig {
        seed,
        service_us: SERVICE_US,
        ..SimSwarmConfig::from_swarm(&shared)
    };
    let mut swarm = SimSwarm::start(
        graph(),
        vec![
            ("A".into(), registry()),
            ("B".into(), registry()),
            ("C".into(), registry()),
        ],
        cfg,
    )
    .expect("sim swarm start");
    swarm.run_for(10 * SECOND_US);
    swarm.finish();
    let snap = telemetry.snapshot();
    (
        snap.counter_total(n::SOURCE_SENSED),
        snap.counter_total(n::SINK_PLAYED),
        snap.counter_total(n::SINK_STALE),
        snap.counter_total(n::SOURCE_SHED),
        snap.counter_total(n::EXEC_SHED_IN_QUEUE),
        snap.counter_total(n::EXEC_LOST),
        snap.histogram_total(n::EXEC_MAILBOX_DEPTH).max,
        to_json(&snap),
    )
}

#[test]
fn bounded_overload_sheds_within_capacity_and_conserves_frames() {
    let (sensed, played, stale, shed_src, shed_q, lost, depth_max, _) = run(7);
    assert_eq!(sensed, FRAMES, "the frame budget must be fully offered");
    assert!(
        depth_max <= CAPACITY as u64,
        "mailbox depth {depth_max} exceeded capacity {CAPACITY}"
    );
    assert!(shed_src > 0, "1.5x overload must engage the credit gate");
    assert_eq!(
        sensed,
        (played + stale) + shed_src + shed_q + lost,
        "shed accounting identity violated: sensed {sensed} != \
         (played {played} + stale {stale}) + shed_src {shed_src} + shed_q {shed_q} + lost {lost}"
    );
    assert!(played > FRAMES / 2, "shedding ate goodput: played {played}");
}

#[test]
fn bounded_overload_replay_is_byte_identical() {
    let (.., a) = run(1207);
    let (.., b) = run(1207);
    assert_eq!(a, b, "same seed must export identical telemetry");
}
