//! End-to-end tests of the live runtime executing the real sensing
//! applications — the §IV-B workflow on in-process and TCP fabrics.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use swing::apps::{face, voice};
use swing::core::routing::Policy;
use swing::runtime::registry::UnitRegistry;
use swing::runtime::swarm::LocalSwarm;

fn face_registry(config: &face::FaceAppConfig, names: Option<Arc<AtomicU64>>) -> UnitRegistry {
    let mut r = UnitRegistry::new();
    face::install(&mut r, config.clone());
    if let Some(names) = names {
        r.register_sink(face::STAGE_DISPLAY, move || {
            let names = Arc::clone(&names);
            face::DisplaySink::new(move |label: &str| {
                if label.contains("person-") {
                    names.fetch_add(1, Ordering::Relaxed);
                }
            })
        });
    }
    r
}

#[test]
fn face_recognition_runs_collaboratively_in_proc() {
    let config = face::FaceAppConfig::default();
    let names = Arc::new(AtomicU64::new(0));
    let swarm = LocalSwarm::builder(face::app_graph())
        .policy(Policy::Lrs)
        .input_fps(24.0)
        .worker("A", face_registry(&config, Some(Arc::clone(&names))))
        .worker("B", face_registry(&config, None))
        .worker("C", face_registry(&config, None))
        .start()
        .expect("swarm start");
    swarm.run_for(Duration::from_secs(3));
    let reports = swarm.stop();
    let (_, report) = &reports[0];
    // ~72 frames sensed; nearly all should complete in-process.
    assert!(
        report.consumed > 40,
        "only {} frames displayed",
        report.consumed
    );
    assert!(
        report.throughput > 15.0,
        "throughput {:.1}",
        report.throughput
    );
    // Most frames contain a planted face and get named.
    let named = names.load(Ordering::Relaxed);
    assert!(named > report.consumed / 2, "only {named} names");
}

#[test]
fn face_recognition_runs_over_tcp() {
    let config = face::FaceAppConfig::default();
    let swarm = LocalSwarm::builder(face::app_graph())
        .policy(Policy::Lr)
        .input_fps(12.0)
        .tcp()
        .worker("A", face_registry(&config, None))
        .worker("B", face_registry(&config, None))
        .start()
        .expect("tcp swarm start");
    swarm.run_for(Duration::from_secs(3));
    let reports = swarm.stop();
    let (_, report) = &reports[0];
    assert!(
        report.consumed > 15,
        "only {} frames over TCP",
        report.consumed
    );
}

#[test]
fn voice_translation_produces_correct_spanish() {
    let config = voice::VoiceAppConfig::default();
    let ok_pairs = Arc::new(AtomicU64::new(0));
    let bad_pairs = Arc::new(AtomicU64::new(0));
    let make_registry = |count: Option<(Arc<AtomicU64>, Arc<AtomicU64>)>| {
        let mut r = UnitRegistry::new();
        voice::install(&mut r, config.clone());
        if let Some((ok, bad)) = count {
            r.register_sink(voice::STAGE_DISPLAY, move || {
                let ok = Arc::clone(&ok);
                let bad = Arc::clone(&bad);
                voice::TranslationSink::new(move |en: &str, es: &str| {
                    // Spot-check the dictionary on a stable pair.
                    let hello_ok = !en.contains("hello") || es.contains("hola");
                    let water_ok = !en.contains("water") || es.contains("agua");
                    if hello_ok && water_ok && !es.contains('*') {
                        ok.fetch_add(1, Ordering::Relaxed);
                    } else {
                        bad.fetch_add(1, Ordering::Relaxed);
                    }
                })
            });
        }
        r
    };
    let swarm = LocalSwarm::builder(voice::app_graph())
        .policy(Policy::Lrs)
        .input_fps(6.0)
        .worker(
            "A",
            make_registry(Some((Arc::clone(&ok_pairs), Arc::clone(&bad_pairs)))),
        )
        .worker("B", make_registry(None))
        .start()
        .expect("swarm start");
    swarm.run_for(Duration::from_secs(3));
    swarm.stop();
    let ok = ok_pairs.load(Ordering::Relaxed);
    let bad = bad_pairs.load(Ordering::Relaxed);
    assert!(ok >= 8, "only {ok} good subtitles");
    assert_eq!(bad, 0, "{bad} mistranslated subtitles");
}

#[test]
fn lrs_steers_away_from_a_slowed_device_live() {
    use swing::core::graph::AppGraph;
    use swing::core::unit::{closure_sink, closure_source, closure_unit, Context, Slowed};
    use swing::core::Tuple;

    let mut graph = AppGraph::new("hetero");
    let s = graph.add_source("src");
    let o = graph.add_operator("work");
    let k = graph.add_sink("out");
    graph.connect(s, o).unwrap();
    graph.connect(o, k).unwrap();

    // A kernel with real per-tuple cost (~0.5–2 ms) so a 12x slowdown is
    // visible to the latency estimator.
    let kernel = |t: Tuple, ctx: &mut Context<'_>| {
        let mut acc = 1u64;
        for i in 0..400_000u64 {
            acc = acc.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(i);
        }
        ctx.send(t.with("acc", acc as i64));
    };
    let registry = |slow: f64, counter: Arc<AtomicU64>| {
        let mut r = UnitRegistry::new();
        r.register_source("src", || {
            closure_source(|_| Some(Tuple::new().with("x", 1i64)))
        });
        r.register_operator("work", move || {
            let c = Arc::clone(&counter);
            Slowed::new(
                closure_unit(move |t: Tuple, ctx: &mut Context<'_>| {
                    c.fetch_add(1, Ordering::Relaxed);
                    kernel(t, ctx);
                }),
                slow,
            )
        });
        r.register_sink("out", || closure_sink(|_, _| ()));
        r
    };

    let fast1 = Arc::new(AtomicU64::new(0));
    let fast2 = Arc::new(AtomicU64::new(0));
    let slow = Arc::new(AtomicU64::new(0));
    let swarm = LocalSwarm::builder(graph)
        .policy(Policy::Lrs)
        .input_fps(150.0)
        .worker("A", registry(1.0, Arc::clone(&fast1)))
        .worker("B", registry(1.0, Arc::clone(&fast2)))
        .worker("SLOW", registry(12.0, Arc::clone(&slow)))
        .start()
        .expect("swarm start");
    swarm.run_for(Duration::from_secs(4));
    swarm.stop();

    let fast_total = fast1.load(Ordering::Relaxed) + fast2.load(Ordering::Relaxed);
    let slow_total = slow.load(Ordering::Relaxed);
    let fast_mean = fast_total / 2;
    assert!(
        slow_total * 2 < fast_mean,
        "LRS did not avoid the slow device: slow {slow_total}, fast mean {fast_mean}"
    );
}

#[test]
fn churn_during_face_recognition_keeps_running() {
    let config = face::FaceAppConfig::default();
    let mut swarm = LocalSwarm::builder(face::app_graph())
        .policy(Policy::Lrs)
        .input_fps(24.0)
        .worker("A", face_registry(&config, None))
        .worker("B", face_registry(&config, None))
        .start()
        .expect("swarm start");
    swarm.run_for(Duration::from_millis(700));
    swarm
        .add_worker("C", face_registry(&config, None))
        .expect("join");
    swarm.run_for(Duration::from_millis(700));
    assert!(swarm.kill_worker("B"));
    swarm.run_for(Duration::from_millis(700));
    let reports = swarm.stop();
    let (_, report) = &reports[0];
    assert!(
        report.consumed > 25,
        "only {} frames survived churn",
        report.consumed
    );
}
