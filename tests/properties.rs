//! Property-based tests of the core data structures and invariants.

use proptest::prelude::*;
use swing::core::config::ReorderConfig;
use swing::core::reorder::ReorderBuffer;
use swing::core::rng::DetRng;
use swing::core::routing::selection::select_workers;
use swing::core::routing::table::RoutingTable;
use swing::core::stats::Summary;
use swing::core::{SeqNo, Tuple, UnitId, Value};
use swing::net::Message;

proptest! {
    /// Routing-table weights always form a probability distribution over
    /// the selected set, whatever raw weights and selections arrive.
    #[test]
    fn routing_weights_always_normalize(
        raw in proptest::collection::vec((0u32..32, 0.0f64..1e6), 1..20),
        selected_mask in proptest::collection::vec(any::<bool>(), 20),
    ) {
        let mut table = RoutingTable::new();
        for (id, _) in &raw {
            table.add(UnitId(*id));
        }
        let units: Vec<UnitId> = table.units().collect();
        let weights: Vec<(UnitId, f64)> =
            raw.iter().map(|(id, w)| (UnitId(*id), *w)).collect();
        let selected: Vec<UnitId> = units
            .iter()
            .enumerate()
            .filter(|(i, _)| selected_mask.get(*i).copied().unwrap_or(false))
            .map(|(_, u)| *u)
            .collect();
        table.install(&weights, &selected);
        let total: f64 = table.entries().iter().map(|e| e.weight).sum();
        prop_assert!((total - 1.0).abs() < 1e-6, "weights sum to {total}");
        for e in table.entries() {
            prop_assert!(e.weight >= 0.0);
            prop_assert!(e.weight <= 1.0 + 1e-9);
            if !e.selected {
                prop_assert_eq!(e.weight, 0.0);
            }
        }
    }

    /// Sampling only ever returns units present in the table.
    #[test]
    fn sampling_returns_member_units(
        ids in proptest::collection::hash_set(0u32..64, 1..16),
        seed in any::<u64>(),
    ) {
        let mut table = RoutingTable::new();
        for &id in &ids {
            table.add(UnitId(id));
        }
        let mut rng = DetRng::seed_from_u64(seed);
        for _ in 0..64 {
            let u = table.sample(&mut rng).unwrap();
            prop_assert!(ids.contains(&u.0));
        }
    }

    /// Worker selection returns the *minimum* prefix: removing its
    /// slowest member must drop the summed rate below the demand
    /// (whenever the demand was satisfiable and positive).
    #[test]
    fn selection_is_minimal(
        rates in proptest::collection::vec(0.1f64..50.0, 1..12),
        lambda in 0.1f64..200.0,
    ) {
        let rates: Vec<(UnitId, f64)> = rates
            .iter()
            .enumerate()
            .map(|(i, &r)| (UnitId(i as u32), r))
            .collect();
        let sel = select_workers(&rates, lambda);
        let rate_of = |u: UnitId| rates.iter().find(|(x, _)| *x == u).unwrap().1;
        let total: f64 = sel.selected.iter().map(|&u| rate_of(u)).sum();
        if sel.satisfied {
            prop_assert!(total >= lambda - 1e-9);
            if sel.selected.len() > 1 {
                let without_last: f64 = sel.selected[..sel.selected.len() - 1]
                    .iter()
                    .map(|&u| rate_of(u))
                    .sum();
                prop_assert!(
                    without_last < lambda,
                    "selection not minimal: {without_last} >= {lambda}"
                );
            }
            // Selected units are the fastest ones: every unselected unit
            // is no faster than the slowest selected unit.
            let slowest_selected = sel
                .selected
                .iter()
                .map(|&u| rate_of(u))
                .fold(f64::INFINITY, f64::min);
            for (u, r) in &rates {
                if !sel.selected.contains(u) {
                    prop_assert!(*r <= slowest_selected + 1e-9);
                }
            }
        } else {
            prop_assert_eq!(sel.selected.len(), rates.len());
        }
    }

    /// The reorder buffer plays each offered sequence number at most
    /// once, in strictly increasing order, and never invents one.
    #[test]
    fn reorder_plays_sorted_unique_subset(
        seqs in proptest::collection::vec(0u64..200, 1..120),
        span_ms in 1u64..2_000,
    ) {
        let mut buffer = ReorderBuffer::new(ReorderConfig {
            span_us: span_ms * 1_000,
        });
        let mut played = Vec::new();
        for (i, &s) in seqs.iter().enumerate() {
            for p in buffer.push(SeqNo(s), s, i as u64 * 10_000) {
                played.push(p.seq.0);
            }
        }
        for p in buffer.flush(10_000_000) {
            played.push(p.seq.0);
        }
        for w in played.windows(2) {
            prop_assert!(w[0] < w[1], "playback not strictly increasing: {played:?}");
        }
        for &p in &played {
            prop_assert!(seqs.contains(&p), "played {p} was never offered");
        }
        // Everything offered is accounted for: played, stale or dup.
        let unique_offered: std::collections::BTreeSet<u64> =
            seqs.iter().copied().collect();
        prop_assert!(played.len() as u64 <= unique_offered.len() as u64);
    }

    /// Tuples survive a wire round-trip bit-exactly.
    #[test]
    fn wire_roundtrips_arbitrary_tuples(
        seq in any::<u64>(),
        sent_at in any::<u64>(),
        bytes in proptest::collection::vec(any::<u8>(), 0..2_000),
        text in "\\PC{0,64}",
        int in any::<i64>(),
        float in any::<f64>(),
        vecf in proptest::collection::vec(any::<f32>(), 0..64),
        flag in any::<bool>(),
        dest in any::<u32>(),
        from in any::<u32>(),
    ) {
        let mut tuple = Tuple::with_seq(SeqNo(seq));
        tuple.stamp_sent(sent_at);
        tuple.set_value("bytes", bytes);
        tuple.set_value("text", text);
        tuple.set_value("int", int);
        tuple.set_value("float", Value::F64(float));
        tuple.set_value("vec", vecf);
        tuple.set_value("flag", flag);
        let msg = Message::Data {
            dest: UnitId(dest),
            from: UnitId(from),
            tuple,
        };
        let decoded = Message::decode(&msg.encode()).unwrap();
        // NaN payloads break PartialEq; compare through re-encoding.
        prop_assert_eq!(msg.encode(), decoded.encode());
    }

    /// Welford summaries match naive statistics on any sample set.
    #[test]
    fn summary_matches_naive_statistics(
        samples in proptest::collection::vec(-1e6f64..1e6, 1..200),
    ) {
        let mut s = Summary::new();
        for &v in &samples {
            s.update(v);
        }
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let max = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!((s.mean() - mean).abs() <= 1e-6 * mean.abs().max(1.0));
        prop_assert!((s.variance() - var).abs() <= 1e-5 * var.abs().max(1.0));
        prop_assert_eq!(s.min(), min);
        prop_assert_eq!(s.max(), max);
    }

    /// The pacer emits exactly `floor(elapsed * rate) + 1` deadlines (the
    /// +1 is the t=0 tuple), within one deadline of floating-point slack.
    #[test]
    fn pacer_emission_count_is_exact(
        rate in 0.5f64..200.0,
        seconds in 1u64..30,
    ) {
        let mut p = swing::core::rate::Pacer::new(rate, 0);
        let horizon = seconds * 1_000_000;
        let due = p.due(horizon);
        let expected = (horizon as f64 / 1_000_000.0 * rate).floor() as i64 + 1;
        let got = due.len() as i64;
        prop_assert!(
            (got - expected).abs() <= 1,
            "rate {rate}, {seconds}s: got {got}, expected {expected}"
        );
    }
}
