//! # swing
//!
//! Umbrella crate for the Swing workspace — a Rust reproduction of
//! *Swing: Swarm Computing for Mobile Sensing* (Fan, Salonidis, Lee;
//! ICDCS 2018). Swing aggregates a swarm of co-located mobile devices to
//! collaboratively process sensed data streams (face recognition, voice
//! translation) expressed as dataflow graphs, managing device
//! heterogeneity, user mobility and churn with the LRS routing algorithm.
//!
//! Each subsystem lives in its own crate and is re-exported here:
//!
//! * [`core`] — dataflow programming model, LRS + baseline policies,
//!   latency estimation, reordering service.
//! * [`device`] — device substrate: CPU/power/battery models calibrated to
//!   the paper's nine-phone testbed, mobility traces, radio model.
//! * [`net`] — wireless link models, tuple wire format, TCP transport,
//!   UDP discovery.
//! * [`reactor`] — non-blocking networked runtime: a single-threaded
//!   readiness loop multiplexing framed connections, plus the TTL-lease
//!   registry service that replaces UDP probing for discovery.
//! * [`sim`] — deterministic discrete-event simulator regenerating every
//!   figure and table of the paper.
//! * [`runtime`] — live master/worker runtime with in-process and TCP
//!   transports.
//! * [`apps`] — the reference sensing applications (face, voice, and the
//!   grid-keyed spatial stream) with real compute kernels.
//!
//! See `examples/quickstart.rs` for a complete first program.

/// One-stop imports for the whole workspace: `use swing::prelude::*;`
/// brings in the dataflow model, routing policies, overload control,
/// both execution harnesses (live and simulated), and telemetry.
pub mod prelude {
    pub use swing_runtime::prelude::*;
}

pub use swing_apps as apps;
pub use swing_core as core;
pub use swing_device as device;
pub use swing_net as net;
pub use swing_reactor as reactor;
pub use swing_runtime as runtime;
pub use swing_sim as sim;
pub use swing_telemetry as telemetry;
